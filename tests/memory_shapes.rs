//! Integration tests pinning the paper's memory-behaviour *shapes*
//! (Figs. 6–7) at test scale, so regressions in the table layouts or the
//! engine's accounting surface immediately.

use fascia::prelude::*;

fn peak(g: &Graph, t: &Template, kind: TableKind) -> usize {
    let cfg = CountConfig {
        iterations: 1,
        table: kind,
        parallel: ParallelMode::Serial,
        seed: 7,
        ..CountConfig::default()
    };
    count_template(g, t, &cfg).unwrap().peak_table_bytes
}

#[test]
fn hash_layout_wins_on_long_paths_over_sparse_graphs() {
    // The Fig. 7 regime: low-degree mesh, long path template.
    let g = fascia::graph::gen::road_grid(30, 30, 1200, 5);
    let t = Template::path(7);
    let dense = peak(&g, &t, TableKind::Dense);
    let hash = peak(&g, &t, TableKind::Hash);
    assert!(
        hash * 2 < dense,
        "hash {hash} should be well under dense {dense} on the road mesh"
    );
    // And the ordering flips for tiny templates (hash overhead dominates).
    let t3 = Template::path(3);
    let dense3 = peak(&g, &t3, TableKind::Dense);
    let hash3 = peak(&g, &t3, TableKind::Hash);
    assert!(
        hash3 * 4 > dense3,
        "no meaningful hash win expected at k = 3 ({hash3} vs {dense3})"
    );
}

#[test]
fn labels_slash_peak_memory() {
    // The Fig. 6 labeled regime.
    let g = fascia::graph::gen::barabasi_albert(2000, 5, 0, 9);
    let labels = random_labels(g.num_vertices(), 8, 3);
    let t = NamedTemplate::U7_2.template();
    let tl = NamedTemplate::U7_2
        .template()
        .with_labels(vec![0, 1, 2, 3, 4, 5, 6])
        .unwrap();
    let cfg = CountConfig {
        iterations: 1,
        parallel: ParallelMode::Serial,
        seed: 5,
        ..CountConfig::default()
    };
    let plain = count_template(&g, &t, &cfg).unwrap().peak_table_bytes;
    let labeled = count_template_labeled(&g, &labels, &tl, &cfg)
        .unwrap()
        .peak_table_bytes;
    assert!(
        labeled * 3 < plain,
        "labels should slash peak memory: {labeled} vs {plain}"
    );
}

#[test]
fn naive_layout_materializes_single_vertex_tables() {
    // Alg. 2 line 4: the naive scheme allocates single-vertex subtemplate
    // tables; the improved scheme reads the coloring. So dense peak must
    // exceed lazy peak by at least roughly n * k * 8 on an all-active
    // graph.
    let g = fascia::graph::gen::gnm(3000, 15000, 11);
    let t = Template::path(5);
    let dense = peak(&g, &t, TableKind::Dense);
    let lazy = peak(&g, &t, TableKind::Lazy);
    assert!(
        dense > lazy,
        "naive {dense} must exceed improved {lazy} once ghost singles count"
    );
}

#[test]
fn bigger_templates_need_more_memory() {
    let g = fascia::graph::gen::gnm(1500, 7000, 13);
    let mut prev = 0usize;
    for k in [3usize, 5, 7, 9] {
        let p = peak(&g, &Template::path(k), TableKind::Lazy);
        assert!(p > prev, "peak must grow with template size: P{k} = {p}");
        prev = p;
    }
}

#[test]
fn outer_parallel_memory_scales_with_workers() {
    // The paper: "memory requirements increase linearly as a function of
    // the number of threads" in outer-loop mode. With a 1-thread pool the
    // multiplier must be 1.
    let g = fascia::graph::gen::gnm(800, 4000, 17);
    let t = Template::path(5);
    let serial = peak(&g, &t, TableKind::Lazy);
    let outer = with_threads(1, || {
        let cfg = CountConfig {
            iterations: 2,
            parallel: ParallelMode::OuterLoop,
            seed: 7,
            ..CountConfig::default()
        };
        count_template(&g, &t, &cfg).unwrap().peak_table_bytes
    });
    assert_eq!(outer, serial);
}
