//! Flight-recorder suite: counting results must be bitwise identical with
//! tracing absent, enabled, and overflowing; the recorded timeline must
//! cover the engine's event taxonomy; and the Chrome-trace export must be
//! a valid JSON array with monotone per-tid timestamps.

use fascia::obs::Tracer;
use fascia::prelude::*;
use std::sync::Arc;

fn test_graph() -> Graph {
    fascia::graph::gen::gnm(80, 240, 0xBEEF)
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn results_are_bitwise_identical_with_tracing_absent_enabled_and_dropping() {
    let g = test_graph();
    let t = Template::path(5);
    for mode in [ParallelMode::Serial, ParallelMode::OuterLoop] {
        let base = CountConfig {
            iterations: 20,
            seed: 0x7A5C_1A00,
            parallel: mode,
            ..CountConfig::default()
        };
        let plain = count_template(&g, &t, &base).expect("untraced run");

        let tracer = Arc::new(Tracer::new());
        let traced_cfg = CountConfig {
            tracer: Some(Arc::clone(&tracer)),
            ..base.clone()
        };
        let traced = count_template(&g, &t, &traced_cfg).expect("traced run");
        assert!(
            bitwise_eq(&plain.per_iteration, &traced.per_iteration),
            "tracing changed the per-iteration series ({mode:?})"
        );
        assert_eq!(tracer.dropped(), 0, "default rings must not overflow here");
        assert!(tracer.recorded() > 0);

        // A tiny ring overflows immediately; results still must not move.
        let tiny = Arc::new(Tracer::with_capacity(8));
        let dropping_cfg = CountConfig {
            tracer: Some(Arc::clone(&tiny)),
            ..base.clone()
        };
        let dropping = count_template(&g, &t, &dropping_cfg).expect("dropping run");
        assert!(
            bitwise_eq(&plain.per_iteration, &dropping.per_iteration),
            "ring overflow changed the per-iteration series ({mode:?})"
        );
        assert!(tiny.dropped() > 0, "an 8-slot ring must drop events");
    }
}

#[test]
fn engine_timeline_covers_the_event_taxonomy() {
    let g = test_graph();
    let t = Template::path(5);
    let tracer = Arc::new(Tracer::new());
    let ck =
        std::env::temp_dir().join(format!("fascia-trace-taxonomy-{}.ckpt", std::process::id()));
    std::fs::remove_file(&ck).ok();
    let cfg = CountConfig {
        iterations: 6,
        parallel: ParallelMode::Serial,
        tracer: Some(Arc::clone(&tracer)),
        checkpoint: Some(CheckpointConfig::new(&ck)),
        fault: FaultInjection {
            panic_on_iteration: Some(2),
            ..FaultInjection::default()
        },
        ..CountConfig::default()
    };
    count_template(&g, &t, &cfg).expect("run");
    std::fs::remove_file(&ck).ok();

    let names: std::collections::HashSet<String> = tracer
        .events()
        .iter()
        .map(|e| tracer.name_of(e.name))
        .collect();
    for expected in [
        "iteration",
        "coloring",
        "wave",
        "checkpoint.flush",
        "panic.retry",
    ] {
        assert!(
            names.contains(expected),
            "missing event {expected:?}: {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("dp.n")),
        "missing per-subtemplate spans: {names:?}"
    );
    assert!(
        names.contains("table.build"),
        "missing table.build instants: {names:?}"
    );
}

#[test]
fn resume_and_adaptive_runs_record_their_events() {
    let g = test_graph();
    let t = Template::path(4);
    let ck = std::env::temp_dir().join(format!("fascia-trace-resume-{}.ckpt", std::process::id()));
    std::fs::remove_file(&ck).ok();
    let first = CountConfig {
        iterations: 10,
        parallel: ParallelMode::Serial,
        checkpoint: Some(CheckpointConfig::new(&ck)),
        fault: FaultInjection {
            cancel_on_iteration: Some(4),
            ..FaultInjection::default()
        },
        ..CountConfig::default()
    };
    let partial = count_template(&g, &t, &first).expect("partial run");
    assert_eq!(partial.stop_cause, StopCause::Cancelled);

    let tracer = Arc::new(Tracer::new());
    let resumed_cfg = CountConfig {
        iterations: 10,
        parallel: ParallelMode::Serial,
        resume: Some(Checkpoint::load(&ck).expect("load checkpoint")),
        tracer: Some(Arc::clone(&tracer)),
        ..CountConfig::default()
    };
    count_template(&g, &t, &resumed_cfg).expect("resumed run");
    std::fs::remove_file(&ck).ok();
    let names: Vec<String> = tracer
        .events()
        .iter()
        .map(|e| tracer.name_of(e.name))
        .collect();
    assert!(names.iter().any(|n| n == "checkpoint.resume"));

    // Adaptive runs sample the running CI into the trace.
    let tracer = Arc::new(Tracer::new());
    let adaptive = CountConfig {
        stop: Some(StopRule::relative_error(0.5, 0.05)),
        parallel: ParallelMode::Serial,
        tracer: Some(Arc::clone(&tracer)),
        ..CountConfig::default()
    };
    count_template(&g, &t, &adaptive).expect("adaptive run");
    let names: Vec<String> = tracer
        .events()
        .iter()
        .map(|e| tracer.name_of(e.name))
        .collect();
    assert!(
        names.iter().any(|n| n == "adaptive.ci_permille"),
        "missing adaptive CI samples: {names:?}"
    );
}

#[test]
fn chrome_export_parses_and_is_monotone_per_tid() {
    let g = test_graph();
    let t = Template::path(5);
    let tracer = Arc::new(Tracer::new());
    let cfg = CountConfig {
        iterations: 8,
        parallel: ParallelMode::OuterLoop,
        tracer: Some(Arc::clone(&tracer)),
        ..CountConfig::default()
    };
    count_template(&g, &t, &cfg).expect("run");

    let text = tracer.to_chrome_json();
    let doc = Json::parse(&text).expect("trace JSON parses");
    let events = doc.as_arr().expect("top level is an array");
    assert!(!events.is_empty());
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        let obj = ev.as_obj().expect("event is an object");
        for key in ["name", "cat", "ph", "pid", "tid", "ts"] {
            assert!(Json::get(obj, key).is_some(), "event missing {key:?}");
        }
        let ph = Json::get(obj, "ph").and_then(Json::as_str).expect("ph");
        assert!(matches!(ph, "X" | "i" | "C"), "unexpected phase {ph:?}");
        if ph == "X" {
            assert!(Json::get(obj, "dur").is_some(), "span without dur");
        }
        let tid = Json::get(obj, "tid").and_then(Json::as_u64).expect("tid");
        let ts = Json::get(obj, "ts").and_then(Json::as_f64).expect("ts");
        let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "ts went backwards on tid {tid}: {prev} -> {ts}");
    }
}

#[test]
fn rooted_counts_trace_like_count_template() {
    let g = test_graph();
    let t = Template::path(4);
    let tracer = Arc::new(Tracer::new());
    let cfg = CountConfig {
        iterations: 5,
        parallel: ParallelMode::Serial,
        tracer: Some(Arc::clone(&tracer)),
        ..CountConfig::default()
    };
    rooted_counts(&g, &t, 0, &cfg).expect("rooted run");
    let names: Vec<String> = tracer
        .events()
        .iter()
        .map(|e| tracer.name_of(e.name))
        .collect();
    for expected in ["iteration", "coloring", "wave"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected:?}");
    }
}
