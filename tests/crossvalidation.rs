//! Cross-validation between independent subsystems: different code paths
//! computing the same quantity must agree exactly.

use fascia::graph::stats::{global_clustering, triangle_count};
use fascia::prelude::*;

#[test]
fn triangle_template_count_matches_graph_statistics() {
    // Three independent triangle counters: the graph-stats intersection
    // counter, the exact template counter, and the color-coding DP.
    for seed in [1u64, 7, 23] {
        let g = fascia::graph::gen::gnm(60, 260, seed);
        let by_stats = triangle_count(&g) as f64;
        let by_exact = count_exact(&g, &Template::triangle()) as f64;
        assert_eq!(by_stats, by_exact, "seed {seed}");
        if by_stats == 0.0 {
            continue;
        }
        let cfg = CountConfig {
            iterations: 1500,
            seed,
            ..CountConfig::default()
        };
        let est = count_template(&g, &Template::triangle(), &cfg)
            .unwrap()
            .estimate;
        let rel = (est - by_stats).abs() / by_stats;
        assert!(rel < 0.1, "seed {seed}: est {est} vs {by_stats}");
    }
}

#[test]
fn p3_closed_form_vs_all_engines() {
    use fascia::core::exact::exact_p3;
    let g = fascia::graph::gen::barabasi_albert(120, 3, 0, 5);
    let closed = exact_p3(&g);
    assert_eq!(closed, count_exact(&g, &Template::path(3)));
    // Wedge count also validates the clustering denominator:
    // global_clustering = 3 * triangles / wedges.
    let c = global_clustering(&g);
    let expect = 3.0 * triangle_count(&g) as f64 / closed as f64;
    assert!((c - expect).abs() < 1e-12);
}

#[test]
fn distributed_simulation_matches_engine_on_all_named_templates() {
    let g = fascia::graph::gen::gnm(80, 260, 77);
    for named in [
        NamedTemplate::U3_1,
        NamedTemplate::U3_2,
        NamedTemplate::U5_2,
    ] {
        let t = named.template();
        let base = CountConfig {
            iterations: 3,
            parallel: ParallelMode::Serial,
            seed: 4,
            ..CountConfig::default()
        };
        let shared = count_template(&g, &t, &base).unwrap();
        let cfg = DistConfig {
            ranks: 6,
            scheme: PartitionScheme::Hash,
            count: base,
        };
        let dist = count_distributed(&g, &t, &cfg).unwrap();
        assert_eq!(dist.per_iteration, shared.per_iteration, "{}", named.name());
    }
}

#[test]
fn sampler_frequency_tracks_graphlet_degree() {
    // Sampling embeddings of U5-2 and counting how often each vertex
    // appears at the orbit position should correlate with the exact
    // graphlet degrees.
    use fascia::core::gdd::exact_graphlet_degrees;
    let g = fascia::graph::gen::gnm(25, 70, 10);
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().unwrap();
    let exact = exact_graphlet_degrees(&g, &t, orbit);
    let total: f64 = exact.iter().sum();
    if total == 0.0 {
        return;
    }
    let cfg = CountConfig {
        iterations: 3000,
        seed: 6,
        ..CountConfig::default()
    };
    let samples = sample_embeddings(&g, &t, &cfg, 2500).unwrap();
    assert!(samples.len() >= 2000);
    let mut hits = vec![0usize; g.num_vertices()];
    for emb in &samples {
        hits[emb[orbit as usize] as usize] += 1;
    }
    // The most frequently sampled orbit vertex should be among the top
    // exact graphlet-degree vertices (loose rank check, robust to noise).
    let best_sampled = hits.iter().enumerate().max_by_key(|&(_, &h)| h).unwrap().0;
    let mut by_exact: Vec<usize> = (0..g.num_vertices()).collect();
    by_exact.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());
    let rank = by_exact.iter().position(|&v| v == best_sampled).unwrap();
    assert!(
        rank < 5,
        "most-sampled vertex {best_sampled} has exact rank {rank}"
    );
}

#[test]
fn adaptive_statistics_agree_with_fixed_run() {
    use fascia::core::stats::{count_until_converged, EstimateStats};
    let g = fascia::graph::gen::gnm(50, 150, 3);
    let t = Template::path(4);
    let base = CountConfig {
        iterations: 8,
        parallel: ParallelMode::Serial,
        seed: 2,
        ..CountConfig::default()
    };
    let (result, stats) = count_until_converged(&g, &t, &base, 0.1, 4000).unwrap();
    assert_eq!(stats.n, result.per_iteration.len());
    let recomputed = EstimateStats::from_series(&result.per_iteration);
    assert_eq!(stats, recomputed);
    let exact = count_exact(&g, &t) as f64;
    assert!(
        (result.estimate - exact).abs() / exact < 0.15,
        "estimate {} vs exact {exact}",
        result.estimate
    );
}
