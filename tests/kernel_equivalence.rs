//! Differential suite for the cut-node DP kernels: the vectorized
//! colorset-major kernel must produce **bitwise-identical** per-iteration
//! counts to the scalar reference kernel for every configuration axis —
//! parallel mode × table layout (including the budget-gated [`AnyTable`]
//! ladder) × partition strategy, labeled and unlabeled, plus a property
//! test over random small templates and graphs. This is the enforcement
//! arm of the bitwise-equality contract in DESIGN.md §15.

use fascia::prelude::*;
use proptest::prelude::*;

fn run(
    g: &Graph,
    t: &Template,
    kernel: KernelKind,
    table: TableKind,
    parallel: ParallelMode,
    budget: Option<usize>,
) -> Vec<f64> {
    let cfg = CountConfig {
        iterations: 4,
        kernel,
        table,
        parallel,
        seed: 97,
        memory_budget_bytes: budget,
        ..CountConfig::default()
    };
    count_template(g, t, &cfg).unwrap().per_iteration
}

fn templates() -> Vec<Template> {
    vec![
        Template::path(4),
        Template::path(7),
        Template::star(5),
        NamedTemplate::U5_2.template(),
        NamedTemplate::U7_2.template(),
    ]
}

/// The full configuration sweep: every parallel mode × concrete table
/// layout must agree bitwise across kernels.
#[test]
fn kernels_agree_across_modes_and_layouts() {
    let g = fascia::graph::gen::gnm(220, 800, 33);
    for t in templates() {
        for parallel in [
            ParallelMode::Serial,
            ParallelMode::InnerLoop,
            ParallelMode::OuterLoop,
        ] {
            for table in TableKind::all() {
                let scalar = run(&g, &t, KernelKind::Scalar, table, parallel, None);
                let vector = run(&g, &t, KernelKind::Vectorized, table, parallel, None);
                assert_eq!(
                    scalar, vector,
                    "kernel mismatch: {t:?} {parallel:?} {table:?}"
                );
            }
        }
    }
}

/// The budget-gated path goes through the layout-erased `AnyTable` (the
/// fourth layout) and exercises `from_batch_kind` dispatch plus the
/// count-based `BudgetGate::choose`; both the roomy budget (stays dense)
/// and the tight budget (degrades down the ladder) must agree.
#[test]
fn kernels_agree_under_memory_budgets() {
    let g = fascia::graph::gen::gnm(180, 650, 7);
    let t = NamedTemplate::U5_2.template();
    for budget in [usize::MAX / 2, 400_000, 120_000] {
        let scalar = run(
            &g,
            &t,
            KernelKind::Scalar,
            TableKind::Dense,
            ParallelMode::Serial,
            Some(budget),
        );
        let vector = run(
            &g,
            &t,
            KernelKind::Vectorized,
            TableKind::Dense,
            ParallelMode::Serial,
            Some(budget),
        );
        assert_eq!(scalar, vector, "budget {budget}");
    }
}

/// Labeled counting prunes via the `Stored::Single` label checks on both
/// the active and passive sides — a code path the unlabeled sweep never
/// touches.
#[test]
fn kernels_agree_on_labeled_templates() {
    let g = fascia::graph::gen::gnm(160, 560, 11);
    let labels = random_labels(g.num_vertices(), 3, 77);
    let t = Template::path(5).with_labels(vec![0, 1, 2, 0, 1]).unwrap();
    for table in TableKind::all() {
        let mk = |kernel| {
            let cfg = CountConfig {
                iterations: 4,
                kernel,
                table,
                parallel: ParallelMode::Serial,
                seed: 41,
                ..CountConfig::default()
            };
            count_template_labeled(&g, &labels, &t, &cfg)
                .unwrap()
                .per_iteration
        };
        assert_eq!(
            mk(KernelKind::Scalar),
            mk(KernelKind::Vectorized),
            "labeled mismatch on {table:?}"
        );
    }
}

/// Both partition strategies (different cut-node shapes, so different
/// split/removal tables) must agree across kernels.
#[test]
fn kernels_agree_across_partition_strategies() {
    let g = fascia::graph::gen::gnm(150, 520, 19);
    let t = Template::spider(&[2, 2, 1]);
    for strategy in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
        let mk = |kernel| {
            let cfg = CountConfig {
                iterations: 3,
                kernel,
                strategy,
                parallel: ParallelMode::Serial,
                seed: 13,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().per_iteration
        };
        assert_eq!(
            mk(KernelKind::Scalar),
            mk(KernelKind::Vectorized),
            "strategy {strategy:?}"
        );
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (12usize..48, 1u64..2000).prop_map(|(n, seed)| {
        let m = (n * 3).min(n * (n - 1) / 2);
        fascia::graph::gen::gnm(n, m, seed)
    })
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Template> {
    (
        2usize..max_n,
        proptest::collection::vec(0u32..u32::MAX, max_n),
    )
        .prop_map(|(n, rs)| {
            let parents: Vec<u8> = (0..n - 1)
                .map(|i| (rs[i] as usize % (i + 1)) as u8)
                .collect();
            Template::from_parents(&parents).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small tree templates on random graphs: any seed, any
    /// layout — the kernels must agree bitwise.
    #[test]
    fn kernels_agree_on_random_inputs(
        g in arb_graph(),
        t in arb_tree(7),
        seed in any::<u64>(),
        kind_ix in 0usize..3,
    ) {
        let table = TableKind::all()[kind_ix];
        let mk = |kernel| {
            let cfg = CountConfig {
                iterations: 2,
                kernel,
                table,
                parallel: ParallelMode::Serial,
                seed,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().per_iteration
        };
        prop_assert_eq!(mk(KernelKind::Scalar), mk(KernelKind::Vectorized));
    }
}
