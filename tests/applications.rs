//! Cross-crate application tests: motif finding and graphlet degree
//! distributions end to end on dataset stand-ins.

use fascia::core::gdd::exact_graphlet_degrees;
use fascia::core::motifs::{exact_motif_counts, mean_relative_error};
use fascia::prelude::*;

#[test]
fn free_tree_counts_match_oeis() {
    // A000055 — the counts the paper quotes for motif finding (11/106/551).
    let expect = [1usize, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551];
    for (i, &e) in expect.iter().enumerate() {
        assert_eq!(fascia::template::gen::all_free_trees(i + 1).len(), e);
    }
}

#[test]
fn motif_profile_on_hpylori_standin() {
    let g = Dataset::HPylori.generate(1, 7);
    let cfg = CountConfig {
        iterations: 400,
        seed: 2,
        ..CountConfig::default()
    };
    let profile = motif_profile(&g, 5, &cfg).unwrap();
    assert_eq!(profile.templates.len(), 3);
    let exact = exact_motif_counts(&g, 5);
    let err = mean_relative_error(&profile.counts, &exact);
    assert!(err < 0.1, "mean error {err}");
}

#[test]
fn motif_relative_magnitudes_survive_one_iteration() {
    // Fig. 12's claim: even one iteration gets relative magnitudes right.
    let g = Dataset::HPylori.generate(1, 7);
    let exact = exact_motif_counts(&g, 5);
    let cfg = CountConfig {
        iterations: 1,
        seed: 5,
        ..CountConfig::default()
    };
    let profile = motif_profile(&g, 5, &cfg).unwrap();
    // Same ordering of magnitudes for the dominant template.
    let exact_dom = exact.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0;
    assert_eq!(profile.dominant(), Some(exact_dom));
}

#[test]
fn gdd_agreement_improves_with_iterations() {
    let g = Dataset::Circuit.generate(1, 9);
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().unwrap();
    let exact_hist = GddHistogram::from_degrees(&exact_graphlet_degrees(&g, &t, orbit));
    let agreement_at = |iters: usize| {
        let cfg = CountConfig {
            iterations: iters,
            seed: 31,
            ..CountConfig::default()
        };
        let est = estimate_gdd(&g, &t, orbit, &cfg).unwrap();
        gdd_agreement(&est, &exact_hist)
    };
    let few = agreement_at(5);
    let many = agreement_at(2000);
    assert!(
        many > few,
        "agreement should improve: {few:.3} (5 iters) vs {many:.3} (2000 iters)"
    );
    assert!(many > 0.8, "agreement after 2000 iterations: {many:.3}");
}

#[test]
fn rooted_counts_respect_orbit_sum_rule() {
    // Sum over vertices of graphlet degree at orbit o equals
    // (occurrences) x (number of template vertices in o's automorphism
    // orbit). For U5-2 rooted at the center: the orbit of the center is
    // just itself, so the sum equals the total count.
    let g = fascia::graph::gen::gnm(60, 150, 3);
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().unwrap();
    let exact_total = count_exact(&g, &t) as f64;
    let cfg = CountConfig {
        iterations: 800,
        seed: 8,
        ..CountConfig::default()
    };
    let rooted = rooted_counts(&g, &t, orbit, &cfg).unwrap();
    let total: f64 = rooted.per_vertex.iter().sum();
    let err = (total - exact_total).abs() / exact_total;
    assert!(err < 0.12, "rooted total {total} vs exact {exact_total}");
}

#[test]
fn dataset_stand_ins_expose_expected_structure() {
    // Social-like: heavy tail. Road-like: bounded degree. Gnp: neither.
    let enron = Dataset::Enron.generate(1, 1);
    assert!(enron.max_degree() > 30 * enron.avg_degree() as usize);
    let road = Dataset::PaRoad.generate(64, 1);
    assert!(road.max_degree() <= 4);
    let gnp = Dataset::Gnp.generate(1, 1);
    assert!(gnp.max_degree() < 4 * gnp.avg_degree().ceil() as usize);
}

#[test]
fn profiles_distinguish_road_from_social() {
    // Fig. 14's claim: the road network's motif profile differs starkly
    // from a social network's. Compare star-heavy vs path-heavy mass.
    let cfg = CountConfig {
        iterations: 30,
        seed: 4,
        ..CountConfig::default()
    };
    let social = motif_profile(&Dataset::Enron.generate(1, 3), 5, &cfg).unwrap();
    let road = motif_profile(&Dataset::PaRoad.generate(256, 3), 5, &cfg).unwrap();
    // Size-5 topologies: path, chair/fork, star. Star index = the one with
    // max degree 4.
    let star_idx = social
        .templates
        .iter()
        .position(|t| (0..5).any(|v| t.degree(v as u8) == 4))
        .unwrap();
    let social_rel = social.relative_frequencies();
    let road_rel = road.relative_frequencies();
    assert!(
        social_rel[star_idx] > 10.0 * road_rel[star_idx].max(1e-12),
        "stars should be far more frequent in social nets: {} vs {}",
        social_rel[star_idx],
        road_rel[star_idx]
    );
}
