//! Integration tests of the directed extension.

use fascia::prelude::*;

#[test]
fn directed_classes_partition_undirected_counts() {
    // Exact identity over several random orientations and graphs.
    for seed in [1u64, 5, 9] {
        let und = fascia::graph::gen::gnm(40, 130, seed);
        let g = DiGraph::orient_randomly(&und, seed ^ 0xF00);
        let undirected = count_exact(&und, &Template::path(3));
        let sum = count_exact_directed(&g, &DiTemplate::directed_path(3))
            + count_exact_directed(&g, &DiTemplate::out_star(3))
            + count_exact_directed(&g, &DiTemplate::in_star(3));
        assert_eq!(sum, undirected, "seed {seed}");
    }
}

#[test]
fn directed_p4_classes_partition_p4() {
    // The 4-vertex path has 2^3 orientations falling into isomorphism
    // classes; summing exact counts over one representative per class
    // (weighted by nothing — each undirected occurrence realizes exactly
    // one arc pattern) recovers the undirected count.
    let und = fascia::graph::gen::gnm(35, 100, 3);
    let g = DiGraph::orient_randomly(&und, 77);
    let undirected = count_exact(&und, &Template::path(4));
    // Orientations of path edges (e1, e2, e3) up to reversal symmetry:
    // enumerate all 8, canonicalize by comparing against the reversed
    // pattern, and count each class once.
    let mut sum = 0u128;
    let mut seen: std::collections::HashSet<Vec<(u8, u8)>> = std::collections::HashSet::new();
    for bits in 0..8u8 {
        let mut arcs = Vec::new();
        for (i, (u, v)) in [(0u8, 1u8), (1, 2), (2, 3)].iter().enumerate() {
            if bits >> i & 1 == 0 {
                arcs.push((*u, *v));
            } else {
                arcs.push((*v, *u));
            }
        }
        // Reversal: vertex map x -> 3 - x.
        let mut rev: Vec<(u8, u8)> = arcs.iter().map(|&(a, b)| (3 - a, 3 - b)).collect();
        rev.sort_unstable();
        let mut key = arcs.clone();
        key.sort_unstable();
        let canon = key.clone().min(rev);
        if !seen.insert(canon) {
            continue;
        }
        sum += count_exact_directed(&g, &DiTemplate::from_arcs(4, &arcs).unwrap());
    }
    assert_eq!(sum, undirected);
}

#[test]
fn directed_estimator_converges_on_star_patterns() {
    let und = fascia::graph::gen::barabasi_albert(60, 3, 0, 8);
    let g = DiGraph::orient_randomly(&und, 2);
    for t in [DiTemplate::out_star(5), DiTemplate::in_star(5)] {
        let exact = count_exact_directed(&g, &t) as f64;
        if exact == 0.0 {
            continue;
        }
        let cfg = CountConfig {
            iterations: 1000,
            seed: 14,
            ..CountConfig::default()
        };
        let r = count_directed(&g, &t, &cfg).unwrap();
        let rel = (r.estimate - exact).abs() / exact;
        assert!(rel < 0.15, "{t:?}: {} vs {exact}", r.estimate);
    }
}

#[test]
fn directed_deterministic() {
    let und = fascia::graph::gen::gnm(25, 60, 4);
    let g = DiGraph::orient_randomly(&und, 5);
    let t = DiTemplate::directed_path(4);
    let cfg = CountConfig {
        iterations: 5,
        seed: 77,
        ..CountConfig::default()
    };
    let a = count_directed(&g, &t, &cfg).unwrap();
    let b = count_directed(&g, &t, &cfg).unwrap();
    assert_eq!(a.per_iteration, b.per_iteration);
}

#[test]
fn all_arcs_one_way_kills_reverse_pattern() {
    // Orient all edges low -> high: no arc goes high -> low, so a directed
    // path must ascend; count must equal the ascending-path count and the
    // estimator must see it too.
    let und = fascia::graph::gen::gnm(30, 80, 6);
    let arcs = und.edges(); // (u, v) with u < v
    let g = DiGraph::from_arcs(30, &arcs);
    let t = DiTemplate::directed_path(3);
    let exact = count_exact_directed(&g, &t);
    // Count ascending wedges by hand: pairs u < v < w with arcs u->v->w.
    let mut manual = 0u128;
    for v in 0..30usize {
        let ins = g.in_degree(v) as u128;
        let outs = g.out_degree(v) as u128;
        manual += ins * outs;
    }
    assert_eq!(exact, manual);
}
