//! Sampling-profiler suite: counting results must be bitwise identical
//! with the profiler absent, attached, and depth-overflowing; the
//! collapsed-stack export must parse line-by-line and its values must sum
//! to roughly the sampling window; and on a serial run the profiler must
//! attribute ≥ 90% of wall time to named engine phases.

use fascia::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_graph() -> Graph {
    fascia::graph::gen::gnm(300, 1_200, 0xBEEF)
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn results_are_bitwise_identical_with_profiler_absent_attached_and_overflowing() {
    let g = test_graph();
    let t = Template::path(5);
    for mode in [ParallelMode::Serial, ParallelMode::OuterLoop] {
        let base = CountConfig {
            iterations: 20,
            seed: 0x7A5C_1A00,
            parallel: mode,
            ..CountConfig::default()
        };
        let plain = count_template(&g, &t, &base).expect("unprofiled run");

        let profiler = Arc::new(Profiler::with_period(Duration::from_micros(200)));
        profiler.start();
        let profiled_cfg = CountConfig {
            profiler: Some(Arc::clone(&profiler)),
            ..base.clone()
        };
        let profiled = count_template(&g, &t, &profiled_cfg).expect("profiled run");
        profiler.stop();
        assert!(
            bitwise_eq(&plain.per_iteration, &profiled.per_iteration),
            "profiling changed the per-iteration series ({mode:?})"
        );

        // Pre-filling this thread's stack slot to MAX_PHASE_DEPTH forces
        // every engine publish on it down the truncation path; the
        // numbers still must not move.
        let deep = Arc::new(Profiler::with_period(Duration::from_micros(200)));
        let pad = deep.intern("pad");
        let _guards: Vec<_> = (0..fascia::obs::MAX_PHASE_DEPTH)
            .map(|_| deep.enter(pad))
            .collect();
        deep.start();
        let deep_cfg = CountConfig {
            profiler: Some(Arc::clone(&deep)),
            ..base.clone()
        };
        let overflowed = count_template(&g, &t, &deep_cfg).expect("overflowing run");
        deep.stop();
        assert!(
            bitwise_eq(&plain.per_iteration, &overflowed.per_iteration),
            "depth overflow changed the per-iteration series ({mode:?})"
        );
        if mode == ParallelMode::Serial {
            assert!(
                deep.truncated() > 0,
                "a saturated stack slot must count truncations"
            );
        }
    }
}

/// Runs a serial count sized to take a few hundred milliseconds and
/// returns the profiler (stopped) plus the measured wall time of the
/// whole sampling window.
fn profiled_serial_run() -> (Arc<Profiler>, Duration) {
    let g = fascia::graph::gen::gnm(2_000, 8_000, 17);
    let t = Template::path(5);
    // Calibrate iterations so the run is long enough to sample densely
    // (aiming for ~0.4 s) without dragging the test out on a slow box.
    let probe = CountConfig {
        iterations: 2,
        parallel: ParallelMode::Serial,
        seed: 3,
        ..CountConfig::default()
    };
    let start = Instant::now();
    count_template(&g, &t, &probe).expect("probe run");
    let per_iter = (start.elapsed().as_secs_f64() / 2.0).max(1e-6);
    let iterations = ((0.4 / per_iter) as usize).clamp(8, 5_000);

    let profiler = Arc::new(Profiler::with_period(Duration::from_micros(500)));
    let cfg = CountConfig {
        iterations,
        parallel: ParallelMode::Serial,
        seed: 3,
        profiler: Some(Arc::clone(&profiler)),
        ..CountConfig::default()
    };
    let start = Instant::now();
    profiler.start();
    count_template(&g, &t, &cfg).expect("profiled run");
    profiler.stop();
    let wall = start.elapsed();
    (profiler, wall)
}

#[test]
fn collapsed_stacks_parse_and_sum_to_the_sampling_window() {
    let (profiler, wall) = profiled_serial_run();
    assert!(profiler.ticks() > 50, "only {} ticks", profiler.ticks());
    let collapsed = profiler.collapsed();
    let mut sum_ns = 0u64;
    for line in collapsed.lines() {
        // Every line is `frame;frame;frame value` with a u64 value —
        // exactly what inferno-flamegraph and speedscope ingest.
        let (stack, value) = line.rsplit_once(' ').expect("stack/value split");
        assert!(!stack.is_empty(), "empty stack in: {line}");
        assert!(
            stack.split(';').all(|f| !f.is_empty()),
            "empty frame in: {line}"
        );
        sum_ns += value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad value in: {line}"));
    }
    // Serial run: one active thread, so line values apportion the window
    // and must sum back to it (idle included) within rounding.
    let window = profiler.window_ns();
    let drift = (sum_ns as f64 - window as f64).abs() / window as f64;
    assert!(
        drift < 0.02,
        "collapsed sums to {sum_ns} ns, window {window} ns"
    );
    // And the window itself tracks the measured wall time of the run.
    let wall_ns = wall.as_nanos() as f64;
    assert!(
        (window as f64 - wall_ns).abs() / wall_ns < 0.25,
        "window {window} ns vs wall {wall_ns} ns"
    );
}

#[test]
fn profiler_attributes_most_wall_time_to_named_phases() {
    let (profiler, _wall) = profiled_serial_run();
    let total = profiler.ticks();
    let idle = profiler.idle_ticks();
    assert!(total > 50, "only {total} ticks");
    // The profiler brackets the count call tightly, so nearly every
    // sample should land in a named engine phase: neither idle nor an
    // unknown frame.
    let unknown: u64 = profiler
        .collapsed()
        .lines()
        .filter(|l| l.contains('?'))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(unknown, 0, "unresolvable frames in the collapsed output");
    let attributed = (total - idle) as f64 / total as f64;
    assert!(
        attributed >= 0.90,
        "only {:.1}% of {total} samples attributed ({idle} idle)",
        attributed * 100.0
    );
    // The taxonomy covers the span names the flight recorder uses.
    let report = profiler.report();
    let names: Vec<&str> = report.iter().map(|s| s.name.as_str()).collect();
    for expect in ["iteration", "coloring", "wave"] {
        assert!(names.contains(&expect), "phase {expect} missing: {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("dp.n")),
        "no DP node phases in: {names:?}"
    );
    // Self time never exceeds total time, and the DP nodes dominate the
    // engine's self time on this workload.
    for s in &report {
        assert!(s.self_ns <= s.total_ns, "{s:?}");
        assert!(s.self_samples <= s.total_samples, "{s:?}");
    }
}
