//! Resilience suite: resume determinism, cooperative cancellation,
//! memory-budget degradation, and worker panic isolation.
//!
//! The load-bearing property is *bitwise* resume determinism for
//! `FixedIterations` runs: because iteration `i` derives its coloring from
//! `iteration_seed(seed, i)`, a run killed at any wave and resumed from
//! its checkpoint must reproduce the uninterrupted run's per-iteration
//! series — and therefore its estimate — bit for bit.

use fascia::obs::Metrics;
use fascia::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn test_graph() -> Graph {
    fascia::graph::gen::gnm(80, 240, 0xBEEF)
}

fn ck_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fascia_resilience_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn kill_then_resume_is_bitwise_identical_to_uninterrupted_run() {
    let g = test_graph();
    let t = Template::path(5);
    for mode in [ParallelMode::Serial, ParallelMode::OuterLoop] {
        let base = CountConfig {
            iterations: 40,
            seed: 0x0D15_EA5E,
            parallel: mode,
            ..CountConfig::default()
        };
        let clean = count_template(&g, &t, &base).expect("clean run");
        assert_eq!(clean.iterations_run, 40);

        // Kill the run mid-flight at iteration 17 (the whole wave holding
        // it is discarded) while checkpointing every wave.
        let path = ck_path(&format!("kill_{mode:?}.ckpt"));
        std::fs::remove_file(&path).ok();
        let killed_cfg = CountConfig {
            checkpoint: Some(CheckpointConfig::new(&path)),
            fault: FaultInjection {
                cancel_on_iteration: Some(17),
                ..FaultInjection::default()
            },
            ..base.clone()
        };
        let killed = count_template(&g, &t, &killed_cfg);
        let done_at_kill = match &killed {
            Ok(r) => {
                assert!(r.stop_cause.is_partial(), "{:?}", r.stop_cause);
                assert!(r.iterations_run < 40);
                // The partial estimate is the mean of a prefix of the
                // clean series.
                assert!(bitwise_eq(
                    &r.per_iteration,
                    &clean.per_iteration[..r.iterations_run]
                ));
                r.iterations_run
            }
            // Cancellation before the first wave completed: no estimate.
            Err(CountError::Cancelled) => 0,
            Err(e) => panic!("unexpected failure: {e}"),
        };

        // The checkpoint on disk matches what the killed run reported.
        let ck = Checkpoint::load(&path).expect("checkpoint parses");
        assert_eq!(ck.iterations_done(), done_at_kill);
        assert!(bitwise_eq(
            &ck.per_iteration,
            &clean.per_iteration[..done_at_kill]
        ));

        // Resume completes the original 40 and reproduces the clean run
        // exactly.
        let resume_cfg = CountConfig {
            resume: Some(ck),
            ..base.clone()
        };
        let resumed = count_template(&g, &t, &resume_cfg).expect("resumed run");
        assert_eq!(resumed.iterations_run, 40);
        assert_eq!(resumed.resumed_iterations, done_at_kill);
        assert!(
            bitwise_eq(&resumed.per_iteration, &clean.per_iteration),
            "resume diverged from uninterrupted run in mode {mode:?}"
        );
        assert_eq!(resumed.estimate.to_bits(), clean.estimate.to_bits());
        assert_eq!(resumed.stop_cause, StopCause::Completed);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn adaptive_run_resumes_and_converges_like_the_uninterrupted_one() {
    let g = test_graph();
    let t = Template::path(4);
    let rule = StopRule::RelativeError {
        epsilon: 0.10,
        delta: 0.05,
        min_iters: 8,
        max_iters: 4000,
    };
    let base = CountConfig {
        seed: 0xADA7,
        stop: Some(rule),
        parallel: ParallelMode::Serial,
        ..CountConfig::default()
    };
    let clean = count_template(&g, &t, &base).expect("clean adaptive run");
    assert!(!clean.stop_cause.is_partial());

    let path = ck_path("adaptive.ckpt");
    std::fs::remove_file(&path).ok();
    let killed_cfg = CountConfig {
        checkpoint: Some(CheckpointConfig::new(&path)),
        fault: FaultInjection {
            cancel_on_iteration: Some(10),
            ..FaultInjection::default()
        },
        ..base.clone()
    };
    let _ = count_template(&g, &t, &killed_cfg);
    let ck = Checkpoint::load(&path).expect("checkpoint parses");

    let resume_cfg = CountConfig {
        resume: Some(ck),
        ..base.clone()
    };
    let resumed = count_template(&g, &t, &resume_cfg).expect("resumed adaptive run");
    assert!(!resumed.stop_cause.is_partial());
    // Same seed and per-index colorings: the resumed run walks the same
    // series, so it converges at the same point with the same estimate.
    assert_eq!(resumed.iterations_run, clean.iterations_run);
    assert_eq!(resumed.estimate.to_bits(), clean.estimate.to_bits());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_mismatched_run_configuration() {
    let g = test_graph();
    let t = Template::path(5);
    let base = CountConfig {
        iterations: 20,
        seed: 42,
        parallel: ParallelMode::Serial,
        ..CountConfig::default()
    };
    let path = ck_path("mismatch.ckpt");
    std::fs::remove_file(&path).ok();
    let ck_cfg = CountConfig {
        checkpoint: Some(CheckpointConfig::new(&path)),
        ..base.clone()
    };
    count_template(&g, &t, &ck_cfg).expect("checkpointed run");
    let ck = Checkpoint::load(&path).expect("checkpoint parses");

    // Wrong graph.
    let other = fascia::graph::gen::gnm(81, 240, 0xBEEF);
    let cfg = CountConfig {
        resume: Some(ck.clone()),
        ..base.clone()
    };
    assert!(matches!(
        count_template(&other, &t, &cfg),
        Err(CountError::ResumeMismatch(_))
    ));

    // Wrong seed.
    let cfg = CountConfig {
        resume: Some(ck.clone()),
        seed: 43,
        ..base.clone()
    };
    assert!(matches!(
        count_template(&g, &t, &cfg),
        Err(CountError::ResumeMismatch(_))
    ));

    // Wrong template size.
    let cfg = CountConfig {
        resume: Some(ck),
        ..base.clone()
    };
    assert!(matches!(
        count_template(&g, &Template::path(4), &cfg),
        Err(CountError::ResumeMismatch(_))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn cancelled_token_and_zero_deadline_stop_before_any_iteration() {
    let g = test_graph();
    let t = Template::path(4);
    let token = CancelToken::new();
    token.cancel();
    let cfg = CountConfig {
        iterations: 50,
        cancel: Some(token),
        ..CountConfig::default()
    };
    assert!(matches!(
        count_template(&g, &t, &cfg),
        Err(CountError::Cancelled)
    ));

    let cfg = CountConfig {
        iterations: 50,
        cancel: Some(CancelToken::new().deadline(Duration::ZERO)),
        ..CountConfig::default()
    };
    assert!(matches!(
        count_template(&g, &t, &cfg),
        Err(CountError::Cancelled)
    ));
}

#[test]
fn memory_budget_degrades_layout_before_failing() {
    // The circuit network is sparse enough that the hashed layout is far
    // smaller than lazy/dense — giving the degradation ladder real room.
    let g = Dataset::Circuit.generate(1, 0xDA7A);
    let t = Template::path(7);
    let base = CountConfig {
        iterations: 10,
        seed: 7,
        parallel: ParallelMode::Serial,
        table: TableKind::Dense,
        ..CountConfig::default()
    };
    let clean = count_template(&g, &t, &base).expect("unbudgeted run");

    // Walk the budget down from the unbudgeted peak: runs first succeed
    // without degradation, then succeed by falling back to cheaper
    // layouts (counted in the metric), then fail with a typed error.
    // 2% steps: comfortably finer than the ~13% budget band in which the
    // dense layout no longer fits but hashed still does.
    let mut budget = clean.peak_table_bytes.max(1);
    let mut saw_fallback = false;
    let mut saw_exhaustion = false;
    for _ in 0..400 {
        let metrics = Arc::new(Metrics::new());
        let cfg = CountConfig {
            memory_budget_bytes: Some(budget),
            metrics: Some(metrics.clone()),
            ..base.clone()
        };
        match count_template(&g, &t, &cfg) {
            Ok(r) => {
                assert!(r.estimate.is_finite());
                if metrics.counter("engine.degrade.layout_fallbacks").get() > 0 {
                    saw_fallback = true;
                }
            }
            Err(CountError::BudgetExceeded {
                required,
                budget: b,
            }) => {
                assert!(required > b, "required {required} vs budget {b}");
                saw_exhaustion = true;
                break;
            }
            Err(e) => panic!("unexpected failure at budget {budget}: {e}"),
        }
        budget = budget * 49 / 50;
    }
    assert!(saw_fallback, "no budget triggered a layout fallback");
    assert!(saw_exhaustion, "no budget was small enough to fail");
}

#[test]
fn injected_panic_is_retried_without_poisoning_the_estimate() {
    let g = test_graph();
    let t = Template::path(5);
    let base = CountConfig {
        iterations: 20,
        seed: 0xFA11,
        parallel: ParallelMode::Serial,
        ..CountConfig::default()
    };
    let clean = count_template(&g, &t, &base).expect("clean run");

    let metrics = Arc::new(Metrics::new());
    let cfg = CountConfig {
        fault: FaultInjection {
            panic_on_iteration: Some(3),
            ..FaultInjection::default()
        },
        metrics: Some(metrics.clone()),
        ..base.clone()
    };
    let r = count_template(&g, &t, &cfg).expect("run with injected panic");
    assert_eq!(r.iterations_run, 20);
    assert!(r.estimate.is_finite());
    assert_eq!(metrics.counter("engine.iterations.poisoned").get(), 1);
    assert_eq!(metrics.counter("engine.iterations.retried").get(), 1);
    // Only the retried iteration (salted seed) may differ from the clean
    // series; every other iteration is untouched by the fault.
    for (i, (a, b)) in r.per_iteration.iter().zip(&clean.per_iteration).enumerate() {
        if i != 3 {
            assert_eq!(a.to_bits(), b.to_bits(), "iteration {i} diverged");
        }
    }
    // The clean estimate sits inside the faulted run's CI and vice versa
    // (one resampled iteration must not poison the whole estimate).
    assert!(
        (r.estimate - clean.estimate).abs() <= r.ci95.max(clean.ci95),
        "retry skewed the estimate: {} vs {}",
        r.estimate,
        clean.estimate
    );
}

#[test]
fn checkpoint_counts_writes_and_carries_peak_bytes_across_resume() {
    let g = test_graph();
    let t = Template::path(5);
    let path = ck_path("peak.ckpt");
    std::fs::remove_file(&path).ok();
    let metrics = Arc::new(Metrics::new());
    let cfg = CountConfig {
        iterations: 12,
        seed: 5,
        parallel: ParallelMode::Serial,
        checkpoint: Some(CheckpointConfig::new(&path)),
        metrics: Some(metrics.clone()),
        ..CountConfig::default()
    };
    let r = count_template(&g, &t, &cfg).expect("checkpointed run");
    assert!(metrics.counter("engine.checkpoint.writes").get() > 0);

    let ck = Checkpoint::load(&path).expect("checkpoint parses");
    assert_eq!(ck.peak_table_bytes, r.peak_table_bytes);
    let resumed = count_template(
        &g,
        &t,
        &CountConfig {
            resume: Some(ck),
            iterations: 12,
            seed: 5,
            parallel: ParallelMode::Serial,
            ..CountConfig::default()
        },
    )
    .expect("resume of a finished run");
    // Nothing left to execute, but the report still covers the whole
    // logical run.
    assert_eq!(resumed.iterations_run, 12);
    assert_eq!(resumed.resumed_iterations, 12);
    assert_eq!(resumed.peak_table_bytes, r.peak_table_bytes);
    assert_eq!(resumed.estimate.to_bits(), r.estimate.to_bits());
    std::fs::remove_file(&path).ok();
}
