//! Cross-crate accuracy tests: color-coding estimates must converge to the
//! exact enumeration counts on a corpus of small graphs and templates.

use fascia::prelude::*;

fn rel_err(est: f64, exact: u128) -> f64 {
    if exact == 0 {
        est.abs()
    } else {
        (est - exact as f64).abs() / exact as f64
    }
}

fn graph_corpus() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnm", fascia::graph::gen::gnm(70, 200, 1)),
        ("ba", fascia::graph::gen::barabasi_albert(70, 2, 0, 2)),
        ("road", fascia::graph::gen::road_grid(8, 9, 90, 3)),
        (
            "dupdiv",
            fascia::graph::gen::duplication_divergence(70, 0.3, 0.6, 4),
        ),
        (
            "ring+chords",
            fascia::graph::gen::random_connected(60, 90, 5),
        ),
    ]
}

#[test]
fn paths_converge_on_corpus() {
    for (name, g) in graph_corpus() {
        for k in [3usize, 4, 5] {
            let t = Template::path(k);
            let exact = count_exact(&g, &t);
            let cfg = CountConfig {
                iterations: 700,
                seed: 42,
                ..CountConfig::default()
            };
            let r = count_template(&g, &t, &cfg).unwrap();
            let err = rel_err(r.estimate, exact);
            assert!(
                err < 0.12,
                "{name} P{k}: est {} vs exact {exact} (err {err:.3})",
                r.estimate
            );
        }
    }
}

#[test]
fn stars_and_spiders_converge() {
    for (name, g) in graph_corpus() {
        for t in [
            Template::star(4),
            Template::star(5),
            Template::spider(&[1, 1, 2]),
        ] {
            let exact = count_exact(&g, &t);
            let cfg = CountConfig {
                iterations: 700,
                seed: 7,
                ..CountConfig::default()
            };
            let r = count_template(&g, &t, &cfg).unwrap();
            let err = rel_err(r.estimate, exact);
            assert!(
                err < 0.15,
                "{name} {t:?}: est {} vs exact {exact} (err {err:.3})",
                r.estimate
            );
        }
    }
}

#[test]
fn all_size6_topologies_converge_on_one_graph() {
    let g = fascia::graph::gen::gnm(60, 170, 9);
    for (i, t) in fascia::template::gen::all_free_trees(6).iter().enumerate() {
        let exact = count_exact(&g, t);
        let cfg = CountConfig {
            iterations: 900,
            seed: 13,
            ..CountConfig::default()
        };
        let r = count_template(&g, t, &cfg).unwrap();
        let err = rel_err(r.estimate, exact);
        assert!(
            err < 0.2,
            "size-6 topology {i}: est {} vs exact {exact} (err {err:.3})",
            r.estimate
        );
    }
}

#[test]
fn triangle_cactus_templates_converge() {
    let g = fascia::graph::gen::gnm(50, 220, 17);
    // Triangle, triangle+pendant, triangle+path-of-2 pendant.
    let templates = vec![
        Template::triangle(),
        fascia::template::Template::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap(),
        fascia::template::Template::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4)])
            .unwrap(),
    ];
    for t in templates {
        let exact = count_exact(&g, &t);
        assert!(exact > 0, "corpus graph must contain {t:?}");
        let cfg = CountConfig {
            iterations: 1500,
            seed: 23,
            ..CountConfig::default()
        };
        let r = count_template(&g, &t, &cfg).unwrap();
        let err = rel_err(r.estimate, exact);
        assert!(
            err < 0.15,
            "{t:?}: est {} vs exact {exact} (err {err:.3})",
            r.estimate
        );
    }
}

#[test]
fn labeled_estimates_converge() {
    let g = fascia::graph::gen::gnm(60, 200, 31);
    let labels = random_labels(60, 3, 8);
    let t = Template::spider(&[1, 2])
        .with_labels(vec![0, 1, 2, 0])
        .unwrap();
    let exact = count_exact_labeled(&g, &labels, &t);
    assert!(exact > 0);
    let cfg = CountConfig {
        iterations: 1200,
        seed: 3,
        ..CountConfig::default()
    };
    let r = count_template_labeled(&g, &labels, &t, &cfg).unwrap();
    let err = rel_err(r.estimate, exact);
    assert!(
        err < 0.15,
        "est {} vs exact {exact} (err {err:.3})",
        r.estimate
    );
}

#[test]
fn more_colors_reduce_variance() {
    // With k > template size the colorful probability rises, so the
    // per-iteration estimates spread less. Compare sample variance.
    let g = fascia::graph::gen::gnm(60, 180, 37);
    let t = Template::path(5);
    let variance = |colors: Option<usize>| {
        let cfg = CountConfig {
            iterations: 400,
            colors,
            seed: 77,
            ..CountConfig::default()
        };
        let r = count_template(&g, &t, &cfg).unwrap();
        let mean = r.estimate;
        r.per_iteration
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / r.per_iteration.len() as f64
    };
    let v5 = variance(None);
    let v8 = variance(Some(8));
    assert!(
        v8 < v5,
        "extra colors should reduce variance: var(k=5) {v5:.3e} vs var(k=8) {v8:.3e}"
    );
}
