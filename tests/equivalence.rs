//! Cross-crate equivalence tests: every configuration axis (table layout,
//! partition strategy, parallel mode, sharing) must leave the per-iteration
//! counts bitwise identical — they are different implementations of the
//! same mathematical sum.

use fascia::prelude::*;

fn test_graph() -> Graph {
    fascia::graph::gen::barabasi_albert(300, 3, 0, 42)
}

fn templates() -> Vec<Template> {
    vec![
        Template::path(3),
        Template::path(6),
        NamedTemplate::U5_2.template(),
        NamedTemplate::U7_2.template(),
        Template::star(5),
        Template::triangle(),
    ]
}

#[test]
fn table_layouts_are_equivalent() {
    let g = test_graph();
    for t in templates() {
        let runs: Vec<Vec<f64>> = TableKind::all()
            .into_iter()
            .map(|kind| {
                let cfg = CountConfig {
                    iterations: 3,
                    table: kind,
                    parallel: ParallelMode::Serial,
                    seed: 5,
                    ..CountConfig::default()
                };
                count_template(&g, &t, &cfg).unwrap().per_iteration
            })
            .collect();
        assert_eq!(runs[0], runs[1], "dense vs lazy on {t:?}");
        assert_eq!(runs[0], runs[2], "dense vs hash on {t:?}");
    }
}

#[test]
fn strategies_are_equivalent() {
    let g = test_graph();
    for t in templates() {
        let run = |strategy| {
            let cfg = CountConfig {
                iterations: 3,
                strategy,
                parallel: ParallelMode::Serial,
                seed: 11,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().per_iteration
        };
        assert_eq!(
            run(PartitionStrategy::OneAtATime),
            run(PartitionStrategy::Balanced),
            "strategy mismatch on {t:?}"
        );
    }
}

#[test]
fn parallel_modes_are_equivalent() {
    let g = test_graph();
    for t in [Template::path(5), NamedTemplate::U7_2.template()] {
        let run = |mode| {
            let cfg = CountConfig {
                iterations: 4,
                parallel: mode,
                seed: 17,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().per_iteration
        };
        let serial = run(ParallelMode::Serial);
        assert_eq!(serial, run(ParallelMode::InnerLoop), "inner on {t:?}");
        assert_eq!(serial, run(ParallelMode::OuterLoop), "outer on {t:?}");
        assert_eq!(serial, run(ParallelMode::Hybrid), "hybrid on {t:?}");
        assert_eq!(serial, run(ParallelMode::Auto), "auto on {t:?}");
    }
}

#[test]
fn exact_engines_are_equivalent() {
    use fascia::core::enumerate::count_exact_pruned;
    let g = fascia::graph::gen::gnm(45, 130, 3);
    for t in templates() {
        let naive = count_exact(&g, &t);
        let pruned = count_exact_pruned(&g, &t);
        assert_eq!(naive, pruned, "exact engines disagree on {t:?}");
        let mut listed = 0u128;
        enumerate_embeddings(&g, &t, |_| listed += 1);
        assert_eq!(listed, naive, "enumeration disagrees on {t:?}");
    }
}

#[test]
fn uniform_labels_match_unlabeled() {
    let g = test_graph();
    let labels = vec![0u8; g.num_vertices()];
    for t in [Template::path(4), NamedTemplate::U5_2.template()] {
        let tl = t.clone().with_labels(vec![0; t.size()]).unwrap();
        let cfg = CountConfig {
            iterations: 3,
            parallel: ParallelMode::Serial,
            seed: 23,
            ..CountConfig::default()
        };
        let plain = count_template(&g, &t, &cfg).unwrap().per_iteration;
        let labeled = count_template_labeled(&g, &labels, &tl, &cfg)
            .unwrap()
            .per_iteration;
        assert_eq!(plain, labeled, "labels=const must equal unlabeled on {t:?}");
    }
}

#[test]
fn label_partition_sums_to_unlabeled() {
    // Counting P2 with each ordered label pair and summing must equal the
    // unlabeled count exactly (exact engines; property of the label
    // semantics, not the estimator).
    let g = fascia::graph::gen::gnm(40, 100, 9);
    let labels = random_labels(40, 2, 31);
    let t = Template::path(2);
    let unlabeled = count_exact(&g, &t);
    let mut sum = 0u128;
    for a in 0..2u8 {
        for b in 0..2u8 {
            let tl = Template::path(2).with_labels(vec![a, b]).unwrap();
            let c = count_exact_labeled(&g, &labels, &tl);
            // (a,b) and (b,a) describe the same unordered template when
            // a != b; the automorphism handling means each unordered
            // labeled template is counted once.
            sum += c;
        }
    }
    // For a != b the two orderings are the same template counted twice.
    // unlabeled = c(0,0) + c(1,1) + c(0,1)  and  c(0,1) == c(1,0).
    let t01 = Template::path(2).with_labels(vec![0, 1]).unwrap();
    let t10 = Template::path(2).with_labels(vec![1, 0]).unwrap();
    assert_eq!(
        count_exact_labeled(&g, &labels, &t01),
        count_exact_labeled(&g, &labels, &t10)
    );
    assert_eq!(sum - count_exact_labeled(&g, &labels, &t01), unlabeled);
}

#[test]
fn deterministic_across_processes() {
    // Fixed seed, fixed everything: the exact expected estimate for this
    // configuration is pinned so accidental RNG/order changes surface.
    let g = fascia::graph::gen::gnm(30, 80, 1);
    let t = Template::path(4);
    let cfg = CountConfig {
        iterations: 2,
        parallel: ParallelMode::Serial,
        seed: 1,
        ..CountConfig::default()
    };
    let a = count_template(&g, &t, &cfg).unwrap().estimate;
    let b = count_template(&g, &t, &cfg).unwrap().estimate;
    assert_eq!(a, b);
    assert!(a.is_finite() && a >= 0.0);
}
