//! Cross-crate property tests: random small graphs and random tree
//! templates, checking structural invariants that must hold for any input
//! (estimator scaling identities, partition/table equivalences).

use fascia::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (10usize..40, 1u64..1000).prop_map(|(n, seed)| {
        let m = (n * 3).min(n * (n - 1) / 2);
        fascia::graph::gen::gnm(n, m, seed)
    })
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Template> {
    (
        2usize..max_n,
        proptest::collection::vec(0u32..u32::MAX, max_n),
    )
        .prop_map(|(n, rs)| {
            let parents: Vec<u8> = (0..n - 1)
                .map(|i| (rs[i] as usize % (i + 1)) as u8)
                .collect();
            Template::from_parents(&parents).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One iteration with ANY seed gives a finite non-negative estimate,
    /// and all three table layouts agree bitwise on it.
    #[test]
    fn layouts_agree_on_random_inputs(g in arb_graph(), t in arb_tree(6), seed in any::<u64>()) {
        let run = |table| {
            let cfg = CountConfig {
                iterations: 1,
                table,
                parallel: ParallelMode::Serial,
                seed,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().estimate
        };
        let dense = run(TableKind::Dense);
        prop_assert!(dense.is_finite() && dense >= 0.0);
        prop_assert_eq!(dense, run(TableKind::Lazy));
        prop_assert_eq!(dense, run(TableKind::Hash));
    }

    /// Partition strategies agree on random trees.
    #[test]
    fn strategies_agree_on_random_trees(g in arb_graph(), t in arb_tree(7), seed in any::<u64>()) {
        let run = |strategy| {
            let cfg = CountConfig {
                iterations: 1,
                strategy,
                parallel: ParallelMode::Serial,
                seed,
                ..CountConfig::default()
            };
            count_template(&g, &t, &cfg).unwrap().estimate
        };
        prop_assert_eq!(run(PartitionStrategy::OneAtATime), run(PartitionStrategy::Balanced));
    }

    /// The exact counter is invariant under relabeling of template
    /// vertices (isomorphic templates count the same).
    #[test]
    fn exact_count_is_isomorphism_invariant(g in arb_graph(), t in arb_tree(6)) {
        // Relabel template vertices by reversing ids.
        let n = t.size() as u8;
        let edges: Vec<(u8, u8)> = t
            .edges()
            .iter()
            .map(|&(a, b)| (n - 1 - a, n - 1 - b))
            .collect();
        let t2 = Template::tree_from_edges(t.size(), &edges).unwrap();
        prop_assert_eq!(count_exact(&g, &t), count_exact(&g, &t2));
    }

    /// Colorful counts scale correctly: estimate * P * alpha equals the
    /// raw colorful homomorphism total, which is at most the full
    /// homomorphism count (alpha x exact).
    #[test]
    fn colorful_total_bounded_by_homomorphisms(g in arb_graph(), t in arb_tree(5), seed in any::<u64>()) {
        let cfg = CountConfig {
            iterations: 1,
            parallel: ParallelMode::Serial,
            seed,
            ..CountConfig::default()
        };
        let r = count_template(&g, &t, &cfg).unwrap();
        let colorful = r.per_iteration[0] * r.colorful_probability * r.automorphisms as f64;
        let homs = (count_exact(&g, &t) * r.automorphisms as u128) as f64;
        prop_assert!(colorful <= homs + 1e-6, "colorful {colorful} > homs {homs}");
    }

    /// Graph generators produce valid CSR invariants under any seed.
    #[test]
    fn generators_produce_valid_graphs(n in 10usize..60, seed in any::<u64>()) {
        let graphs = vec![
            fascia::graph::gen::gnm(n, 2 * n, seed),
            fascia::graph::gen::barabasi_albert(n, 2, 0, seed),
            fascia::graph::gen::duplication_divergence(n.max(4), 0.4, 0.5, seed),
            fascia::graph::gen::random_connected(n, 2 * n, seed),
        ];
        for g in graphs {
            let degsum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.num_edges());
            for v in 0..g.num_vertices() {
                for &u in g.neighbors(v) {
                    prop_assert!(g.has_edge(u as usize, v));
                    prop_assert!((u as usize) != v);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Directed orientation classes of the 3-vertex tree partition the
    /// undirected P3 count on any randomly oriented graph.
    #[test]
    fn directed_p3_partition_identity(n in 12usize..35, seed in any::<u64>()) {
        let und = fascia::graph::gen::gnm(n, 2 * n, seed);
        let g = DiGraph::orient_randomly(&und, seed ^ 0xBEEF);
        let undirected = count_exact(&und, &Template::path(3));
        let sum = count_exact_directed(&g, &DiTemplate::directed_path(3))
            + count_exact_directed(&g, &DiTemplate::out_star(3))
            + count_exact_directed(&g, &DiTemplate::in_star(3));
        prop_assert_eq!(sum, undirected);
    }

    /// Distributed simulation is estimate-identical to the engine for any
    /// random input and rank count.
    #[test]
    fn distsim_identity(n in 15usize..50, ranks in 1usize..9, seed in any::<u64>()) {
        let g = fascia::graph::gen::gnm(n, 2 * n, seed);
        let t = Template::path(4);
        let base = CountConfig {
            iterations: 1,
            parallel: ParallelMode::Serial,
            seed,
            ..CountConfig::default()
        };
        let shared = count_template(&g, &t, &base).unwrap().estimate;
        let cfg = DistConfig { ranks, scheme: PartitionScheme::Block, count: base };
        let dist = count_distributed(&g, &t, &cfg).unwrap().estimate;
        prop_assert_eq!(shared, dist);
    }

    /// An adaptive rule capped at `max_iters = n` never does more work
    /// than `FixedIterations(n)`: it runs at most n iterations, and the
    /// iterations it does run are the same seeded prefix the fixed run
    /// would produce.
    #[test]
    fn adaptive_never_exceeds_fixed_budget(
        n in 15usize..40,
        budget in 2usize..60,
        seed in any::<u64>(),
    ) {
        let g = fascia::graph::gen::gnm(n, 2 * n, seed);
        let t = Template::path(3);
        let base = CountConfig {
            iterations: budget,
            parallel: ParallelMode::Serial,
            seed,
            ..CountConfig::default()
        };
        let fixed = count_template(&g, &t, &base).unwrap();
        let adaptive_cfg = CountConfig {
            stop: Some(StopRule::RelativeError {
                epsilon: 0.05,
                delta: 0.05,
                min_iters: 2,
                max_iters: budget,
            }),
            ..base
        };
        let adaptive = count_template(&g, &t, &adaptive_cfg).unwrap();
        prop_assert!(adaptive.iterations_run <= budget,
            "adaptive ran {} > budget {budget}", adaptive.iterations_run);
        prop_assert_eq!(fixed.iterations_run, budget);
        // Same seeded iteration series prefix — the adaptive run is a
        // prefix of the fixed run's work, never extra work.
        prop_assert_eq!(
            &adaptive.per_iteration[..],
            &fixed.per_iteration[..adaptive.iterations_run]
        );
    }

    /// Sampled embeddings are always valid occurrences.
    #[test]
    fn sampled_embeddings_valid(seed in any::<u64>()) {
        let g = fascia::graph::gen::gnm(20, 45, seed);
        let t = Template::path(4);
        let cfg = CountConfig { iterations: 40, seed, ..CountConfig::default() };
        let samples = sample_embeddings(&g, &t, &cfg, 5).unwrap();
        for emb in samples {
            let mut uniq = emb.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), 4);
            for &(a, b) in t.edges() {
                prop_assert!(g.has_edge(emb[a as usize] as usize, emb[b as usize] as usize));
            }
        }
    }
}
