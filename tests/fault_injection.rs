//! Fault injection: adversarial, corrupted, and truncated bytes pushed
//! through every deserialization surface — edge-list loading and
//! checkpoint parsing — plus engine-level resume with damaged state.
//!
//! The invariant under test is uniform: hostile input yields a typed
//! error (or a clean success when the damage happens to stay
//! well-formed), never a panic, never unbounded memory.

use fascia::prelude::*;
use fascia_graph::io::{load_edge_list, read_edge_list, read_edge_list_stats, IoError};
use proptest::prelude::*;
use std::io::Cursor;

fn sample_checkpoint() -> Checkpoint {
    Checkpoint {
        seed: 0xFEED_F00D,
        colors: 5,
        template_size: 5,
        graph_vertices: 97,
        graph_edges: 301,
        rule: StopRule::FixedIterations(40),
        per_iteration: vec![1.5, 7.25, 3.125, 0.0, 12.0625],
        peak_table_bytes: 65_536,
    }
}

// ---------------------------------------------------------------------
// Edge-list loader.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary bytes through the loader: typed outcome, no panic.
    #[test]
    fn loader_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_edge_list(Cursor::new(bytes));
    }

    /// A valid edge list with one byte flipped, and every truncation of
    /// it, parses or fails cleanly — and whatever loads stays within the
    /// vertex bounds implied by the text.
    #[test]
    fn loader_survives_corrupted_valid_lists(
        n in 4usize..40,
        seed in 0u64..500,
        pos in any::<usize>(),
        flip in 1u8..255,
    ) {
        let m = (n * 2).min(n * (n - 1) / 2);
        let g = fascia::graph::gen::gnm(n, m, seed);
        let mut text = String::new();
        for (u, v) in g.edges() {
            text.push_str(&format!("{u} {v}\n"));
        }
        let mut bytes = text.clone().into_bytes();
        prop_assert!(!bytes.is_empty());
        let i = pos % bytes.len();
        bytes[i] ^= flip;
        match read_edge_list(Cursor::new(&bytes[..])) {
            Ok((g2, ids)) => {
                prop_assert_eq!(g2.num_vertices(), ids.len());
            }
            Err(IoError::Parse { line, .. }) => prop_assert!(line >= 1),
            Err(IoError::Read { .. }) => {}
            Err(e) => panic!("unexpected error kind: {e}"),
        }
        // Truncation at the same offset.
        let _ = read_edge_list(Cursor::new(&text.as_bytes()[..i]));
    }

    /// Self-loop and duplicate floods never inflate the loaded graph.
    #[test]
    fn loader_absorbs_floods(v in 0u64..50, copies in 1usize..200) {
        let mut text = String::new();
        for _ in 0..copies {
            text.push_str(&format!("{v} {v}\n{v} {}\n{} {v}\n", v + 1, v + 1));
        }
        let (g, ids, stats) = match read_edge_list_stats(Cursor::new(&text)) {
            Ok(out) => out,
            Err(e) => panic!("flood should load: {e}"),
        };
        prop_assert_eq!(ids.len(), 2);
        prop_assert_eq!(g.num_edges(), 1);
        prop_assert_eq!(stats.self_loops, copies);
        prop_assert_eq!(stats.duplicate_edges, 2 * copies - 1);
    }
}

#[test]
fn loader_reports_missing_file_as_io() {
    assert!(matches!(
        load_edge_list("/definitely/not/a/real/edge/list.txt"),
        Err(IoError::Io(_))
    ));
}

// ---------------------------------------------------------------------
// Checkpoint parser.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every proper prefix of a valid checkpoint is rejected with an
    /// error, never a panic (the serialized form is pure ASCII, so any
    /// byte offset is a char boundary).
    #[test]
    fn checkpoint_rejects_every_truncation(cut in any::<usize>()) {
        let json = sample_checkpoint().to_json();
        let cut = cut % json.len();
        prop_assert!(Checkpoint::from_json(&json[..cut]).is_err());
    }

    /// One flipped byte: the per-iteration series (and the statistics
    /// derived from it) can never be altered silently — the stored
    /// Welford snapshot is replayed on load and must match bit for bit.
    /// Header fields (seed, sizes, rule, peak bytes) may still parse
    /// after a flip; those are checked against the actual run by the
    /// engine's resume fingerprint instead.
    #[test]
    fn checkpoint_corruption_cannot_alter_the_series(
        pos in any::<usize>(),
        flip in 1u8..128,
    ) {
        let original = sample_checkpoint();
        let json = original.to_json();
        let mut bytes = json.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] ^= flip;
        // Invalid UTF-8 is rejected by the file reader upstream; only
        // string-typed damage reaches the parser.
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(parsed) = Checkpoint::from_json(&text) {
                prop_assert_eq!(parsed.per_iteration.len(), original.per_iteration.len());
                for (a, b) in parsed.per_iteration.iter().zip(&original.per_iteration) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Random garbage through the parser: typed outcome, no panic.
    #[test]
    fn checkpoint_survives_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = Checkpoint::from_json(&text);
        }
    }
}

#[test]
fn checkpoint_rejects_adversarial_json_shapes() {
    // Deep nesting beyond the parser's recursion cap.
    assert!(Checkpoint::from_json(&"[".repeat(4096)).is_err());
    let deep = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
    assert!(Checkpoint::from_json(&deep).is_err());
    // Well-formed JSON of the wrong schema.
    assert!(Checkpoint::from_json("{}").is_err());
    assert!(Checkpoint::from_json("{\"schema\":\"fascia-ckpt/999\"}").is_err());
    assert!(Checkpoint::from_json("[1,2,3]").is_err());
    assert!(Checkpoint::from_json("null").is_err());
    // A checkpoint whose replayed statistics disagree with its stored
    // integrity snapshot (cross-field tamper the grammar can't catch).
    let json = sample_checkpoint().to_json();
    let tampered = json.replacen("7.25", "7.5", 1);
    assert_ne!(json, tampered, "tamper target missing from serialization");
    assert!(Checkpoint::from_json(&tampered).is_err());
}

#[test]
fn checkpoint_load_maps_missing_file_to_error() {
    assert!(Checkpoint::load(std::path::Path::new("/definitely/not/a/checkpoint.json")).is_err());
}

// ---------------------------------------------------------------------
// Engine-level resume with damaged or odd state.
// ---------------------------------------------------------------------

#[test]
fn resume_with_oversized_checkpoint_completes_without_executing() {
    // A checkpoint holding more iterations than the resumed budget asks
    // for: nothing left to run; the engine reports the stored series.
    let g = fascia::graph::gen::gnm(30, 60, 11);
    let t = Template::path(4);
    let base = CountConfig {
        iterations: 6,
        seed: 77,
        parallel: ParallelMode::Serial,
        ..CountConfig::default()
    };
    let dir = std::env::temp_dir().join("fascia_fault_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("oversized.ckpt");
    std::fs::remove_file(&path).ok();
    let full = count_template(
        &g,
        &t,
        &CountConfig {
            checkpoint: Some(CheckpointConfig::new(&path)),
            ..base.clone()
        },
    )
    .expect("checkpointed run");
    let ck = Checkpoint::load(&path).expect("checkpoint parses");
    assert_eq!(ck.iterations_done(), 6);

    // Resuming toward a smaller budget must not panic or truncate; the
    // stop rule in the checkpoint is authoritative and mismatches are
    // typed errors.
    let shrunk = CountConfig {
        resume: Some(ck.clone()),
        iterations: 3,
        ..base.clone()
    };
    assert!(matches!(
        count_template(&g, &t, &shrunk),
        Err(CountError::ResumeMismatch(_))
    ));

    // Resuming an already-complete run executes nothing new.
    let resumed = count_template(
        &g,
        &t,
        &CountConfig {
            resume: Some(ck),
            ..base.clone()
        },
    )
    .expect("no-op resume");
    assert_eq!(resumed.iterations_run, 6);
    assert_eq!(resumed.resumed_iterations, 6);
    assert_eq!(resumed.estimate.to_bits(), full.estimate.to_bits());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoint_file_fails_resume_cleanly() {
    let dir = std::env::temp_dir().join("fascia_fault_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corrupt.ckpt");
    let json = sample_checkpoint().to_json();
    // Chop the file mid-record, as a crash during a non-atomic write
    // would (the engine's own writes are atomic; a hostile or damaged
    // filesystem may not be).
    std::fs::write(&path, &json[..json.len() / 2]).expect("write");
    assert!(Checkpoint::load(&path).is_err());
    std::fs::remove_file(&path).ok();
}
