//! Quickstart: count a small template in a synthetic network and compare
//! against the exact count.
//!
//! Run: `cargo run --release --example quickstart`

use fascia::prelude::*;

fn main() {
    // A yeast-protein-interaction-like network (S. cerevisiae scale,
    // Table I of the paper), generated deterministically.
    let g = Dataset::SCerevisiae.generate(1, 42);
    println!(
        "network: n = {}, m = {}, d_avg = {:.1}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // The paper's U5-2 template: a 5-vertex tree with a degree-3 center.
    let template = NamedTemplate::U5_2.template();
    println!(
        "template: {} ({} vertices)",
        NamedTemplate::U5_2.name(),
        template.size()
    );

    // Approximate count via color coding.
    let cfg = CountConfig {
        iterations: 50,
        ..CountConfig::default()
    };
    let approx = count_template(&g, &template, &cfg).expect("counting failed");
    println!(
        "color coding ({} iterations): {:.4e}  [{:?} total, {:?}/iteration]",
        cfg.iterations, approx.estimate, approx.elapsed, approx.per_iteration_time
    );

    // Ground truth by exhaustive enumeration (feasible at this scale).
    let start = std::time::Instant::now();
    let exact = count_exact(&g, &template);
    println!("exact enumeration: {exact}  [{:?}]", start.elapsed());

    let err = (approx.estimate - exact as f64).abs() / exact as f64;
    println!("relative error: {:.3}%", 100.0 * err);

    // The theoretical iteration bound vs what we actually used.
    let bound = iterations_for(0.1, 0.05, template.size());
    println!(
        "AYZ worst-case bound for 10% error at 90% confidence: {bound} iterations \
         (practice: a handful suffices, as the paper shows)"
    );
}
