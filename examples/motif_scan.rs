//! Motif finding: scan all 11 tree topologies of size 7 across the four
//! protein-interaction networks and print each network's motif profile —
//! the paper's Fig. 13 workload as a library example.
//!
//! The biological claim this reproduces: unicellular organisms (E. coli,
//! S. cerevisiae, H. pylori) share a motif profile; C. elegans differs.
//!
//! Run: `cargo run --release --example motif_scan`

use fascia::prelude::*;

fn main() {
    let cfg = CountConfig {
        iterations: 200,
        ..CountConfig::default()
    };
    let mut profiles: Vec<(String, Vec<f64>)> = Vec::new();
    for ds in Dataset::ppi() {
        let g = ds.generate(1, 7);
        let profile = motif_profile(&g, 7, &cfg).expect("motif scan failed");
        println!(
            "{:<14} n={:<5} m={:<6} scan took {:?}",
            ds.spec().name,
            g.num_vertices(),
            g.num_edges(),
            profile.elapsed
        );
        profiles.push((ds.spec().name.to_string(), profile.relative_frequencies()));
    }

    println!("\nrelative motif frequencies (templates in generator order):");
    print!("{:<14}", "network");
    for i in 1..=11 {
        print!("{i:>8}");
    }
    println!();
    for (name, rel) in &profiles {
        print!("{name:<14}");
        for f in rel {
            print!("{f:>8.3}");
        }
        println!();
    }

    // Pairwise log-profile distances: the unicellular trio should cluster.
    println!("\npairwise profile distance (L2 over log10 frequencies):");
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            let d: f64 = profiles[i]
                .1
                .iter()
                .zip(&profiles[j].1)
                .map(|(&a, &b)| {
                    let (la, lb) = (a.max(1e-12).log10(), b.max(1e-12).log10());
                    (la - lb) * (la - lb)
                })
                .sum::<f64>()
                .sqrt();
            println!("  {:<14} vs {:<14} {d:.3}", profiles[i].0, profiles[j].0);
        }
    }
}
