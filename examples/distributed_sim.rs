//! Distributed-memory projection: the paper's future-work item ("partition
//! the dynamic programming table for execution on a distributed-memory
//! platform"), simulated. Vertices are partitioned across ranks; each rank
//! computes its owned DP rows and fetches ghost rows for remote neighbors.
//!
//! The simulation produces bitwise the same estimate as the shared-memory
//! engine while reporting what a real cluster would pay in communication —
//! showing why PARSE/SAHAD-style systems care about partitioning quality.
//!
//! Run: `cargo run --release --example distributed_sim`

use fascia::prelude::*;

fn main() {
    let scenarios = [
        ("Enron-like (heavy-tailed)", Dataset::Enron.generate(4, 8)),
        ("road-like (mesh)", Dataset::PaRoad.generate(256, 8)),
    ];
    let t = NamedTemplate::U5_2.template();
    let count = CountConfig {
        iterations: 3,
        parallel: ParallelMode::Serial,
        ..CountConfig::default()
    };

    for (name, g) in scenarios {
        println!(
            "== {name}: n = {}, m = {} ==",
            g.num_vertices(),
            g.num_edges()
        );
        let shared = count_template(&g, &t, &count).expect("shared-memory count");
        println!("shared-memory estimate: {:.4e}", shared.estimate);
        println!(
            "{:<8} {:<8} {:>12} {:>14} {:>10}",
            "ranks", "scheme", "ghost rows", "comm bytes", "imbalance"
        );
        for ranks in [1usize, 2, 4, 8, 16] {
            for scheme in [PartitionScheme::Block, PartitionScheme::Hash] {
                let cfg = DistConfig {
                    ranks,
                    scheme,
                    count: count.clone(),
                };
                let r = count_distributed(&g, &t, &cfg).expect("distributed count");
                assert_eq!(
                    r.estimate, shared.estimate,
                    "distributed execution must be bit-identical"
                );
                println!(
                    "{:<8} {:<8} {:>12} {:>14} {:>10.2}",
                    ranks,
                    format!("{scheme:?}"),
                    r.ghost_rows,
                    r.comm_bytes,
                    r.imbalance(ranks)
                );
            }
        }
        println!();
    }
    println!("estimates identical across all rank counts and schemes ✓");
}
