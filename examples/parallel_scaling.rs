//! Parallel modes: the paper's two OpenMP schemes (inner loop over
//! vertices vs outer loop over iterations) mapped onto rayon, with a
//! thread sweep. On a many-core machine this reproduces the Fig. 8/9
//! shapes; on a single core it degenerates gracefully.
//!
//! Run: `cargo run --release --example parallel_scaling`

use fascia::prelude::*;
use std::time::Instant;

fn main() {
    let g = Dataset::Enron.generate(1, 5);
    let t = NamedTemplate::U7_2.template();
    println!(
        "Enron-like network: n = {}, m = {}; template U7-2",
        g.num_vertices(),
        g.num_edges()
    );

    let max_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let iters = 8;
    println!(
        "{:<10} {:>12} {:>12}",
        "threads", "inner s/it", "outer s/it"
    );
    for nt in (0..)
        .map(|i| 1usize << i)
        .take_while(|&nt| nt <= max_threads)
    {
        let mut row = format!("{nt:<10}");
        for mode in [ParallelMode::InnerLoop, ParallelMode::OuterLoop] {
            let cfg = CountConfig {
                iterations: iters,
                parallel: mode,
                ..CountConfig::default()
            };
            let secs = with_threads(nt, || {
                let start = Instant::now();
                let r = count_template(&g, &t, &cfg).expect("count");
                let total = start.elapsed().as_secs_f64();
                assert!(r.estimate >= 0.0);
                total / iters as f64
            });
            row.push_str(&format!(" {secs:>11.4}"));
        }
        println!("{row}");
    }

    // Determinism across modes: identical estimates, bit for bit.
    let estimates: Vec<f64> = [
        ParallelMode::Serial,
        ParallelMode::InnerLoop,
        ParallelMode::OuterLoop,
    ]
    .into_iter()
    .map(|mode| {
        let cfg = CountConfig {
            iterations: 4,
            parallel: mode,
            ..CountConfig::default()
        };
        count_template(&g, &t, &cfg).expect("count").estimate
    })
    .collect();
    assert!(estimates.windows(2).all(|w| w[0] == w[1]));
    println!("\nall modes agree bitwise: estimate = {:.6e}", estimates[0]);
}
