//! Labeled counting: the paper's Portland experiment with 8 demographic
//! labels (2 genders x 4 age groups), showing how labels prune the search
//! and speed up counting by orders of magnitude (Fig. 4 vs Fig. 3).
//!
//! Run: `cargo run --release --example labeled_count`

use fascia::prelude::*;

fn main() {
    // Portland-like contact network at 1/256 scale for a quick demo.
    let g = Dataset::Portland.generate(256, 11);
    println!(
        "Portland-like network: n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    // Random demographic labels, as the paper assigns.
    let labels = random_labels(g.num_vertices(), 8, 99);

    let unlabeled = NamedTemplate::U7_2.template();
    let labeled = NamedTemplate::U7_2
        .template()
        .with_labels(vec![0, 1, 1, 2, 3, 4, 5])
        .expect("7 labels for 7 vertices");

    let cfg = CountConfig {
        iterations: 5,
        ..CountConfig::default()
    };

    let r_plain = count_template(&g, &unlabeled, &cfg).expect("unlabeled count");
    println!(
        "unlabeled U7-2: estimate {:.4e}, {:?}/iteration, peak {} KiB",
        r_plain.estimate,
        r_plain.per_iteration_time,
        r_plain.peak_table_bytes >> 10
    );

    let r_lab = count_template_labeled(&g, &labels, &labeled, &cfg).expect("labeled count");
    println!(
        "labeled U7-2:   estimate {:.4e}, {:?}/iteration, peak {} KiB",
        r_lab.estimate,
        r_lab.per_iteration_time,
        r_lab.peak_table_bytes >> 10
    );

    let speedup =
        r_plain.per_iteration_time.as_secs_f64() / r_lab.per_iteration_time.as_secs_f64().max(1e-9);
    let mem_saving = 1.0 - r_lab.peak_table_bytes as f64 / r_plain.peak_table_bytes as f64;
    println!(
        "labels: {speedup:.0}x faster, {:.0}% less table memory",
        100.0 * mem_saving
    );
}
