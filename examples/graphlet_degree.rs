//! Graphlet degree distributions (the paper's §V-F application): estimate
//! the GDD of the U5-2 central orbit on two different network families and
//! measure agreement against the exact distribution.
//!
//! Run: `cargo run --release --example graphlet_degree`

use fascia::core::gdd::exact_graphlet_degrees;
use fascia::prelude::*;

fn main() {
    let named = NamedTemplate::U5_2;
    let template = named.template();
    let orbit = named.central_orbit().expect("U5-2 has a degree-3 orbit");

    for (name, g) in [
        ("E. coli (PPI-like)", Dataset::EColi.generate(1, 3)),
        ("circuit", Dataset::Circuit.generate(1, 3)),
    ] {
        println!(
            "== {name}: n = {}, m = {} ==",
            g.num_vertices(),
            g.num_edges()
        );

        // Exact graphlet degrees by enumeration.
        let exact = exact_graphlet_degrees(&g, &template, orbit);
        let exact_hist = GddHistogram::from_degrees(&exact);

        // Color-coding estimates at increasing iteration counts.
        for iters in [1usize, 10, 100, 1000] {
            let cfg = CountConfig {
                iterations: iters,
                ..CountConfig::default()
            };
            let est = estimate_gdd(&g, &template, orbit, &cfg).expect("gdd failed");
            let agreement = gdd_agreement(&est, &exact_hist);
            println!("  {iters:>5} iterations: GDD agreement {agreement:.4}");
        }

        // Print the head of the exact distribution.
        println!("  exact distribution (degree: vertices):");
        for (j, c) in exact_hist.iter().take(8) {
            println!("    {j:>6}: {c}");
        }
        println!();
    }
}
