//! Enumeration: list the actual occurrences of a template (the
//! "Enumeration" in FASCIA's name), compare the three exact engines, and
//! show where approximate counting takes over as listing becomes
//! intractable.
//!
//! Run: `cargo run --release --example enumerate_embeddings`

use fascia::core::enumerate::count_exact_pruned;
use fascia::prelude::*;

fn main() {
    // The circuit network: small enough to enumerate everything.
    let g = Dataset::Circuit.generate(1, 1);
    println!(
        "circuit network: n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    let t = Template::path(4);
    println!("\nfirst ten P4 occurrences (vertices in template order):");
    let mut shown = 0;
    let mut total = 0u64;
    enumerate_embeddings(&g, &t, |image| {
        if shown < 10 {
            println!("  {image:?}");
            shown += 1;
        }
        total += 1;
    });
    println!("  ... {total} occurrences in total");

    // Cross-check all three exact engines.
    let naive = count_exact(&g, &t);
    let pruned = count_exact_pruned(&g, &t);
    assert_eq!(naive as u64, total);
    assert_eq!(pruned, naive);
    println!("naive = pruned = enumerated = {naive}");

    // Where enumeration stops being viable, color coding keeps going:
    // a 10-vertex path on the same network.
    let big = Template::path(10);
    let cfg = CountConfig {
        iterations: 1000,
        ..CountConfig::default()
    };
    let approx = count_template(&g, &big, &cfg).expect("count");
    let exact = count_exact(&g, &big);
    println!(
        "\nP10: exact {exact} vs color coding {:.4e} ({:.2}% error, {:?} total)",
        approx.estimate,
        100.0 * (approx.estimate - exact as f64).abs() / exact as f64,
        approx.elapsed
    );
}
