//! Directed counting: the extension the paper defers ("the algorithm
//! theoretically allows for directed templates and networks"). Counts
//! oriented 3- and 4-vertex patterns in a randomly oriented social-style
//! network and verifies the orientation-class identity: the three directed
//! 3-vertex tree patterns partition the undirected P3 count exactly.
//!
//! Run: `cargo run --release --example directed_count`

use fascia::prelude::*;

fn main() {
    let und = Dataset::Gnp.generate(1, 4);
    let g = DiGraph::orient_randomly(&und, 11);
    println!(
        "network: n = {}, arcs = {} (randomly oriented G(n,m))",
        g.num_vertices(),
        g.num_arcs()
    );

    let cfg = CountConfig {
        iterations: 20,
        ..CountConfig::default()
    };

    let patterns = [
        ("A -> B -> C (directed path)", DiTemplate::directed_path(3)),
        ("A <- B -> C (out-star)", DiTemplate::out_star(3)),
        ("A -> B <- C (in-star)", DiTemplate::in_star(3)),
    ];
    println!("\n3-vertex orientation classes:");
    let mut directed_sum = 0.0;
    for (name, t) in &patterns {
        let r = count_directed(&g, t, &cfg).expect("directed count");
        println!(
            "  {name:<28} estimate {:.4e}  (α = {})",
            r.estimate,
            t.automorphisms()
        );
        directed_sum += r.estimate;
    }

    // The identity: the three classes partition the undirected P3 count.
    let undirected = count_template(&und, &Template::path(3), &cfg)
        .expect("undirected count")
        .estimate;
    println!("\nsum of directed classes: {directed_sum:.4e}");
    println!("undirected P3 estimate:  {undirected:.4e}");
    let rel = (directed_sum - undirected).abs() / undirected;
    println!(
        "partition identity holds within {:.2}% (estimator noise)",
        100.0 * rel
    );

    // A 4-vertex feed-forward-style chain, exactly validated.
    let chain = DiTemplate::directed_path(4);
    let exact = count_exact_directed(&g, &chain);
    let est = count_directed(
        &g,
        &chain,
        &CountConfig {
            iterations: 300,
            ..cfg
        },
    )
    .expect("count")
    .estimate;
    println!(
        "\ndirected P4: exact {exact}, color coding {est:.4e} ({:.2}% error)",
        100.0 * (est - exact as f64).abs() / exact as f64
    );
}
