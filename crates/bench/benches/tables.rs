//! Micro-benchmarks of the three dynamic-table layouts (§III-C ablation):
//! construction and random access cost for dense / lazy / hash at equal
//! logical content.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fascia_table::{CountTable, DenseTable, HashCountTable, LazyTable, Rows};

fn make_rows(n: usize, nc: usize, density_pct: usize) -> Rows {
    (0..n)
        .map(|v| {
            if v % 100 < density_pct {
                let mut row = vec![0.0f64; nc].into_boxed_slice();
                for (cs, slot) in row.iter_mut().enumerate() {
                    if (v + cs) % 3 == 0 {
                        *slot = (v + cs) as f64;
                    }
                }
                Some(row)
            } else {
                None
            }
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let n = 20_000;
    let nc = 126; // C(9, 4)
    let mut group = c.benchmark_group("table_build");
    for density in [10usize, 90] {
        let rows = make_rows(n, nc, density);
        group.bench_with_input(BenchmarkId::new("dense", density), &rows, |b, rows| {
            b.iter(|| DenseTable::from_rows(n, nc, rows.clone()))
        });
        group.bench_with_input(BenchmarkId::new("lazy", density), &rows, |b, rows| {
            b.iter(|| LazyTable::from_rows(n, nc, rows.clone()))
        });
        group.bench_with_input(BenchmarkId::new("hash", density), &rows, |b, rows| {
            b.iter(|| HashCountTable::from_rows(n, nc, rows.clone()))
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let n = 20_000;
    let nc = 126;
    let rows = make_rows(n, nc, 50);
    let dense = DenseTable::from_rows(n, nc, rows.clone());
    let lazy = LazyTable::from_rows(n, nc, rows.clone());
    let hash = HashCountTable::from_rows(n, nc, rows);
    let mut group = c.benchmark_group("table_get_100k");
    let probe = |t: &dyn Fn(usize, usize) -> f64| {
        let mut acc = 0.0;
        let mut x = 12345usize;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (x >> 16) % n;
            let cs = (x >> 40) % nc;
            acc += t(v, cs);
        }
        acc
    };
    group.bench_function("dense", |b| {
        b.iter(|| probe(&|v, cs| dense.get(black_box(v), cs)))
    });
    group.bench_function("lazy", |b| {
        b.iter(|| probe(&|v, cs| lazy.get(black_box(v), cs)))
    });
    group.bench_function("hash", |b| {
        b.iter(|| probe(&|v, cs| hash.get(black_box(v), cs)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_build, bench_get
}
criterion_main!(benches);
