//! Micro-benchmarks of the combinatorial number system (§III-B ablation):
//! explicit color-set index computation vs precomputed split-table lookup —
//! the paper's "replace explicit computation of these indexes with memory
//! lookups".

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fascia_combin::{index_of_set, BinomialTable, ColorSetIter, SplitTable};

fn bench_index_computation(c: &mut Criterion) {
    let binom = BinomialTable::default();
    let sets: Vec<Vec<u8>> = ColorSetIter::new(12, 6).collect_all();
    c.bench_function("cns_index_of_set_924x", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in &sets {
                acc = acc.wrapping_add(index_of_set(black_box(s), &binom));
            }
            acc
        })
    });
}

fn bench_split_enumeration_explicit(c: &mut Criterion) {
    // Explicit split: for each 6-set, enumerate 3-subsets and rank both
    // halves by arithmetic (what the paper replaced).
    let binom = BinomialTable::default();
    let sets: Vec<Vec<u8>> = ColorSetIter::new(12, 6).collect_all();
    c.bench_function("split_explicit_rank", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in &sets {
                let mut positions = ColorSetIter::new(6, 3);
                while let Some(pos) = positions.next() {
                    let mut ca = [0u8; 3];
                    let mut cp = [0u8; 3];
                    let (mut ai, mut pi) = (0, 0);
                    let mut pit = pos.iter().peekable();
                    for (i, &color) in s.iter().enumerate() {
                        if pit.peek() == Some(&&(i as u8)) {
                            pit.next();
                            ca[ai] = color;
                            ai += 1;
                        } else {
                            cp[pi] = color;
                            pi += 1;
                        }
                    }
                    acc = acc
                        .wrapping_add(index_of_set(&ca, &binom))
                        .wrapping_add(index_of_set(&cp, &binom));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_split_table_lookup(c: &mut Criterion) {
    let binom = BinomialTable::default();
    let table = SplitTable::new(12, 6, 3, &binom);
    c.bench_function("split_table_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..table.num_sets() {
                for sp in table.splits(black_box(i)) {
                    acc = acc.wrapping_add(sp.active as u64 + sp.passive as u64);
                }
            }
            acc
        })
    });
}

fn bench_split_table_build(c: &mut Criterion) {
    let binom = BinomialTable::default();
    c.bench_function("split_table_build_k12_h6_a3", |b| {
        b.iter(|| SplitTable::new(black_box(12), 6, 3, &binom))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_index_computation,
              bench_split_enumeration_explicit,
              bench_split_table_lookup,
              bench_split_table_build
}
criterion_main!(benches);
