//! Micro-benchmark of the per-iteration random coloring (Alg. 1 line 4) —
//! it runs once per iteration over the whole vertex set, so it must stay a
//! negligible fraction of the DP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fascia_core::coloring::random_coloring;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_coloring");
    for n in [10_000usize, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| random_coloring(black_box(n), 12, 42))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_coloring
}
criterion_main!(benches);
