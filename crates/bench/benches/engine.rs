//! End-to-end single-iteration benchmarks of the counting engine: table
//! layouts, partition strategies, and labeled vs unlabeled — the knobs
//! §III claims matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fascia_core::engine::{count_template, count_template_labeled, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::gen::gnm;
use fascia_graph::random_labels;
use fascia_obs::{Metrics, Tracer};
use fascia_table::TableKind;
use fascia_template::{NamedTemplate, PartitionStrategy};
use std::sync::Arc;

fn base_cfg() -> CountConfig {
    CountConfig {
        iterations: 1,
        parallel: ParallelMode::Serial,
        seed: 7,
        ..CountConfig::default()
    }
}

fn bench_table_kinds(c: &mut Criterion) {
    let g = gnm(10_000, 50_000, 3);
    let t = NamedTemplate::U5_2.template();
    let mut group = c.benchmark_group("engine_iteration_table");
    for kind in TableKind::all() {
        let cfg = CountConfig {
            table: kind,
            ..base_cfg()
        };
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &cfg, |b, cfg| {
            b.iter(|| count_template(&g, &t, cfg).unwrap().estimate)
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let g = gnm(5_000, 25_000, 5);
    let t = NamedTemplate::U7_2.template();
    let mut group = c.benchmark_group("engine_iteration_strategy");
    for strategy in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
        let cfg = CountConfig {
            strategy,
            ..base_cfg()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &cfg,
            |b, cfg| b.iter(|| count_template(&g, &t, cfg).unwrap().estimate),
        );
    }
    group.finish();
}

fn bench_labeled_speedup(c: &mut Criterion) {
    let g = gnm(10_000, 50_000, 9);
    let labels = random_labels(10_000, 8, 11);
    let t = NamedTemplate::U7_2.template();
    let tl = NamedTemplate::U7_2
        .template()
        .with_labels(vec![0, 1, 2, 3, 4, 5, 6])
        .unwrap();
    let cfg = base_cfg();
    let mut group = c.benchmark_group("engine_labeled");
    group.bench_function("unlabeled_U7-2", |b| {
        b.iter(|| count_template(&g, &t, &cfg).unwrap().estimate)
    });
    group.bench_function("labeled_U7-2", |b| {
        b.iter(|| {
            count_template_labeled(&g, &labels, &tl, &cfg)
                .unwrap()
                .estimate
        })
    });
    group.finish();
}

/// Overhead of the observability hooks when metrics are off. The
/// acceptance bar is a <2% delta between `absent` (no registry in the
/// config) and `disabled` (a registry present but turned off, which still
/// exercises the per-site `Option` checks).
fn bench_metrics_overhead(c: &mut Criterion) {
    let g = gnm(10_000, 50_000, 3);
    let t = NamedTemplate::U5_2.template();
    let mut group = c.benchmark_group("engine_metrics_overhead");
    let variants: [(&str, Option<Arc<Metrics>>); 3] = [
        ("absent", None),
        ("disabled", Some(Arc::new(Metrics::disabled()))),
        ("enabled", Some(Arc::new(Metrics::new()))),
    ];
    for (name, metrics) in variants {
        let cfg = CountConfig {
            metrics,
            ..base_cfg()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| count_template(&g, &t, cfg).unwrap().estimate)
        });
    }
    group.finish();
}

/// Overhead of the flight recorder along the same axis: `absent` (no
/// tracer), `ring` (default-capacity rings recording every event), and
/// `ring_full` (a 16-slot ring that overflows immediately, so nearly
/// every event takes the drop path). The acceptance bar mirrors the
/// metrics one: `absent` must be indistinguishable from an uninstrumented
/// engine, and even `ring_full` must only pay one fetch_add + counter
/// bump per event. Recorded results live in EXPERIMENTS.md; run with
/// `FASCIA_PERF_APPEND=<path>` to also capture the samples as
/// `fascia-perf/1` records that `perf compare` can diff against a
/// baseline.
fn bench_trace_overhead(c: &mut Criterion) {
    let g = gnm(10_000, 50_000, 3);
    let t = NamedTemplate::U5_2.template();
    let mut group = c.benchmark_group("engine_trace_overhead");
    let variants: [(&str, Option<usize>); 3] = [
        ("absent", None),
        ("ring", Some(16 * 1024)),
        ("ring_full", Some(16)),
    ];
    for (name, capacity) in variants {
        // One tracer per variant: the 16k ring comfortably outlasts the
        // sample loop (~15 events per engine iteration), while the 16-slot
        // ring fills within the first call and keeps every later event on
        // the drop path — exactly the steady state being measured.
        let cfg = CountConfig {
            tracer: capacity.map(|n| Arc::new(Tracer::with_capacity(n))),
            ..base_cfg()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| count_template(&g, &t, cfg).unwrap().estimate)
        });
    }
    group.finish();
}

/// Adaptive stopping vs a fixed iteration budget at matched accuracy.
/// The adaptive run converges (rel. 95% CI ≤ 5%) after a few dozen
/// iterations on this instance; the fixed run burns the whole budget —
/// this group makes the "stop paying for iterations the answer no longer
/// needs" claim measurable. Like every group, it emits machine-readable
/// `fascia-perf/1` records under `FASCIA_PERF_APPEND=<path>`.
fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    use fascia_core::stats::StopRule;

    let g = gnm(2_000, 8_000, 13);
    let t = fascia_template::Template::path(5);
    // Budget both runs identically; only the stop rule differs.
    const BUDGET: usize = 400;
    let fixed = CountConfig {
        iterations: BUDGET,
        ..base_cfg()
    };
    let adaptive = CountConfig {
        stop: Some(StopRule::RelativeError {
            epsilon: 0.05,
            delta: 0.05,
            min_iters: 8,
            max_iters: BUDGET,
        }),
        ..base_cfg()
    };
    let mut group = c.benchmark_group("engine_adaptive_vs_fixed");
    group.bench_function("fixed_400", |b| {
        b.iter(|| count_template(&g, &t, &fixed).unwrap().estimate)
    });
    group.bench_function("adaptive_eps05", |b| {
        b.iter(|| count_template(&g, &t, &adaptive).unwrap().estimate)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table_kinds, bench_strategies, bench_labeled_speedup, bench_metrics_overhead,
        bench_trace_overhead, bench_adaptive_vs_fixed
}
criterion_main!(benches);
