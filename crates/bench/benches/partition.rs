//! Micro-benchmarks of template partitioning (§III-D ablation): build cost
//! per strategy and free-tree generation for the motif scans.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fascia_template::{NamedTemplate, PartitionStrategy, PartitionTree};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_build");
    for named in [
        NamedTemplate::U7_2,
        NamedTemplate::U12_1,
        NamedTemplate::U12_2,
    ] {
        let t = named.template();
        for strategy in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), named.name()),
                &t,
                |b, t| b.iter(|| PartitionTree::build(black_box(t), strategy).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_free_tree_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("free_trees");
    group.sample_size(10);
    for n in [7usize, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| fascia_template::gen::all_free_trees(black_box(n)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_free_tree_generation
}
criterion_main!(benches);
