//! Figure 14 — relative motif frequencies of all size-7 trees on the
//! Portland, Slashdot, Enron, PA road, and G(n,p) networks.
//!
//! Shape to reproduce: templates 1 and 2 (in generator order: the path-ish
//! and near-path topologies vs star-ish ones) separate the network
//! families; the road network's profile differs starkly from the social
//! networks'.
//!
//! Iterations default to 5 on the big networks (error is tiny on large
//! graphs per §V-D); override with FASCIA_ITERS.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig14_social_profiles [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::CountConfig;
use fascia_core::motifs::motif_profile;
use fascia_graph::Dataset;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let iters: usize = std::env::var("FASCIA_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let sets = [
        Dataset::Portland,
        Dataset::Slashdot,
        Dataset::Enron,
        Dataset::PaRoad,
        Dataset::Gnp,
    ];
    let mut report = Report::new(
        "Fig 14: size-7 motif profiles, social/road/random",
        "rel freq",
    );
    for ds in sets {
        let g = opts.load(ds);
        let cfg = CountConfig {
            iterations: iters,
            ..opts.base_config()
        };
        let p = motif_profile(&g, 7, &cfg).expect("profile");
        for (i, f) in p.relative_frequencies().into_iter().enumerate() {
            report.push(ds.spec().name, format!("{}", i + 1), f);
        }
        eprintln!("[fig14] {} done ({:?})", ds.spec().name, p.elapsed);
    }
    report.print();
}
