//! Figure 10 — approximation error vs iteration count for U3-1 and U5-1 on
//! the Enron network.
//!
//! Shape to reproduce: error falls below 1% within ~3 iterations for both
//! templates, the smaller template converging faster.
//!
//! Exact ground truth: P3 by closed form; P5 by the pruned enumerator (the
//! paper burned >5 hours on exact counts; our stand-in takes minutes, or
//! seconds with `FASCIA_FIG10_DIV` shrinking the graph).
//!
//! Run: `cargo run --release -p fascia-bench --bin fig10_error_enron`

use fascia_bench::{timed, BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::enumerate::count_exact_pruned;
use fascia_core::exact::exact_p3;
use fascia_core::parallel::ParallelMode;
use fascia_graph::gen::barabasi_albert;
use fascia_graph::Dataset;
use fascia_template::Template;

const MAX_ITERS: usize = 10;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    // Optional divisor for the expensive exact P5 count.
    let div: usize = std::env::var("FASCIA_FIG10_DIV")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let g = if div <= 1 {
        opts.load(Dataset::Enron)
    } else {
        let spec = Dataset::Enron.spec();
        let n = spec.n / div;
        let m = spec.m / div;
        let g = barabasi_albert(n, (m / n).max(1), m, opts.seed);
        eprintln!(
            "[fig10] Enron stand-in shrunk 1/{div}: n={} m={}",
            g.num_vertices(),
            g.num_edges()
        );
        g
    };
    let mut report = Report::new("Fig 10: error vs iterations, Enron", "relative error");
    for (name, t) in [("U3-1", Template::path(3)), ("U5-1", Template::path(5))] {
        let (exact, exact_secs) = timed(|| {
            if t.size() == 3 {
                exact_p3(&g) as f64
            } else {
                count_exact_pruned(&g, &t) as f64
            }
        });
        eprintln!("[fig10] {name} exact = {exact:.4e} ({exact_secs:.1}s)");
        let cfg = CountConfig {
            iterations: MAX_ITERS,
            parallel: ParallelMode::InnerLoop,
            ..opts.base_config()
        };
        let r = count_template(&g, &t, &cfg).expect("count");
        // Cumulative-mean error after i iterations, as the paper plots.
        let mut acc = 0.0;
        for (i, est) in r.per_iteration.iter().enumerate() {
            acc += est;
            let mean = acc / (i + 1) as f64;
            let err = (mean - exact).abs() / exact;
            report.push(name, format!("{}", i + 1), err);
        }
    }
    report.print();
}
