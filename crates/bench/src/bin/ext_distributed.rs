//! Extension experiment — distributed-memory projection (paper §VI future
//! work): communication volume and load balance of PARSE/SAHAD-style
//! vertex-partitioned execution, swept over rank counts and partitioning
//! schemes on a social network and a road mesh.
//!
//! Run: `cargo run --release -p fascia-bench --bin ext_distributed`

use fascia_bench::{BenchOpts, Report};
use fascia_core::distsim::{count_distributed, DistConfig, PartitionScheme};
use fascia_core::engine::CountConfig;
use fascia_core::parallel::ParallelMode;
use fascia_graph::Dataset;
use fascia_template::NamedTemplate;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let t = NamedTemplate::U5_2.template();
    let count = CountConfig {
        iterations: 2,
        parallel: ParallelMode::Serial,
        ..opts.base_config()
    };
    let mut report = Report::new("Ext: distributed projection, U5-2", "comm bytes");
    for (ds, scale) in [(Dataset::Enron, 4usize), (Dataset::PaRoad, 64)] {
        let spec = ds.spec();
        let g = if spec.scalable {
            ds.generate(scale.max(opts.scale), opts.seed)
        } else {
            // Shrink Enron via its generator for a quick sweep.
            let n = spec.n / scale;
            let m = spec.m / scale;
            fascia_graph::gen::barabasi_albert(n, (m / n).max(1), m, opts.seed)
        };
        eprintln!(
            "[ext] {}: n={} m={}",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );
        for ranks in [2usize, 4, 8, 16, 32] {
            for scheme in [PartitionScheme::Block, PartitionScheme::Hash] {
                let cfg = DistConfig {
                    ranks,
                    scheme,
                    count: count.clone(),
                };
                let r = count_distributed(&g, &t, &cfg).expect("distributed");
                report.push(
                    format!("{} {:?}", spec.name, scheme),
                    format!("{ranks} ranks"),
                    r.comm_bytes as f64,
                );
                eprintln!(
                    "[ext] {} {scheme:?} {ranks} ranks: {} ghost rows, {} bytes, imbalance {:.2}",
                    spec.name,
                    r.ghost_rows,
                    r.comm_bytes,
                    r.imbalance(ranks)
                );
            }
        }
    }
    report.print();
}
