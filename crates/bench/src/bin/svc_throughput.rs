//! `svc_throughput` — queue throughput of the resident counting service.
//!
//! Measures jobs/second through [`fascia_svc::Service`] end to end
//! (spool submit → supervised run → durable result), once clean and once
//! under a probabilistic chaos schedule, so the supervision overhead and
//! the cost of fault-driven retries are both visible. The shared graph
//! pool is the point of residency: all jobs hit one CSR instance, and
//! the report prints the measured pool hit count.
//!
//! ```text
//! svc_throughput [--jobs N] [--iters N] [--reps N] [--template T] [--chaos SPEC]
//! ```
//!
//! With `FASCIA_PERF_APPEND=<path>` set, the measured repetitions are
//! also appended as a one-line `fascia-perf/1` document (benchmarks
//! `svc_throughput/clean` and `svc_throughput/chaos`, seconds per batch),
//! the same JSON-lines contract the criterion shim uses — so queue
//! throughput is a pinned perf axis that `perf compare` can diff and
//! `BENCH_<date>.json` can archive.

use fascia_bench::perf::{PerfDoc, PerfRecord, DEFAULT_THRESHOLD};
use fascia_core::chaos::ChaosSpec;
use fascia_svc::supervisor::SupervisorConfig;
use fascia_svc::{BackoffPolicy, JobSpec, MonotonicClock, Service, ServiceConfig};
use std::io::Write as _;
use std::time::{Duration, Instant};

struct Opts {
    jobs: usize,
    iters: usize,
    reps: usize,
    template: String,
    chaos: String,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        jobs: 32,
        iters: 8,
        reps: 1,
        template: "path4".to_string(),
        chaos: "seed=9,panic=0.05,io_ckpt=0.1,io_result=0.05".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--jobs" => opts.jobs = value(i)?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--iters" => opts.iters = value(i)?.parse().map_err(|e| format!("--iters: {e}"))?,
            "--reps" => opts.reps = value(i)?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--template" => opts.template = value(i)?.clone(),
            "--chaos" => opts.chaos = value(i)?.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if opts.reps == 0 {
        return Err("--reps must be ≥ 1".to_string());
    }
    Ok(opts)
}

fn run_batch(opts: &Opts, chaos: Option<ChaosSpec>) -> Result<(Duration, String), String> {
    let tag = if chaos.is_some() { "chaos" } else { "clean" };
    let root = std::env::temp_dir().join(format!("fascia-svc-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: SupervisorConfig {
                backoff: BackoffPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(20),
                    ..BackoffPolicy::default()
                },
                poll: Duration::from_millis(2),
                ..SupervisorConfig::default()
            },
            once: true,
            chaos,
            ..ServiceConfig::default()
        },
    )
    .map_err(|e| format!("cannot open spool: {e}"))?;
    for i in 0..opts.jobs {
        let mut spec = JobSpec::new(&format!("bench-{i:04}"), "circuit", &opts.template);
        spec.iterations = opts.iters;
        spec.seed = 0xBE7C_u64 + i as u64;
        svc.spool()
            .submit(&spec.id, &spec.to_json())
            .map_err(|e| format!("submit: {e}"))?;
    }
    let t0 = Instant::now();
    let summary = svc.run(&MonotonicClock, None);
    let elapsed = t0.elapsed();
    let terminal = summary.completed + summary.partial + summary.failed;
    if terminal != opts.jobs {
        return Err(format!(
            "{tag}: {terminal} terminal results for {} jobs",
            opts.jobs
        ));
    }
    let line = format!(
        "{tag:<6} {:>5} jobs  {:>8.2} jobs/s  completed {:>4}  partial {:>3}  failed {:>3}  \
         attempts {:>4}  pool-hits {:>4}  chaos-events {:>4}  wall {:>7.2?}",
        opts.jobs,
        opts.jobs as f64 / elapsed.as_secs_f64(),
        summary.completed,
        summary.partial,
        summary.failed,
        summary.attempts,
        summary.pool_hits,
        summary.chaos_events,
        elapsed,
    );
    let _ = std::fs::remove_dir_all(&root);
    Ok((elapsed, line))
}

/// Appends the measured batches to `FASCIA_PERF_APPEND` (when set) as a
/// one-line `fascia-perf/1` document, mirroring the criterion shim's
/// JSON-lines append contract.
fn append_perf_records(reps: &[(&'static str, Vec<f64>)]) -> Result<(), String> {
    let Some(path) = std::env::var_os("FASCIA_PERF_APPEND") else {
        return Ok(());
    };
    let mut doc = PerfDoc::new_now();
    for (tag, reps_s) in reps {
        doc.benchmarks.insert(
            format!("svc_throughput/{tag}"),
            PerfRecord {
                warmup: 0,
                threshold: DEFAULT_THRESHOLD,
                peak_table_bytes: 0,
                reps_s: reps_s.clone(),
            },
        );
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.to_string_lossy()))?;
    writeln!(f, "{}", doc.to_json()).map_err(|e| format!("perf append: {e}"))?;
    eprintln!(
        "svc_throughput: appended fascia-perf/1 record to {}",
        path.to_string_lossy()
    );
    Ok(())
}

fn main() -> std::process::ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("svc_throughput: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    let chaos = match opts.chaos.parse::<ChaosSpec>() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("svc_throughput: --chaos: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    println!(
        "service throughput: {} jobs x {} iterations of {} on circuit, {} rep(s)",
        opts.jobs, opts.iters, opts.template, opts.reps
    );
    let mut measured: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for (tag, spec) in [("clean", None), ("chaos", Some(chaos))] {
        let mut reps_s = Vec::with_capacity(opts.reps);
        for rep in 0..opts.reps {
            match run_batch(&opts, spec.clone()) {
                Ok((elapsed, line)) => {
                    if rep == 0 {
                        println!("{line}");
                    }
                    reps_s.push(elapsed.as_secs_f64());
                }
                Err(e) => {
                    eprintln!("svc_throughput: {e}");
                    return std::process::ExitCode::from(1);
                }
            }
        }
        measured.push((tag, reps_s));
    }
    if let Err(e) = append_perf_records(&measured) {
        eprintln!("svc_throughput: {e}");
        return std::process::ExitCode::from(1);
    }
    std::process::ExitCode::SUCCESS
}
