//! Figure 7 — peak dynamic-table memory on the PA road network with the
//! path templates U3-1 … U12-1: hash table vs naive vs improved layouts.
//!
//! Shape to reproduce: on this low-degree, high-diameter network long
//! paths are highly selective, so the hash layout saves up to ~90% vs the
//! arrays at U12-1 while showing little to no benefit at k = 3..5.
//!
//! Memory is *measured*, not estimated: each run attaches a fresh
//! `fascia_obs::Metrics` registry and reads back the `table.bytes.peak`
//! gauge (exact `TableStats` allocated bytes of the live DP tables).
//!
//! Run: `cargo run --release -p fascia-bench --bin fig07_memory_road [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::Dataset;
use fascia_obs::Metrics;
use fascia_table::TableKind;
use fascia_template::NamedTemplate;
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::PaRoad);
    let mut report = Report::new("Fig 7: peak table memory, PA road, U*-1", "measured bytes");
    for named in NamedTemplate::paths() {
        let t = named.template();
        for kind in TableKind::all() {
            let cfg = CountConfig {
                iterations: 1,
                table: kind,
                parallel: ParallelMode::InnerLoop,
                metrics: Some(Arc::new(Metrics::new())),
                ..opts.base_config()
            };
            count_template(&g, &t, &cfg).expect("count");
            let peak = cfg
                .metrics
                .as_deref()
                .expect("metrics attached")
                .gauge("table.bytes.peak")
                .get();
            report.push(kind.name(), named.name(), peak as f64);
            eprintln!(
                "[fig07] {} {}: {:.2} MB measured peak",
                named.name(),
                kind.name(),
                peak as f64 / (1 << 20) as f64
            );
        }
    }
    report.print();
}
