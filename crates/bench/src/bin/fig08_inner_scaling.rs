//! Figure 8 — inner-loop strong scaling with U12-2 on the Portland
//! network.
//!
//! The paper shows ~12x speedup at 16 cores from parallelizing the
//! per-vertex loop. The harness sweeps thread counts up to the machine's
//! core count (on a single-core host the sweep degenerates to one point —
//! EXPERIMENTS.md records the host). Use `FASCIA_TEMPLATE` to override the
//! template (e.g. U10-2 for a faster sweep).
//!
//! Run: `cargo run --release -p fascia-bench --bin fig08_inner_scaling [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::parallel::{with_threads, ParallelMode};
use fascia_graph::Dataset;
use fascia_template::NamedTemplate;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Portland);
    let tname = std::env::var("FASCIA_TEMPLATE").unwrap_or_else(|_| "U12-2".to_string());
    let named = NamedTemplate::by_name(&tname).expect("known template name");
    let t = named.template();
    let max_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    if *threads.last().unwrap() != max_threads {
        threads.push(max_threads);
    }
    let mut report = Report::new(
        &format!("Fig 8: inner-loop scaling, {} on Portland", named.name()),
        "seconds",
    );
    let mut t1 = None;
    for &nt in &threads {
        let cfg = CountConfig {
            iterations: 1,
            parallel: ParallelMode::InnerLoop,
            ..opts.base_config()
        };
        let secs = with_threads(nt, || {
            count_template(&g, &t, &cfg)
                .expect("count")
                .per_iteration_time
                .as_secs_f64()
        });
        let t1 = *t1.get_or_insert(secs);
        report.push("inner", format!("{nt} threads"), secs);
        eprintln!(
            "[fig08] {nt} threads: {secs:.3}s (speedup {:.2}x)",
            t1 / secs
        );
    }
    report.print();
}
