//! Figure 16 — GDD agreement (Pržulj) between the exact graphlet degree
//! distribution and the color-coding estimate, as a function of iteration
//! count, for E. coli and Enron (U5-2 central orbit).
//!
//! Shape to reproduce: agreement climbs with iterations and reaches
//! "reasonable" (~0.9+) levels by about 1000 iterations on both networks.
//!
//! The exact distribution is computed by exhaustive rooted enumeration —
//! cheap on E. coli, heavy on full Enron, so Enron defaults to a 1/4-size
//! stand-in (FASCIA_FIG16_DIV to change; --full for paper size).
//!
//! Run: `cargo run --release -p fascia-bench --bin fig16_gdd_agreement [--full]`

use fascia_bench::{timed, BenchOpts, Report};
use fascia_core::engine::{rooted_counts, CountConfig};
use fascia_core::gdd::{exact_graphlet_degrees, gdd_agreement, GddHistogram};
use fascia_graph::gen::barabasi_albert;
use fascia_graph::{Dataset, Graph};
use fascia_template::NamedTemplate;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let full = std::env::args().any(|a| a == "--full");
    let div: usize = std::env::var("FASCIA_FIG16_DIV")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if full { 1 } else { 4 });
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().expect("central orbit");

    let enron: Graph = if div <= 1 {
        opts.load(Dataset::Enron)
    } else {
        let spec = Dataset::Enron.spec();
        let (n, m) = (spec.n / div, spec.m / div);
        barabasi_albert(n, (m / n).max(1), m, opts.seed)
    };
    let networks: Vec<(&str, Graph)> =
        vec![("E. coli", opts.load(Dataset::EColi)), ("Enron", enron)];
    let checkpoints = [1usize, 10, 100, 1000];
    let mut report = Report::new("Fig 16: GDD agreement vs iterations", "agreement");
    for (name, g) in networks {
        let (exact, secs) = timed(|| exact_graphlet_degrees(&g, &t, orbit));
        let exact_hist = GddHistogram::from_degrees(&exact);
        eprintln!("[fig16] {name}: exact GDD done in {secs:.1}s");
        // One long run; prefix means give each checkpoint.
        let cfg = CountConfig {
            iterations: *checkpoints.last().unwrap(),
            ..opts.base_config()
        };
        // rooted_counts returns only the final average, so run per
        // checkpoint (iterations are cheap on these graphs).
        for &cp in &checkpoints {
            let cfg_cp = CountConfig {
                iterations: cp,
                ..cfg.clone()
            };
            let r = rooted_counts(&g, &t, orbit, &cfg_cp).expect("rooted");
            let est = GddHistogram::from_degrees(&r.per_vertex);
            let a = gdd_agreement(&est, &exact_hist);
            report.push(name, format!("{cp}"), a);
            eprintln!("[fig16] {name} {cp} iterations: agreement {a:.4}");
        }
    }
    report.print();
}
