//! `fascia-perf` — run the pinned perf suite and diff perf documents.
//!
//! ```text
//! perf run [--out FILE] [--reps N] [--warmup N] [--smoke] [--filter S] [--kernel K] [--quiet]
//! perf ab  [--reps N] [--warmup N] [--smoke] [--filter S] [--min RATIO]
//!          [--out-scalar FILE] [--out-vector FILE] [--quiet]
//! perf compare OLD NEW [--threshold R] [--alpha A]
//! perf speedup OLD NEW [--min RATIO]
//! ```
//!
//! `run` writes a `fascia-perf/1` document (default
//! `BENCH_<ISO-date>.json` in the current directory) via `atomic_write`.
//! `compare` prints a per-benchmark table and exits non-zero when any
//! benchmark regressed — the contract `scripts/ci.sh` gates on.
//! `speedup` is the inverse gate for A/B runs (e.g. `--kernel scalar` vs
//! `--kernel vectorized` documents): it prints `old/new` median speedups
//! per benchmark and exits non-zero when any falls below `--min`
//! (ratio-only — no significance test, suited to 1-rep smoke documents).
//! `ab` is the *paired* kernel comparison: each suite cell runs both
//! kernels with repetitions interleaved in one process (alternating
//! order), which cancels the machine drift that corrupts two separate
//! `run` invocations; it prints per-cell speedups with Mann–Whitney
//! evidence, optionally writes both documents, and exits non-zero when
//! any cell falls below `--min`.
//!
//! Environment: `FASCIA_PERF_SLEEP_MS=<ms>` injects a synthetic sleep
//! into every DP step of `run` (via `FaultInjection::sleep_in_dp`),
//! which exists so the regression gate itself can be validated end to
//! end.
//!
//! Exit codes: 0 success / no regression, 1 significant regression,
//! 2 usage error, 3 I/O error.

use fascia_bench::perf::{
    ab_docs, any_regression, compare, iso_date_utc, render_ab, render_comparisons, run_ab,
    run_suite, PerfDoc, SuiteOpts, DEFAULT_ALPHA,
};
use fascia_core::atomic_write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const EXIT_OK: u8 = 0;
const EXIT_REGRESSION: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 3;

const USAGE: &str = "usage:
  perf run [--out FILE] [--reps N] [--warmup N] [--smoke] [--filter SUBSTR] [--kernel scalar|vectorized] [--quiet]
  perf ab [--reps N] [--warmup N] [--smoke] [--filter SUBSTR] [--min RATIO] [--out-scalar FILE] [--out-vector FILE] [--quiet]
  perf compare OLD.json NEW.json [--threshold RATIO] [--alpha P]
  perf speedup OLD.json NEW.json [--min RATIO]
  perf help";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("ab") => cmd_ab(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("speedup") => cmd_speedup(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            EXIT_OK
        }
        _ => {
            eprintln!("{USAGE}");
            EXIT_USAGE
        }
    };
    ExitCode::from(code)
}

fn parse_value<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, String> {
    v.ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn cmd_run(args: &[String]) -> u8 {
    let mut opts = SuiteOpts {
        verbose: true,
        ..SuiteOpts::default()
    };
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => parse_value::<PathBuf>("--out", it.next()).map(|p| out = Some(p)),
            "--reps" => parse_value("--reps", it.next()).map(|n| opts.reps = n),
            "--warmup" => parse_value("--warmup", it.next()).map(|n| opts.warmup = n),
            "--filter" => parse_value("--filter", it.next()).map(|f| opts.filter = Some(f)),
            "--kernel" => parse_value("--kernel", it.next()).map(|k| opts.kernel = k),
            "--smoke" => {
                opts.smoke = true;
                Ok(())
            }
            "--quiet" => {
                opts.verbose = false;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = r {
            eprintln!("perf run: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    if opts.reps == 0 {
        eprintln!("perf run: --reps must be at least 1");
        return EXIT_USAGE;
    }
    if let Ok(ms) = std::env::var("FASCIA_PERF_SLEEP_MS") {
        match ms.parse::<u64>() {
            Ok(ms) => opts.handicap = Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("perf run: FASCIA_PERF_SLEEP_MS must be an integer");
                return EXIT_USAGE;
            }
        }
    }
    let doc = run_suite(&opts);
    let path = out.unwrap_or_else(|| {
        PathBuf::from(format!("BENCH_{}.json", iso_date_utc(doc.created_unix_ms)))
    });
    match atomic_write(&path, &doc.to_json()) {
        Ok(()) => {
            eprintln!(
                "[perf] wrote {} ({} benchmarks)",
                path.display(),
                doc.benchmarks.len()
            );
            EXIT_OK
        }
        Err(e) => {
            eprintln!("perf run: cannot write {}: {e}", path.display());
            EXIT_IO
        }
    }
}

/// `perf ab`: the paired kernel comparison. Runs each suite cell with
/// scalar and vectorized repetitions interleaved in this one process,
/// prints the per-cell speedup table, and (with `--min R`) exits
/// non-zero when any cell's median speedup falls below `R`.
fn cmd_ab(args: &[String]) -> u8 {
    let mut opts = SuiteOpts {
        verbose: true,
        ..SuiteOpts::default()
    };
    let mut min: Option<f64> = None;
    let mut out_scalar: Option<PathBuf> = None;
    let mut out_vector: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--reps" => parse_value("--reps", it.next()).map(|n| opts.reps = n),
            "--warmup" => parse_value("--warmup", it.next()).map(|n| opts.warmup = n),
            "--filter" => parse_value("--filter", it.next()).map(|f| opts.filter = Some(f)),
            "--min" => parse_value("--min", it.next()).map(|m| min = Some(m)),
            "--out-scalar" => {
                parse_value::<PathBuf>("--out-scalar", it.next()).map(|p| out_scalar = Some(p))
            }
            "--out-vector" => {
                parse_value::<PathBuf>("--out-vector", it.next()).map(|p| out_vector = Some(p))
            }
            "--smoke" => {
                opts.smoke = true;
                Ok(())
            }
            "--quiet" => {
                opts.verbose = false;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = r {
            eprintln!("perf ab: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    if opts.reps == 0 {
        eprintln!("perf ab: --reps must be at least 1");
        return EXIT_USAGE;
    }
    if let Some(m) = min {
        if m.is_nan() || m <= 0.0 {
            eprintln!("perf ab: --min must be positive");
            return EXIT_USAGE;
        }
    }
    if let Ok(ms) = std::env::var("FASCIA_PERF_SLEEP_MS") {
        match ms.parse::<u64>() {
            Ok(ms) => opts.handicap = Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("perf ab: FASCIA_PERF_SLEEP_MS must be an integer");
                return EXIT_USAGE;
            }
        }
    }
    let cells = run_ab(&opts);
    if cells.is_empty() {
        eprintln!("perf ab: no suite cells matched the filter");
        return EXIT_USAGE;
    }
    print!("{}", render_ab(&cells, min));
    let (scalar_doc, vector_doc) = ab_docs(&cells, opts.warmup as u64);
    for (path, doc) in [(&out_scalar, &scalar_doc), (&out_vector, &vector_doc)] {
        if let Some(path) = path {
            if let Err(e) = atomic_write(path, &doc.to_json()) {
                eprintln!("perf ab: cannot write {}: {e}", path.display());
                return EXIT_IO;
            }
            eprintln!(
                "[perf] wrote {} ({} benchmarks)",
                path.display(),
                doc.benchmarks.len()
            );
        }
    }
    match min {
        Some(m) if cells.iter().any(|c| c.speedup() < m) => {
            eprintln!("[perf] kernel speedup below {m:.2}x");
            EXIT_REGRESSION
        }
        Some(m) => {
            eprintln!("[perf] all {} cells at least {m:.2}x", cells.len());
            EXIT_OK
        }
        None => EXIT_OK,
    }
}

fn cmd_compare(args: &[String]) -> u8 {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut alpha = DEFAULT_ALPHA;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--threshold" => parse_value("--threshold", it.next()).map(|t| threshold = Some(t)),
            "--alpha" => parse_value("--alpha", it.next()).map(|a| alpha = a),
            other if other.starts_with("--") => Err(format!("unknown flag {other}")),
            _ => {
                paths.push(a);
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("perf compare: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("perf compare: need exactly OLD and NEW paths\n{USAGE}");
        return EXIT_USAGE;
    };
    if !(0.0..1.0).contains(&alpha) {
        eprintln!("perf compare: --alpha must be in (0, 1)");
        return EXIT_USAGE;
    }
    let load = |p: &str| -> Result<PerfDoc, (u8, String)> {
        let text = std::fs::read_to_string(p).map_err(|e| (EXIT_IO, format!("{p}: {e}")))?;
        PerfDoc::parse(&text).map_err(|e| (EXIT_USAGE, format!("{p}: {e}")))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err((c, e)), _) | (_, Err((c, e))) => {
            eprintln!("perf compare: {e}");
            return c;
        }
    };
    let rows = compare(&old, &new, threshold, alpha);
    print!("{}", render_comparisons(&rows));
    if any_regression(&rows) {
        eprintln!("[perf] REGRESSION detected");
        EXIT_REGRESSION
    } else {
        eprintln!("[perf] no significant regression");
        EXIT_OK
    }
}

/// `perf speedup OLD NEW --min R`: every benchmark present in both
/// documents must be at least `R`× faster in NEW than OLD (by median,
/// ratio-only). The kernel A/B gate in `scripts/ci.sh`.
fn cmd_speedup(args: &[String]) -> u8 {
    let mut paths: Vec<&String> = Vec::new();
    let mut min = 1.0f64;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--min" => parse_value("--min", it.next()).map(|m| min = m),
            other if other.starts_with("--") => Err(format!("unknown flag {other}")),
            _ => {
                paths.push(a);
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("perf speedup: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("perf speedup: need exactly OLD and NEW paths\n{USAGE}");
        return EXIT_USAGE;
    };
    if min.is_nan() || min <= 0.0 {
        eprintln!("perf speedup: --min must be positive");
        return EXIT_USAGE;
    }
    let load = |p: &str| -> Result<PerfDoc, (u8, String)> {
        let text = std::fs::read_to_string(p).map_err(|e| (EXIT_IO, format!("{p}: {e}")))?;
        PerfDoc::parse(&text).map_err(|e| (EXIT_USAGE, format!("{p}: {e}")))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err((c, e)), _) | (_, Err((c, e))) => {
            eprintln!("perf speedup: {e}");
            return c;
        }
    };
    let mut compared = 0usize;
    let mut failed = false;
    println!(
        "{:<36} {:>12} {:>12} {:>9}",
        "benchmark", "old_ms", "new_ms", "speedup"
    );
    for (name, o) in &old.benchmarks {
        let Some(n) = new.benchmarks.get(name) else {
            continue;
        };
        let (old_med, new_med) = (o.median_s(), n.median_s());
        let speedup = if new_med > 0.0 {
            old_med / new_med
        } else {
            1.0
        };
        let ok = speedup >= min;
        compared += 1;
        failed |= !ok;
        println!(
            "{:<36} {:>12.3} {:>12.3} {:>8.2}x  {}",
            name,
            old_med * 1e3,
            new_med * 1e3,
            speedup,
            if ok { "ok" } else { "BELOW MIN" }
        );
    }
    if compared == 0 {
        eprintln!("perf speedup: no common benchmarks between the documents");
        return EXIT_USAGE;
    }
    if failed {
        eprintln!("[perf] speedup below {min:.2}x");
        EXIT_REGRESSION
    } else {
        eprintln!("[perf] all {compared} benchmarks at least {min:.2}x");
        EXIT_OK
    }
}
