//! `fascia-perf` — run the pinned perf suite and diff perf documents.
//!
//! ```text
//! perf run [--out FILE] [--reps N] [--warmup N] [--smoke] [--filter S] [--quiet]
//! perf compare OLD NEW [--threshold R] [--alpha A]
//! ```
//!
//! `run` writes a `fascia-perf/1` document (default
//! `BENCH_<ISO-date>.json` in the current directory) via `atomic_write`.
//! `compare` prints a per-benchmark table and exits non-zero when any
//! benchmark regressed — the contract `scripts/ci.sh` gates on.
//!
//! Environment: `FASCIA_PERF_SLEEP_MS=<ms>` injects a synthetic sleep
//! into every DP step of `run` (via `FaultInjection::sleep_in_dp`),
//! which exists so the regression gate itself can be validated end to
//! end.
//!
//! Exit codes: 0 success / no regression, 1 significant regression,
//! 2 usage error, 3 I/O error.

use fascia_bench::perf::{
    any_regression, compare, iso_date_utc, render_comparisons, run_suite, PerfDoc, SuiteOpts,
    DEFAULT_ALPHA,
};
use fascia_core::atomic_write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const EXIT_OK: u8 = 0;
const EXIT_REGRESSION: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_IO: u8 = 3;

const USAGE: &str = "usage:
  perf run [--out FILE] [--reps N] [--warmup N] [--smoke] [--filter SUBSTR] [--quiet]
  perf compare OLD.json NEW.json [--threshold RATIO] [--alpha P]
  perf help";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            EXIT_OK
        }
        _ => {
            eprintln!("{USAGE}");
            EXIT_USAGE
        }
    };
    ExitCode::from(code)
}

fn parse_value<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, String> {
    v.ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn cmd_run(args: &[String]) -> u8 {
    let mut opts = SuiteOpts {
        verbose: true,
        ..SuiteOpts::default()
    };
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--out" => parse_value::<PathBuf>("--out", it.next()).map(|p| out = Some(p)),
            "--reps" => parse_value("--reps", it.next()).map(|n| opts.reps = n),
            "--warmup" => parse_value("--warmup", it.next()).map(|n| opts.warmup = n),
            "--filter" => parse_value("--filter", it.next()).map(|f| opts.filter = Some(f)),
            "--smoke" => {
                opts.smoke = true;
                Ok(())
            }
            "--quiet" => {
                opts.verbose = false;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = r {
            eprintln!("perf run: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    if opts.reps == 0 {
        eprintln!("perf run: --reps must be at least 1");
        return EXIT_USAGE;
    }
    if let Ok(ms) = std::env::var("FASCIA_PERF_SLEEP_MS") {
        match ms.parse::<u64>() {
            Ok(ms) => opts.handicap = Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("perf run: FASCIA_PERF_SLEEP_MS must be an integer");
                return EXIT_USAGE;
            }
        }
    }
    let doc = run_suite(&opts);
    let path = out.unwrap_or_else(|| {
        PathBuf::from(format!("BENCH_{}.json", iso_date_utc(doc.created_unix_ms)))
    });
    match atomic_write(&path, &doc.to_json()) {
        Ok(()) => {
            eprintln!(
                "[perf] wrote {} ({} benchmarks)",
                path.display(),
                doc.benchmarks.len()
            );
            EXIT_OK
        }
        Err(e) => {
            eprintln!("perf run: cannot write {}: {e}", path.display());
            EXIT_IO
        }
    }
}

fn cmd_compare(args: &[String]) -> u8 {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold: Option<f64> = None;
    let mut alpha = DEFAULT_ALPHA;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let r = match a.as_str() {
            "--threshold" => parse_value("--threshold", it.next()).map(|t| threshold = Some(t)),
            "--alpha" => parse_value("--alpha", it.next()).map(|a| alpha = a),
            other if other.starts_with("--") => Err(format!("unknown flag {other}")),
            _ => {
                paths.push(a);
                Ok(())
            }
        };
        if let Err(e) = r {
            eprintln!("perf compare: {e}\n{USAGE}");
            return EXIT_USAGE;
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("perf compare: need exactly OLD and NEW paths\n{USAGE}");
        return EXIT_USAGE;
    };
    if !(0.0..1.0).contains(&alpha) {
        eprintln!("perf compare: --alpha must be in (0, 1)");
        return EXIT_USAGE;
    }
    let load = |p: &str| -> Result<PerfDoc, (u8, String)> {
        let text = std::fs::read_to_string(p).map_err(|e| (EXIT_IO, format!("{p}: {e}")))?;
        PerfDoc::parse(&text).map_err(|e| (EXIT_USAGE, format!("{p}: {e}")))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err((c, e)), _) | (_, Err((c, e))) => {
            eprintln!("perf compare: {e}");
            return c;
        }
    };
    let rows = compare(&old, &new, threshold, alpha);
    print!("{}", render_comparisons(&rows));
    if any_regression(&rows) {
        eprintln!("[perf] REGRESSION detected");
        EXIT_REGRESSION
    } else {
        eprintln!("[perf] no significant regression");
        EXIT_OK
    }
}
