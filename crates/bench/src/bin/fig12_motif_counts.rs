//! Figure 12 — motif counts on H. pylori: exact vs 1 iteration vs 1000
//! iterations, for all 11 size-7 tree templates.
//!
//! Shape to reproduce: even a single iteration puts every template's count
//! in the right relative magnitude; 1000 iterations sit on top of the
//! exact values.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig12_motif_counts`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::exact::count_exact;
use fascia_core::parallel::ParallelMode;
use fascia_graph::Dataset;
use fascia_template::gen::all_free_trees;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::HPylori);
    let templates = all_free_trees(7);
    let mut report = Report::new("Fig 12: motif counts, H. pylori", "count");
    let cfg = CountConfig {
        iterations: 1000,
        parallel: ParallelMode::Serial,
        ..opts.base_config()
    };
    for (i, t) in templates.iter().enumerate() {
        let exact = count_exact(&g, t) as f64;
        let r = count_template(&g, t, &cfg).expect("count");
        let one_iter = r.per_iteration[0];
        let label = format!("{}", i + 1);
        report.push("exact", &label, exact);
        report.push("1 iteration", &label, one_iter);
        report.push("1000 iterations", &label, r.estimate);
        eprintln!(
            "[fig12] template {}: exact {exact:.4e}, 1 iter {one_iter:.4e}, 1000 iters {:.4e}",
            i + 1,
            r.estimate
        );
    }
    report.print();
}
