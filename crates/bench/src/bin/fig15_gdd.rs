//! Figure 15 — graphlet degree distributions for the central (degree-3)
//! orbit of U5-2 on the Enron, G(n,p), Portland, and Slashdot networks.
//!
//! The paper plots log-log frequency distributions; we print log2-binned
//! histograms per network. Shape to reproduce: the social networks show
//! heavy-tailed graphlet-degree distributions, while G(n,p) is tightly
//! concentrated. Total processing stays interactive (the paper: <30 s).
//!
//! Run: `cargo run --release -p fascia-bench --bin fig15_gdd`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{rooted_counts, CountConfig};
use fascia_graph::Dataset;
use fascia_template::NamedTemplate;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let iters: usize = std::env::var("FASCIA_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().expect("U5-2 central orbit");
    let sets = [
        Dataset::Enron,
        Dataset::Gnp,
        Dataset::Portland,
        Dataset::Slashdot,
    ];
    let mut report = Report::new("Fig 15: GDD of U5-2 central orbit", "vertex count");
    for ds in sets {
        let g = opts.load(ds);
        let cfg = CountConfig {
            iterations: iters,
            ..opts.base_config()
        };
        let r = rooted_counts(&g, &t, orbit, &cfg).expect("rooted counts");
        // log2 bins of graphlet degree.
        let mut bins: Vec<u64> = Vec::new();
        for &d in &r.per_vertex {
            let j = d.round() as u64;
            if j == 0 {
                continue;
            }
            let bin = 64 - j.leading_zeros() as usize; // floor(log2(j)) + 1
            if bins.len() <= bin {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        for (bin, &count) in bins.iter().enumerate() {
            if count > 0 {
                report.push(
                    ds.spec().name,
                    format!("2^{}..2^{}", bin.saturating_sub(1), bin),
                    count as f64,
                );
            }
        }
        eprintln!("[fig15] {} done ({:?})", ds.spec().name, r.elapsed);
    }
    report.print();
}
