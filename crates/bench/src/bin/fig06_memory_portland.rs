//! Figure 6 — peak dynamic-table memory on the Portland network with the
//! U*-2 templates: naive layout vs improved (lazy) layout vs improved with
//! labels.
//!
//! Shape to reproduce: improved saves ~20% over naive on unlabeled
//! templates (non-induced counts have low selectivity), and >90% once
//! labels prune most vertices.
//!
//! Memory is *measured*, not estimated: each run attaches a fresh
//! `fascia_obs::Metrics` registry and reads back the `table.bytes.peak`
//! gauge, which tracks the exact allocated bytes (`TableStats`) of the
//! live DP tables within an iteration.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig06_memory_portland [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, count_template_labeled, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::{random_labels, Dataset};
use fascia_obs::Metrics;
use fascia_table::TableKind;
use fascia_template::NamedTemplate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Portland);
    let graph_labels = random_labels(g.num_vertices(), 8, opts.seed ^ 0x1ABE15);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x7E4);
    let mut report = Report::new("Fig 6: peak table memory, Portland, U*-2", "measured bytes");
    for named in NamedTemplate::complex() {
        let t = named.template();
        let mk = |kind: TableKind| CountConfig {
            iterations: 1,
            table: kind,
            parallel: ParallelMode::InnerLoop,
            metrics: Some(Arc::new(Metrics::new())),
            ..opts.base_config()
        };
        let peak = |cfg: &CountConfig| {
            let m = cfg.metrics.as_deref().expect("metrics attached");
            m.gauge("table.bytes.peak").get()
        };
        let cfg = mk(TableKind::Dense);
        count_template(&g, &t, &cfg).expect("dense");
        let naive = peak(&cfg);
        let cfg = mk(TableKind::Lazy);
        count_template(&g, &t, &cfg).expect("lazy");
        let improved = peak(&cfg);
        let labels: Vec<u8> = (0..named.size()).map(|_| rng.gen_range(0..8)).collect();
        let tl = named.template().with_labels(labels).expect("labels");
        let cfg = mk(TableKind::Lazy);
        count_template_labeled(&g, &graph_labels, &tl, &cfg).expect("labeled");
        let labeled = peak(&cfg);
        report.push("naive", named.name(), naive as f64);
        report.push("improved", named.name(), improved as f64);
        report.push("labeled", named.name(), labeled as f64);
        eprintln!(
            "[fig06] {}: naive {} MB, improved {} MB ({:.1}% saved), labeled {} MB ({:.1}% saved)",
            named.name(),
            naive >> 20,
            improved >> 20,
            100.0 * (1.0 - improved as f64 / naive as f64),
            labeled >> 20,
            100.0 * (1.0 - labeled as f64 / naive as f64),
        );
    }
    report.print();
}
