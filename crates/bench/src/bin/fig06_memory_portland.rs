//! Figure 6 — peak dynamic-table memory on the Portland network with the
//! U*-2 templates: naive layout vs improved (lazy) layout vs improved with
//! labels.
//!
//! Shape to reproduce: improved saves ~20% over naive on unlabeled
//! templates (non-induced counts have low selectivity), and >90% once
//! labels prune most vertices.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig06_memory_portland [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, count_template_labeled, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::{random_labels, Dataset};
use fascia_table::TableKind;
use fascia_template::NamedTemplate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Portland);
    let graph_labels = random_labels(g.num_vertices(), 8, opts.seed ^ 0x1ABE15);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x7E4);
    let mut report = Report::new("Fig 6: peak table memory, Portland, U*-2", "bytes");
    for named in NamedTemplate::complex() {
        let t = named.template();
        let mk = |kind: TableKind| CountConfig {
            iterations: 1,
            table: kind,
            parallel: ParallelMode::InnerLoop,
            ..opts.base_config()
        };
        let naive = count_template(&g, &t, &mk(TableKind::Dense)).expect("dense");
        let improved = count_template(&g, &t, &mk(TableKind::Lazy)).expect("lazy");
        let labels: Vec<u8> = (0..named.size()).map(|_| rng.gen_range(0..8)).collect();
        let tl = named.template().with_labels(labels).expect("labels");
        let labeled =
            count_template_labeled(&g, &graph_labels, &tl, &mk(TableKind::Lazy)).expect("labeled");
        report.push("naive", named.name(), naive.peak_table_bytes as f64);
        report.push("improved", named.name(), improved.peak_table_bytes as f64);
        report.push("labeled", named.name(), labeled.peak_table_bytes as f64);
        eprintln!(
            "[fig06] {}: naive {} MB, improved {} MB ({:.1}% saved), labeled {} MB ({:.1}% saved)",
            named.name(),
            naive.peak_table_bytes >> 20,
            improved.peak_table_bytes >> 20,
            100.0 * (1.0 - improved.peak_table_bytes as f64 / naive.peak_table_bytes as f64),
            labeled.peak_table_bytes >> 20,
            100.0 * (1.0 - labeled.peak_table_bytes as f64 / naive.peak_table_bytes as f64),
        );
    }
    report.print();
}
