//! Table I — network sizes and degrees.
//!
//! Prints, for every dataset, the paper's reported statistics next to the
//! synthetic stand-in actually generated at the current scale, so the
//! substitution quality is auditable.
//!
//! Run: `cargo run --release -p fascia-bench --bin table1_networks [--full]`

use fascia_bench::BenchOpts;
use fascia_graph::Dataset;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    println!(
        "{:<14} | {:>9} {:>10} {:>6} {:>6} | {:>9} {:>10} {:>6} {:>6}",
        "network", "paper n", "paper m", "d_avg", "d_max", "gen n", "gen m", "d_avg", "d_max"
    );
    println!("{}", "-".repeat(96));
    for ds in Dataset::all() {
        let spec = ds.spec();
        let g = ds.generate(opts.scale, opts.seed);
        let scale_note = if spec.scalable && opts.scale > 1 {
            format!(" (1/{})", opts.scale)
        } else {
            String::new()
        };
        println!(
            "{:<14} | {:>9} {:>10} {:>6.1} {:>6} | {:>9} {:>10} {:>6.1} {:>6}{}",
            spec.name,
            spec.n,
            spec.m,
            spec.d_avg,
            spec.d_max,
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            g.max_degree(),
            scale_note
        );
    }
}
