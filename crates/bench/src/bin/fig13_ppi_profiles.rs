//! Figure 13 — relative motif frequencies of all size-7 trees on the four
//! PPI networks, counts scaled by each network's own mean.
//!
//! Shape to reproduce (the paper's headline biology claim, after Alon et
//! al.): the three unicellular organisms (E. coli, S. cerevisiae,
//! H. pylori) have similar profiles, while the multicellular C. elegans
//! stands out.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig13_ppi_profiles`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::CountConfig;
use fascia_core::motifs::motif_profile;
use fascia_graph::Dataset;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let iters: usize = std::env::var("FASCIA_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let mut report = Report::new("Fig 13: size-7 motif profiles, PPI networks", "rel freq");
    let mut profiles = Vec::new();
    for ds in Dataset::ppi() {
        let g = opts.load(ds);
        let cfg = CountConfig {
            iterations: iters,
            ..opts.base_config()
        };
        let p = motif_profile(&g, 7, &cfg).expect("profile");
        let rel = p.relative_frequencies();
        for (i, &f) in rel.iter().enumerate() {
            report.push(ds.spec().name, format!("{}", i + 1), f);
        }
        profiles.push((ds, rel));
    }
    report.print();

    // Quantify the headline claim: pairwise profile distance (L2 of log10
    // frequencies) between organisms.
    println!("\npairwise profile distances (lower = more similar):");
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            let d: f64 = profiles[i]
                .1
                .iter()
                .zip(&profiles[j].1)
                .map(|(&a, &b)| {
                    let la = (a.max(1e-12)).log10();
                    let lb = (b.max(1e-12)).log10();
                    (la - lb) * (la - lb)
                })
                .sum::<f64>()
                .sqrt();
            println!(
                "  {:<14} vs {:<14} {d:.4}",
                profiles[i].0.spec().name,
                profiles[j].0.spec().name
            );
        }
    }
}
