//! §V-C — FASCIA vs the naive exact counter vs an enumeration tool, on the
//! electrical circuit network, over all 11 size-7 tree templates.
//!
//! The paper (all codes serial): naive 147 s, MODA 32 s, FASCIA with 1000
//! iterations 22 s at ~1% average error. We substitute our pruned
//! enumerator for the closed-source MODA; the shape to reproduce is
//! naive > enumerator > FASCIA with FASCIA's error ~1%.
//!
//! Run: `cargo run --release -p fascia-bench --bin cmp_naive_moda`

use fascia_bench::{timed, BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::enumerate::count_exact_pruned;
use fascia_core::exact::count_exact;
use fascia_core::parallel::{with_threads, ParallelMode};
use fascia_graph::Dataset;
use fascia_template::gen::all_free_trees;

const ITERS: usize = 1000;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Circuit);
    let templates = all_free_trees(7);
    let mut report = Report::new("V-C: circuit network, all 11 size-7 trees", "seconds");

    // All serial, as in the paper's comparison.
    with_threads(1, || {
        let (exact_counts, naive_secs) = timed(|| {
            templates
                .iter()
                .map(|t| count_exact(&g, t))
                .collect::<Vec<_>>()
        });
        report.push("naive exact", "total", naive_secs);

        let (pruned_counts, moda_secs) = timed(|| {
            templates
                .iter()
                .map(|t| count_exact_pruned(&g, t))
                .collect::<Vec<_>>()
        });
        assert_eq!(exact_counts, pruned_counts, "baselines must agree");
        report.push("pruned enumerator", "total", moda_secs);

        let cfg = CountConfig {
            iterations: ITERS,
            parallel: ParallelMode::Serial,
            ..opts.base_config()
        };
        let (estimates, fascia_secs) = timed(|| {
            templates
                .iter()
                .map(|t| count_template(&g, t, &cfg).expect("count").estimate)
                .collect::<Vec<f64>>()
        });
        report.push("FASCIA (1000 iters)", "total", fascia_secs);

        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for (est, &ex) in estimates.iter().zip(&exact_counts) {
            if ex > 0 {
                err_sum += (est - ex as f64).abs() / ex as f64;
                err_n += 1;
            }
        }
        let mean_err = err_sum / err_n.max(1) as f64;
        report.push("FASCIA mean error", "fraction", mean_err);
        eprintln!(
            "[cmp] naive {naive_secs:.2}s, enumerator {moda_secs:.2}s, FASCIA {fascia_secs:.2}s, mean error {:.3}%",
            100.0 * mean_err
        );
    });
    report.print();

    // Crossover demonstration: enumeration cost grows with the number of
    // embeddings (exponential in k), while color coding stays polynomial.
    // On the paper's 2011 hardware the crossover sat at the 252-vertex
    // circuit; on modern hardware it moves up — this section locates it by
    // racing both approaches on an Enron-scale network for growing path
    // templates. FASCIA uses 100 iterations (error ~1% at this size,
    // Fig. 10).
    let g = opts.load(Dataset::Enron);
    let mut cross = Report::new("V-C crossover: exact vs FASCIA on Enron, paths", "seconds");
    with_threads(1, || {
        for k in [3usize, 4, 5] {
            let t = fascia_template::Template::path(k);
            let (exact, exact_secs) = timed(|| count_exact_pruned(&g, &t));
            let cfg = CountConfig {
                iterations: 100,
                parallel: ParallelMode::Serial,
                ..opts.base_config()
            };
            let (r, fascia_secs) = timed(|| count_template(&g, &t, &cfg).expect("count"));
            let err = (r.estimate - exact as f64).abs() / exact as f64;
            cross.push("exact enumeration", format!("P{k}"), exact_secs);
            cross.push("FASCIA (100 iters)", format!("P{k}"), fascia_secs);
            eprintln!(
                "[cmp] P{k}: exact {exact_secs:.2}s ({exact} occurrences), FASCIA {fascia_secs:.2}s (err {:.2}%)",
                100.0 * err
            );
        }
    });
    cross.print();
}
