//! Figure 5 — per-iteration motif-finding times on the four PPI networks.
//!
//! The paper scans all tree topologies of size 7 (11), 10 (106), and 12
//! (551); per-iteration times are sub-second for k = 7, seconds for
//! k = 10, and minutes for k = 12. Size 12 takes a while single-threaded,
//! so it only runs with `--full`.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig05_motif_times [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::motifs::motif_profile;
use fascia_graph::Dataset;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if full { &[7, 10, 12] } else { &[7, 10] };
    let mut report = Report::new("Fig 5: motif-finding time per iteration, PPI", "seconds");
    for ds in Dataset::ppi() {
        let g = opts.load(ds);
        for &size in sizes {
            let cfg = fascia_core::engine::CountConfig {
                iterations: 1,
                ..opts.base_config()
            };
            let p = motif_profile(&g, size, &cfg).expect("motif profile");
            let total: f64 = p.per_iteration_times.iter().map(|d| d.as_secs_f64()).sum();
            report.push(
                format!("{} k={size}", ds.spec().name),
                format!("{} templates", p.templates.len()),
                total,
            );
            eprintln!(
                "[fig05] {} k={size}: {} templates, {:.3}s total per iteration",
                ds.spec().name,
                p.templates.len(),
                total
            );
        }
    }
    report.print();
}
