//! Figure 2 — the template gallery.
//!
//! Renders every named template with its structural invariants
//! (automorphism count, partition classes, estimated DP cost), reproducing
//! the paper's template figure in text form.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig02_templates`

use fascia_template::automorphism::automorphisms;
use fascia_template::named::ascii_art;
use fascia_template::{NamedTemplate, PartitionStrategy, PartitionTree};

fn main() {
    for named in NamedTemplate::all() {
        let t = named.template();
        println!("==== {} ====", named.name());
        print!("{}", ascii_art(&t));
        println!("tree: {}", t.is_tree());
        println!("automorphisms: {}", automorphisms(&t));
        for strategy in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
            let pt = PartitionTree::build(&t, strategy).expect("named templates partition");
            println!(
                "partition[{strategy:?}]: {} nodes, {} classes, est ops {} (k = {}), peak live tables {}",
                pt.nodes().len(),
                pt.num_canon_classes(),
                pt.estimated_ops(t.size()),
                t.size(),
                pt.peak_live_tables(),
            );
        }
        println!();
    }
}
