//! Figure 11 — average motif-finding error vs iteration count on the
//! H. pylori network (all 11 size-7 tree templates).
//!
//! Shape to reproduce: errors are larger than on Enron (the graph is
//! small, so the random coloring has more variance) but the mean error
//! falls well below 1% by 1000 iterations. The 10^4 point runs with
//! `--full`.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig11_error_hpylori [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::exact::count_exact;
use fascia_core::motifs::mean_relative_error;
use fascia_core::parallel::ParallelMode;
use fascia_graph::Dataset;
use fascia_template::gen::all_free_trees;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let full = std::env::args().any(|a| a == "--full");
    let g = opts.load(Dataset::HPylori);
    let templates = all_free_trees(7);
    let exact: Vec<u128> = templates.iter().map(|t| count_exact(&g, t)).collect();
    eprintln!("[fig11] exact counts done");
    let checkpoints: &[usize] = if full {
        &[1, 10, 100, 1000, 10_000]
    } else {
        &[1, 10, 100, 1000]
    };
    let max_iters = *checkpoints.last().unwrap();
    let mut report = Report::new("Fig 11: mean motif error vs iterations, H. pylori", "error");
    // One long run per template; prefix means give every checkpoint.
    let cfg = CountConfig {
        iterations: max_iters,
        parallel: ParallelMode::Serial,
        ..opts.base_config()
    };
    let per_template: Vec<Vec<f64>> = templates
        .iter()
        .map(|t| count_template(&g, t, &cfg).expect("count").per_iteration)
        .collect();
    for &cp in checkpoints {
        let estimates: Vec<f64> = per_template
            .iter()
            .map(|series| series[..cp].iter().sum::<f64>() / cp as f64)
            .collect();
        let err = mean_relative_error(&estimates, &exact);
        report.push("mean error", format!("{cp}"), err);
        eprintln!("[fig11] {cp} iterations: mean error {:.3}%", 100.0 * err);
    }
    report.print();
}
