//! Extension — adaptive stopping vs the fixed a-priori iteration bound.
//!
//! The paper sizes runs with the AYZ bound N = ceil(e^k · ln(1/δ)/ε²),
//! which §V-D shows is wildly pessimistic: the empirical error is far
//! below ε long before N iterations. This binary quantifies the win of
//! the streaming stop rule: on a seeded Erdős–Rényi graph with a known
//! exact count, it runs `RelativeError { epsilon: 0.05, delta: 0.05 }`
//! against a fixed-bound run and reports wall-clock, iterations used,
//! achieved error, and the adaptive run's convergence trajectory
//! (running estimate and relative CI half-width per iteration).
//!
//! Shape to expect: the adaptive run stops after a few dozen iterations
//! with its final estimate inside the reported 95% CI of the exact
//! count, while the fixed run burns the whole budget for no extra
//! usable accuracy.
//!
//! Run: `cargo run --release -p fascia-bench --bin ext_adaptive [--full]`

use fascia_bench::{timed, BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::exact::count_exact;
use fascia_core::parallel::ParallelMode;
use fascia_core::stats::{StopRule, Welford};
use fascia_graph::gen::gnm;
use fascia_template::Template;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let full = std::env::args().any(|a| a == "--full");
    let epsilon = 0.05;
    let delta = 0.05;
    let t = Template::path(4);
    // Small enough that count_exact is instant; large enough that the
    // per-iteration variance is realistic.
    let (n, m) = if full { (500, 2_000) } else { (120, 400) };
    let g = gnm(n, m, 13);
    eprintln!("[ext_adaptive] G(n={n}, m={m}), template path-4, epsilon={epsilon}, delta={delta}");
    let exact = count_exact(&g, &t) as f64;
    eprintln!("[ext_adaptive] exact count: {exact}");

    // The a-priori bound is the budget the paper's analysis would demand;
    // cap it off --full so the comparison run stays quick.
    let apriori = fascia_combin::iterations_for(epsilon, delta, t.size()) as usize;
    let budget = if full { apriori } else { apriori.min(2_000) };
    eprintln!("[ext_adaptive] a-priori bound: {apriori} iterations (budget used: {budget})");

    let base = CountConfig {
        parallel: ParallelMode::Serial,
        ..opts.base_config()
    };
    let fixed_cfg = CountConfig {
        iterations: budget,
        ..base.clone()
    };
    let adaptive_cfg = CountConfig {
        stop: Some(StopRule::RelativeError {
            epsilon,
            delta,
            min_iters: StopRule::DEFAULT_MIN_ITERS,
            max_iters: budget,
        }),
        ..base
    };

    let (fixed, fixed_secs) = timed(|| count_template(&g, &t, &fixed_cfg).expect("fixed count"));
    let (adaptive, adaptive_secs) =
        timed(|| count_template(&g, &t, &adaptive_cfg).expect("adaptive count"));

    let mut report = Report::new("Ext: adaptive stop rule vs fixed a-priori bound", "value");
    for (name, r, secs) in [
        ("fixed", &fixed, fixed_secs),
        ("adaptive", &adaptive, adaptive_secs),
    ] {
        report.push(name, "seconds", secs);
        report.push(name, "iterations", r.iterations_run as f64);
        report.push(name, "estimate", r.estimate);
        report.push(name, "rel_error", (r.estimate - exact).abs() / exact);
        report.push(name, "ci95_half_width", r.ci95);
    }
    report.push(
        "adaptive",
        "iterations_saved",
        (budget - adaptive.iterations_run) as f64,
    );
    report.print();

    // Convergence trajectory of the adaptive run, replayed from its
    // per-iteration series: the running estimate and relative CI
    // half-width after each iteration. run_experiments.sh saves the
    // JSON tail of this report under results/metrics/.
    let z = adaptive_cfg.stop_rule().z();
    let mut stream = Welford::new();
    let mut trajectory = Report::new("Ext: adaptive convergence trajectory", "value");
    for (i, &x) in adaptive.per_iteration.iter().enumerate() {
        stream.push(x);
        trajectory.push("estimate", format!("{}", i + 1), stream.mean());
        trajectory.push("rel_ci", format!("{}", i + 1), stream.relative_ci(z));
    }
    trajectory.print();

    eprintln!(
        "[ext_adaptive] adaptive stopped after {}/{} iterations ({:.1}x fewer), \
         |estimate-exact| = {:.3e} vs ci95 = {:.3e}",
        adaptive.iterations_run,
        budget,
        budget as f64 / adaptive.iterations_run as f64,
        (adaptive.estimate - exact).abs(),
        adaptive.ci95
    );
    assert!(
        fixed_secs > adaptive_secs,
        "adaptive ({adaptive_secs:.3}s) should be strictly faster than fixed ({fixed_secs:.3}s)"
    );
}
