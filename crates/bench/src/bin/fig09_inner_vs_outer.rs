//! Figure 9 — inner-loop vs outer-loop parallelization with U7-2 on the
//! Enron network.
//!
//! On a small graph the paper sees ~6x speedup from outer-loop (iteration)
//! parallelism but only ~2.5x from inner-loop parallelism, because
//! per-vertex work is too fine-grained at 33k vertices. The harness sweeps
//! thread counts and reports both the per-iteration time (inner) and the
//! total / per-iteration time (outer) over a fixed 16-iteration budget.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig09_inner_vs_outer`

use fascia_bench::{timed, BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::parallel::{with_threads, ParallelMode};
use fascia_graph::Dataset;
use fascia_template::NamedTemplate;

const ITERS: usize = 16;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Enron);
    let t = NamedTemplate::U7_2.template();
    let max_threads = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    let mut report = Report::new(
        "Fig 9: inner vs outer parallelism, U7-2 on Enron",
        "seconds",
    );
    for &nt in &threads {
        for mode in [ParallelMode::InnerLoop, ParallelMode::OuterLoop] {
            let cfg = CountConfig {
                iterations: ITERS,
                parallel: mode,
                ..opts.base_config()
            };
            let (result, total) = with_threads(nt, || timed(|| count_template(&g, &t, &cfg)));
            let r = result.expect("count");
            let per_iter = total / ITERS as f64;
            report.push(mode.name(), format!("{nt} threads"), per_iter);
            if mode == ParallelMode::OuterLoop {
                report.push("outer (total)", format!("{nt} threads"), total);
            }
            eprintln!(
                "[fig09] {} {nt} threads: {per_iter:.4}s/iter ({total:.3}s total, estimate {:.3e})",
                mode.name(),
                r.estimate
            );
        }
    }
    report.print();
}
