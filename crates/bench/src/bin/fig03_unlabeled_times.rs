//! Figure 3 — single-iteration execution times for the ten unlabeled
//! templates on the Portland network.
//!
//! The paper's observation to reproduce: time is dominated by template
//! size, rises steeply toward k = 12, varies only ~2x across same-size
//! structures, and U12-2 (the partition stress test) is the most expensive.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig03_unlabeled_times [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::Dataset;
use fascia_template::NamedTemplate;

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Portland);
    let mut report = Report::new("Fig 3: single-iteration time, Portland", "seconds");
    for named in NamedTemplate::all() {
        let t = named.template();
        let cfg = CountConfig {
            iterations: 1,
            parallel: ParallelMode::InnerLoop,
            ..opts.base_config()
        };
        let r = count_template(&g, &t, &cfg).expect("count");
        report.push(
            "unlabeled",
            named.name(),
            r.per_iteration_time.as_secs_f64(),
        );
        eprintln!(
            "[fig03] {}: {:?}/iter, estimate {:.3e}, peak {} MB",
            named.name(),
            r.per_iteration_time,
            r.estimate,
            r.peak_table_bytes / (1 << 20)
        );
    }
    report.print();
}
