//! Figure 4 — single-iteration times for the ten templates with vertex
//! labels on the Portland network.
//!
//! Labels (8 values: the paper's 2 genders x 4 age groups, assigned
//! uniformly at random) prune the search space; the paper reports runtimes
//! dropping from minutes to fractions of a second. The shape to reproduce:
//! labeled times are orders of magnitude below Figure 3's.
//!
//! Run: `cargo run --release -p fascia-bench --bin fig04_labeled_times [--full]`

use fascia_bench::{BenchOpts, Report};
use fascia_core::engine::{count_template_labeled, CountConfig};
use fascia_core::parallel::ParallelMode;
use fascia_graph::{random_labels, Dataset};
use fascia_template::NamedTemplate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = BenchOpts::from_env_and_args();
    let g = opts.load(Dataset::Portland);
    let graph_labels = random_labels(g.num_vertices(), 8, opts.seed ^ 0x1ABE15);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x7E3);
    let mut report = Report::new("Fig 4: single-iteration time, labeled, Portland", "seconds");
    for named in NamedTemplate::all() {
        let labels: Vec<u8> = (0..named.size()).map(|_| rng.gen_range(0..8)).collect();
        let t = named.template().with_labels(labels).expect("label len");
        let cfg = CountConfig {
            iterations: 1,
            parallel: ParallelMode::InnerLoop,
            ..opts.base_config()
        };
        let r = count_template_labeled(&g, &graph_labels, &t, &cfg).expect("count");
        report.push("labeled", named.name(), r.per_iteration_time.as_secs_f64());
        eprintln!(
            "[fig04] {}: {:?}/iter, estimate {:.3e}, peak {} MB",
            named.name(),
            r.per_iteration_time,
            r.estimate,
            r.peak_table_bytes / (1 << 20)
        );
    }
    report.print();
}
