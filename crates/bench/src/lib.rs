//! Shared helpers for the FASCIA benchmark harness.
//!
//! Every figure and table of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §6 for the index). This
//! library holds the common scaffolding: scale handling, dataset loading
//! with caching, timing helpers, and the tabular/JSON reporters.

use fascia_core::engine::CountConfig;
use fascia_graph::{Dataset, Graph};
use fascia_obs::json::{array_of, ObjectWriter};
use std::time::Instant;

pub mod perf;

/// Command-line/environment controls shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Scale divisor applied to the two huge networks (1 = paper scale).
    pub scale: usize,
    /// Base seed for generators and colorings.
    pub seed: u64,
}

impl BenchOpts {
    /// Reads `--full` (scale 1) and `FASCIA_SCALE` (default 64).
    pub fn from_env_and_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        let scale = if full {
            1
        } else {
            fascia_graph::datasets::scale_from_env()
        };
        Self {
            scale,
            seed: 0x00FA_5C1A,
        }
    }

    /// Generates a dataset stand-in at the configured scale.
    pub fn load(&self, ds: Dataset) -> Graph {
        let start = Instant::now();
        let g = ds.generate(self.scale, self.seed);
        eprintln!(
            "[gen] {}: n={} m={} d_avg={:.1} d_max={} ({:?})",
            ds.spec().name,
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            g.max_degree(),
            start.elapsed()
        );
        g
    }

    /// Base engine configuration used by the figures (overridden per
    /// experiment).
    pub fn base_config(&self) -> CountConfig {
        CountConfig {
            seed: self.seed,
            ..CountConfig::default()
        }
    }
}

/// One output row of a figure series (also serialized as JSON for
/// EXPERIMENTS.md updates).
#[derive(Debug, Clone)]
pub struct Row {
    /// Series label (e.g. the template or table-layout name).
    pub series: String,
    /// X value (template, size, thread count, iteration count, ...).
    pub x: String,
    /// Y value (seconds, bytes, error, agreement, relative frequency, ...).
    pub y: f64,
}

/// Collects rows and renders them as an aligned table plus a JSON tail.
#[derive(Debug, Default)]
pub struct Report {
    title: String,
    y_label: String,
    rows: Vec<Row>,
}

impl Report {
    /// Creates a report for one figure.
    pub fn new(title: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            y_label: y_label.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one data point.
    pub fn push(&mut self, series: impl Into<String>, x: impl Into<String>, y: f64) {
        self.rows.push(Row {
            series: series.into(),
            x: x.into(),
            y,
        });
    }

    /// Renders the table to stdout and the JSON line to stderr.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        println!("{:<24} {:<16} {}", "series", "x", self.y_label);
        for r in &self.rows {
            // Normalize negative zero for readability.
            let y = if r.y == 0.0 { 0.0 } else { r.y };
            println!("{:<24} {:<16} {y:.6e}", r.series, r.x);
        }
        eprintln!("[json] {} {}", self.title, self.rows_json());
    }

    /// Serializes the rows as a JSON array (same shape serde used to emit).
    pub fn rows_json(&self) -> String {
        array_of(self.rows.iter().map(|r| {
            let mut o = ObjectWriter::new();
            o.field_str("series", &r.series)
                .field_str("x", &r.x)
                .field_f64("y", r.y);
            o.finish()
        }))
    }

    /// Accesses collected rows (used by tests).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_rows() {
        let mut r = Report::new("t", "seconds");
        r.push("a", "1", 0.5);
        r.push("a", "2", 1.5);
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[1].y, 1.5);
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn default_opts_have_scale() {
        let o = BenchOpts::from_env_and_args();
        assert!(o.scale >= 1);
    }
}
