//! `fascia-perf` — the machine-readable perf-regression harness.
//!
//! The paper's contribution is speed, so this repo tracks speed the same
//! way it tracks correctness: a pinned suite of counting workloads
//! ([`default_suite`]) runs with warmup, fixed seeds, and robust statistics
//! (median + MAD over ≥ 7 reps), and the result is a stable
//! [`SCHEMA`]` = fascia-perf/1` JSON document ([`PerfDoc`]) written with
//! [`fascia_core::atomic_write`]. Two documents diff via [`compare`]: a
//! per-benchmark median ratio gated by a one-sided Mann–Whitney U test
//! ([`mann_whitney`]), so `scripts/ci.sh` can fail on *significant*
//! slowdowns while shrugging off scheduler noise.
//!
//! The criterion-shim benches append single-benchmark documents in the
//! same schema (one JSON object per line, see `FASCIA_PERF_APPEND` in the
//! shim); [`PerfDoc::parse`] accepts both a whole document and such a
//! JSON-lines stream, so every timing source in the repo speaks one
//! format.
//!
//! # Schema (`fascia-perf/1`, additive-only like `fascia-obs/1`)
//!
//! ```json
//! {
//!   "schema": "fascia-perf/1",
//!   "created_unix_ms": 1754460000000,
//!   "threads": 8,
//!   "cpu_model": "...",          // host provenance, omitted when unknown
//!   "kernel": "...",
//!   "git_sha": "...",
//!   "benchmarks": {
//!     "count/serial/improved/small": {
//!       "warmup": 1,
//!       "threshold": 1.3,
//!       "peak_table_bytes": 1048576,
//!       "median_s": 0.0123,
//!       "mad_s": 0.0004,
//!       "reps_s": [0.0121, 0.0123, 0.0131]
//!     }
//!   }
//! }
//! ```
//!
//! `median_s`/`mad_s` are embedded for human diffing but recomputed from
//! `reps_s` on parse, so a hand-edited document cannot lie to the gate.
//! `peak_table_bytes` is the memory axis next to the time axis: the
//! largest measured live DP-table footprint across the record's reps (0
//! from producers that predate the field — the schema stays additive).

use fascia_core::engine::{count_template, CountConfig};
use fascia_core::kernel::KernelKind;
use fascia_core::parallel::ParallelMode;
use fascia_core::resilience::{FaultInjection, Json};
use fascia_graph::gen::gnm;
use fascia_graph::Graph;
use fascia_obs::json::{array_of, write_f64, ObjectWriter};
use fascia_table::TableKind;
use fascia_template::{NamedTemplate, Template};
use std::collections::BTreeMap;
use std::time::{Duration, Instant, SystemTime};

/// Schema tag of every perf document this module reads or writes.
pub const SCHEMA: &str = "fascia-perf/1";

/// Default per-benchmark regression threshold: a median ratio above this
/// (together with statistical significance) counts as a regression.
pub const DEFAULT_THRESHOLD: f64 = 1.3;

/// Default one-sided significance level for the Mann–Whitney gate.
pub const DEFAULT_ALPHA: f64 = 0.01;

// ---------------------------------------------------------------------------
// Robust statistics
// ---------------------------------------------------------------------------

/// Median of a sample (0.0 for an empty one).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation from the median — the robust spread the
/// compare report prints next to each median.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|&x| (x - m).abs()).collect();
    median(&dev)
}

/// Result of the one-sided Mann–Whitney U test of [`mann_whitney`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwuResult {
    /// The U statistic counting pairs where a `new` observation exceeds an
    /// `old` one (ties credit 0.5).
    pub u: f64,
    /// One-sided p-value of observing a U at least this large under the
    /// null hypothesis that both samples share a distribution — small
    /// means `new` is significantly *larger* (slower).
    pub p_greater: f64,
}

/// One-sided Mann–Whitney U test for "is `new` stochastically greater
/// than `old`?" — the nonparametric significance gate behind
/// [`compare`]. Uses the exact small-sample null distribution when there
/// are no ties and `n·m` is small, otherwise the normal approximation
/// with tie and continuity corrections. Empty samples yield `p = 1`.
pub fn mann_whitney(old: &[f64], new: &[f64]) -> MwuResult {
    let (n_old, n_new) = (old.len(), new.len());
    if n_old == 0 || n_new == 0 {
        return MwuResult {
            u: 0.0,
            p_greater: 1.0,
        };
    }
    let mut u = 0.0f64;
    let mut ties = false;
    for &x in new {
        for &y in old {
            if x > y {
                u += 1.0;
            } else if x == y {
                u += 0.5;
                ties = true;
            }
        }
    }
    // Exact only for tie-free small samples; ties force the (tie-
    // corrected) normal approximation, which is also cheaper at scale.
    let p_greater = if !ties && n_old * n_new <= 400 {
        exact_p_greater(u as u64, n_new, n_old)
    } else {
        normal_p_greater(u, old, new)
    };
    MwuResult { u, p_greater }
}

/// Exact `P(U ≥ u)` over all `C(n+m, n)` equally-likely label
/// arrangements, via Mann & Whitney's recurrence
/// `N(u; n, m) = N(u-m; n-1, m) + N(u; n, m-1)` (the pooled maximum is
/// either a "new" observation, beating all `m` old ones, or an "old"
/// one, beating none). Valid only without ties. `n` labels the sample
/// whose wins `u` counts.
fn exact_p_greater(u: u64, n: usize, m: usize) -> f64 {
    let max_u = n * m;
    // f[j][v] = N(v; i, j) for the current i; i = 0 ⇒ U is always 0.
    let mut f: Vec<Vec<f64>> = vec![vec![0.0; max_u + 1]; m + 1];
    for row in f.iter_mut() {
        row[0] = 1.0;
    }
    for _i in 1..=n {
        let mut g: Vec<Vec<f64>> = vec![vec![0.0; max_u + 1]; m + 1];
        g[0][0] = 1.0;
        for j in 1..=m {
            for v in 0..=max_u {
                let new_is_max = if v >= j { f[j][v - j] } else { 0.0 };
                g[j][v] = new_is_max + g[j - 1][v];
            }
        }
        f = g;
    }
    let row = &f[m];
    let total: f64 = row.iter().sum();
    let tail: f64 = row[(u as usize).min(max_u)..].iter().sum();
    tail / total
}

/// Normal approximation of `P(U ≥ u)` with tie-corrected variance and a
/// continuity correction.
fn normal_p_greater(u: f64, old: &[f64], new: &[f64]) -> f64 {
    let n = new.len() as f64;
    let m = old.len() as f64;
    let nm = n + m;
    let mean = n * m / 2.0;
    // Tie correction: group identical values across the pooled sample.
    let mut pooled: Vec<f64> = old.iter().chain(new).copied().collect();
    pooled.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i + 1;
        while j < pooled.len() && pooled[j] == pooled[i] {
            j += 1;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }
    let var = if nm > 1.0 {
        (n * m / 12.0) * (nm + 1.0 - tie_term / (nm * (nm - 1.0)))
    } else {
        0.0
    };
    if var <= 0.0 {
        // Every pooled value identical: no evidence either way.
        return 1.0;
    }
    let z = (u - mean - 0.5) / var.sqrt();
    1.0 - normal_cdf(z)
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7, ample for a significance gate).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

// ---------------------------------------------------------------------------
// The fascia-perf/1 document
// ---------------------------------------------------------------------------

/// One benchmark's measured repetitions plus its gate parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfRecord {
    /// Warmup repetitions executed before timing began.
    pub warmup: u64,
    /// Median-ratio threshold above which (with significance) this
    /// benchmark counts as regressed.
    pub threshold: f64,
    /// Largest measured live DP-table footprint across the reps, bytes
    /// (0 when the producer did not measure memory).
    pub peak_table_bytes: u64,
    /// Timed repetitions, in seconds, in execution order.
    pub reps_s: Vec<f64>,
}

impl PerfRecord {
    /// Median seconds per repetition.
    pub fn median_s(&self) -> f64 {
        median(&self.reps_s)
    }

    /// Median absolute deviation of the repetitions.
    pub fn mad_s(&self) -> f64 {
        mad(&self.reps_s)
    }

    fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_u64("warmup", self.warmup)
            .field_f64("threshold", self.threshold)
            .field_u64("peak_table_bytes", self.peak_table_bytes)
            .field_f64("median_s", self.median_s())
            .field_f64("mad_s", self.mad_s())
            .field_raw(
                "reps_s",
                &array_of(self.reps_s.iter().map(|&x| {
                    let mut s = String::new();
                    write_f64(&mut s, x);
                    s
                })),
            );
        o.finish()
    }
}

/// A full `fascia-perf/1` document: machine context plus a stable-ordered
/// map of benchmark records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfDoc {
    /// Wall-clock creation time (ms since the Unix epoch); 0 when the
    /// producer had no clock worth trusting (e.g. merged shim lines).
    pub created_unix_ms: u64,
    /// Worker threads available to the producing run.
    pub threads: u64,
    /// Host CPU model of the producing run, when detectable — BENCH
    /// archives are compared across machines, so the document says which
    /// machine produced it.
    pub cpu_model: Option<String>,
    /// Host kernel release of the producing run, when detectable.
    pub kernel: Option<String>,
    /// Git commit of the producing working tree, when detectable.
    pub git_sha: Option<String>,
    /// Benchmark id → record, sorted by id for stable serialization.
    pub benchmarks: BTreeMap<String, PerfRecord>,
}

impl PerfDoc {
    /// An empty document stamped with the current time, thread count, and
    /// host provenance (best effort).
    pub fn new_now() -> Self {
        Self {
            created_unix_ms: unix_ms_now(),
            threads: rayon::current_num_threads() as u64,
            cpu_model: fascia_obs::detect_cpu_model(),
            kernel: fascia_obs::detect_kernel(),
            git_sha: fascia_obs::detect_git_sha(),
            benchmarks: BTreeMap::new(),
        }
    }

    /// Serializes the document (compact, stable key order). Provenance
    /// fields are emitted only when present (additive-only schema).
    pub fn to_json(&self) -> String {
        let mut bench = ObjectWriter::new();
        for (name, rec) in &self.benchmarks {
            bench.field_raw(name, &rec.to_json());
        }
        let mut o = ObjectWriter::new();
        o.field_str("schema", SCHEMA)
            .field_u64("created_unix_ms", self.created_unix_ms)
            .field_u64("threads", self.threads);
        if let Some(cpu) = &self.cpu_model {
            o.field_str("cpu_model", cpu);
        }
        if let Some(k) = &self.kernel {
            o.field_str("kernel", k);
        }
        if let Some(sha) = &self.git_sha {
            o.field_str("git_sha", sha);
        }
        o.field_raw("benchmarks", &bench.finish());
        o.finish()
    }

    /// Parses a document, or a JSON-lines stream of documents (the
    /// criterion-shim append format) merged benchmark-by-benchmark.
    /// Rejects unknown schemas and malformed records with a message
    /// naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut merged: Option<PerfDoc> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = Self::parse_one(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            match &mut merged {
                None => merged = Some(doc),
                Some(m) => {
                    if doc.created_unix_ms != 0 {
                        m.created_unix_ms = doc.created_unix_ms;
                    }
                    if doc.threads != 0 {
                        m.threads = doc.threads;
                    }
                    if doc.cpu_model.is_some() {
                        m.cpu_model = doc.cpu_model;
                    }
                    if doc.kernel.is_some() {
                        m.kernel = doc.kernel;
                    }
                    if doc.git_sha.is_some() {
                        m.git_sha = doc.git_sha;
                    }
                    m.benchmarks.extend(doc.benchmarks);
                }
            }
        }
        merged.ok_or_else(|| "empty perf document".to_string())
    }

    fn parse_one(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let obj = v.as_obj().ok_or("top-level value must be an object")?;
        let schema = Json::get(obj, "schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let prov = |k: &str| Json::get(obj, k).and_then(Json::as_str).map(str::to_string);
        let mut doc = PerfDoc {
            created_unix_ms: Json::get(obj, "created_unix_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            threads: Json::get(obj, "threads")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            cpu_model: prov("cpu_model"),
            kernel: prov("kernel"),
            git_sha: prov("git_sha"),
            benchmarks: BTreeMap::new(),
        };
        let benches = Json::get(obj, "benchmarks")
            .and_then(Json::as_obj)
            .ok_or("missing \"benchmarks\" object")?;
        for (name, rec) in benches {
            let rec = rec
                .as_obj()
                .ok_or_else(|| format!("benchmark {name:?} is not an object"))?;
            let reps = Json::get(rec, "reps_s")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("benchmark {name:?} missing \"reps_s\""))?;
            let mut reps_s = Vec::with_capacity(reps.len());
            for x in reps {
                reps_s.push(
                    x.as_f64()
                        .ok_or_else(|| format!("benchmark {name:?} has a non-numeric rep"))?,
                );
            }
            if reps_s.is_empty() {
                return Err(format!("benchmark {name:?} has zero reps"));
            }
            doc.benchmarks.insert(
                name.clone(),
                PerfRecord {
                    warmup: Json::get(rec, "warmup").and_then(Json::as_u64).unwrap_or(0),
                    threshold: Json::get(rec, "threshold")
                        .and_then(Json::as_f64)
                        .unwrap_or(DEFAULT_THRESHOLD),
                    peak_table_bytes: Json::get(rec, "peak_table_bytes")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    reps_s,
                },
            );
        }
        Ok(doc)
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// `YYYY-MM-DD` in UTC for a Unix-epoch millisecond timestamp (civil-
/// from-days, Howard Hinnant's algorithm) — names the default
/// `BENCH_<date>.json` output without any date dependency.
pub fn iso_date_utc(unix_ms: u64) -> String {
    let days = (unix_ms / 86_400_000) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

// ---------------------------------------------------------------------------
// Compare
// ---------------------------------------------------------------------------

/// Verdict of one benchmark's old-vs-new diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold, or the difference is not significant.
    Similar,
    /// Significantly slower than the threshold allows.
    Regressed,
    /// Significantly faster than the inverse threshold.
    Improved,
    /// Present only in the new document (no baseline to judge).
    Added,
    /// Present only in the old document.
    Removed,
}

impl Verdict {
    /// Stable lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Similar => "similar",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One row of a [`compare`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark id.
    pub name: String,
    /// Baseline median seconds (0 when [`Verdict::Added`]).
    pub old_median_s: f64,
    /// Candidate median seconds (0 when [`Verdict::Removed`]).
    pub new_median_s: f64,
    /// Baseline repetition count (0 when [`Verdict::Added`]). Cells with
    /// fewer than 4 reps on either side skip the Mann–Whitney gate and
    /// fall back to the ratio alone — the printed counts make that
    /// fallback visible per row.
    pub old_n: usize,
    /// Candidate repetition count (0 when [`Verdict::Removed`]).
    pub new_n: usize,
    /// Baseline median absolute deviation, seconds.
    pub old_mad_s: f64,
    /// Candidate median absolute deviation, seconds.
    pub new_mad_s: f64,
    /// `new_median_s / old_median_s` (∞-safe: 0-second baselines yield 1).
    pub ratio: f64,
    /// One-sided Mann–Whitney p-value that new is slower, when both
    /// samples are large enough for the test to mean anything.
    pub p_greater: Option<f64>,
    /// The verdict under the applied threshold and `alpha`.
    pub verdict: Verdict,
}

/// Diffs two perf documents benchmark-by-benchmark. A benchmark
/// regresses only when its median ratio exceeds its threshold (the new
/// record's, unless `threshold_override` forces one) **and** the
/// Mann–Whitney gate finds the slowdown significant at `alpha`; samples
/// too small to test (fewer than 4 reps on either side, e.g. the 1-rep CI
/// smoke) fall back to the ratio alone. Improvements mirror the rule with
/// the inverse threshold.
pub fn compare(
    old: &PerfDoc,
    new: &PerfDoc,
    threshold_override: Option<f64>,
    alpha: f64,
) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (name, o) in &old.benchmarks {
        let Some(n) = new.benchmarks.get(name) else {
            out.push(Comparison {
                name: name.clone(),
                old_median_s: o.median_s(),
                new_median_s: 0.0,
                old_n: o.reps_s.len(),
                new_n: 0,
                old_mad_s: o.mad_s(),
                new_mad_s: 0.0,
                ratio: 1.0,
                p_greater: None,
                verdict: Verdict::Removed,
            });
            continue;
        };
        let old_med = o.median_s();
        let new_med = n.median_s();
        let ratio = if old_med > 0.0 {
            new_med / old_med
        } else {
            1.0
        };
        let threshold = threshold_override.unwrap_or(n.threshold).max(1.0);
        let testable = o.reps_s.len() >= 4 && n.reps_s.len() >= 4;
        let (p_greater, verdict) = if testable {
            let slower = mann_whitney(&o.reps_s, &n.reps_s);
            let faster = mann_whitney(&n.reps_s, &o.reps_s);
            let v = if ratio > threshold && slower.p_greater < alpha {
                Verdict::Regressed
            } else if ratio < 1.0 / threshold && faster.p_greater < alpha {
                Verdict::Improved
            } else {
                Verdict::Similar
            };
            (Some(slower.p_greater), v)
        } else {
            let v = if ratio > threshold {
                Verdict::Regressed
            } else if ratio < 1.0 / threshold {
                Verdict::Improved
            } else {
                Verdict::Similar
            };
            (None, v)
        };
        out.push(Comparison {
            name: name.clone(),
            old_median_s: old_med,
            new_median_s: new_med,
            old_n: o.reps_s.len(),
            new_n: n.reps_s.len(),
            old_mad_s: o.mad_s(),
            new_mad_s: n.mad_s(),
            ratio,
            p_greater,
            verdict,
        });
    }
    for (name, n) in &new.benchmarks {
        if !old.benchmarks.contains_key(name) {
            out.push(Comparison {
                name: name.clone(),
                old_median_s: 0.0,
                new_median_s: n.median_s(),
                old_n: 0,
                new_n: n.reps_s.len(),
                old_mad_s: 0.0,
                new_mad_s: n.mad_s(),
                ratio: 1.0,
                p_greater: None,
                verdict: Verdict::Added,
            });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Whether any row regressed — the CI gate's exit condition.
pub fn any_regression(rows: &[Comparison]) -> bool {
    rows.iter().any(|r| r.verdict == Verdict::Regressed)
}

/// Renders a compare report as an aligned table. Each side prints its
/// rep count and MAD next to the median, so a `p` of `-` is visibly a
/// sub-4-rep ratio-only fallback rather than a passed statistical gate.
pub fn render_comparisons(rows: &[Comparison]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>5} {:>9} {:>12} {:>5} {:>9} {:>8} {:>10}  verdict",
        "benchmark", "old_ms", "old_n", "old_mad", "new_ms", "new_n", "new_mad", "ratio", "p"
    );
    for r in rows {
        let p = r
            .p_greater
            .map_or_else(|| "-".to_string(), |p| format!("{p:.4}"));
        let _ = writeln!(
            out,
            "{:<36} {:>12.3} {:>5} {:>9.3} {:>12.3} {:>5} {:>9.3} {:>8.3} {:>10}  {}",
            r.name,
            r.old_median_s * 1e3,
            r.old_n,
            r.old_mad_s * 1e3,
            r.new_median_s * 1e3,
            r.new_n,
            r.new_mad_s * 1e3,
            r.ratio,
            p,
            r.verdict.name()
        );
    }
    out
}

// ---------------------------------------------------------------------------
// The pinned suite
// ---------------------------------------------------------------------------

/// Graph scale of a suite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// `gnm(2_000, 8_000)` — milliseconds per rep, the smoke tier.
    Small,
    /// `gnm(12_000, 60_000)` — tens of milliseconds per rep.
    Large,
}

impl Scale {
    /// Stable name used in benchmark ids.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Large => "large",
        }
    }

    /// Generates this scale's pinned graph (fixed seed).
    pub fn graph(&self) -> Graph {
        match self {
            Scale::Small => gnm(2_000, 8_000, 17),
            Scale::Large => gnm(12_000, 60_000, 17),
        }
    }

    /// Iterations per timed repetition, scaled so both tiers take
    /// comparable wall time per rep.
    fn iterations(&self) -> usize {
        match self {
            Scale::Small => 4,
            Scale::Large => 1,
        }
    }
}

/// One pinned workload of the suite.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Stable id: `count/<mode>/<table>/<scale>`.
    pub id: String,
    /// Threading scheme under test.
    pub mode: ParallelMode,
    /// Table layout under test.
    pub table: TableKind,
    /// Graph scale.
    pub scale: Scale,
}

/// The pinned suite: serial/inner/outer × dense(naive)/lazy(improved)/
/// hashed × two graph scales, all counting the paper's U5-2 template with
/// fixed seeds. `smoke` restricts to serial × small — the cheap tier
/// `scripts/ci.sh` gates on.
pub fn default_suite(smoke: bool) -> Vec<BenchSpec> {
    let modes: &[ParallelMode] = if smoke {
        &[ParallelMode::Serial]
    } else {
        &[
            ParallelMode::Serial,
            ParallelMode::InnerLoop,
            ParallelMode::OuterLoop,
        ]
    };
    let scales: &[Scale] = if smoke {
        &[Scale::Small]
    } else {
        &[Scale::Small, Scale::Large]
    };
    let mut out = Vec::new();
    for &scale in scales {
        for &mode in modes {
            for table in TableKind::all() {
                out.push(BenchSpec {
                    id: format!("count/{}/{}/{}", mode.name(), table.name(), scale.name()),
                    mode,
                    table,
                    scale,
                });
            }
        }
    }
    out
}

/// Runner controls for [`run_suite`].
#[derive(Debug, Clone)]
pub struct SuiteOpts {
    /// Timed repetitions per benchmark (the gate wants ≥ 7 for a
    /// meaningful Mann–Whitney; CI smoke uses 1 and falls back to the
    /// ratio-only rule).
    pub reps: usize,
    /// Untimed warmup repetitions per benchmark.
    pub warmup: usize,
    /// Restrict to the smoke tier of [`default_suite`].
    pub smoke: bool,
    /// Substring filter on benchmark ids.
    pub filter: Option<String>,
    /// Synthetic slowdown injected into every DP step via
    /// [`FaultInjection::sleep_in_dp`] — exists to prove the compare gate
    /// catches a real regression (`FASCIA_PERF_SLEEP_MS` in the binary).
    pub handicap: Option<Duration>,
    /// Per-benchmark progress lines on stderr.
    pub verbose: bool,
    /// Cut-node DP kernel every workload runs with (`--kernel` on the
    /// binary) — the A/B axis of the kernel speedup gate. Not part of the
    /// benchmark ids: a scalar document and a vectorized document compare
    /// cell-for-cell.
    pub kernel: KernelKind,
}

impl Default for SuiteOpts {
    fn default() -> Self {
        Self {
            reps: 7,
            warmup: 1,
            smoke: false,
            filter: None,
            handicap: None,
            verbose: false,
            kernel: KernelKind::Vectorized,
        }
    }
}

/// Executes the pinned suite and returns its perf document. Workloads
/// use fixed seeds throughout, so two runs on one machine differ only by
/// scheduler noise — exactly what the Mann–Whitney gate is calibrated
/// for.
pub fn run_suite(opts: &SuiteOpts) -> PerfDoc {
    let template: Template = NamedTemplate::U5_2.template();
    let mut doc = PerfDoc::new_now();
    let mut graphs: Vec<(Scale, Graph)> = Vec::new();
    for spec in default_suite(opts.smoke) {
        if let Some(f) = &opts.filter {
            if !spec.id.contains(f.as_str()) {
                continue;
            }
        }
        let g = match graphs.iter().find(|(s, _)| *s == spec.scale) {
            Some((_, g)) => g,
            None => {
                graphs.push((spec.scale, spec.scale.graph()));
                &graphs.last().unwrap().1
            }
        };
        let cfg = CountConfig {
            iterations: spec.scale.iterations(),
            table: spec.table,
            kernel: opts.kernel,
            parallel: spec.mode,
            seed: 0x00FA_5C1A,
            fault: FaultInjection {
                sleep_in_dp: opts.handicap,
                ..FaultInjection::default()
            },
            ..CountConfig::default()
        };
        for _ in 0..opts.warmup {
            let _ = count_template(g, &template, &cfg).expect("suite workload must count");
        }
        let mut reps_s = Vec::with_capacity(opts.reps.max(1));
        let mut peak_table_bytes = 0u64;
        for _ in 0..opts.reps.max(1) {
            let start = Instant::now();
            let r = count_template(g, &template, &cfg).expect("suite workload must count");
            let secs = start.elapsed().as_secs_f64();
            // Keep the estimate alive so the count cannot be optimized out.
            assert!(r.estimate.is_finite());
            peak_table_bytes = peak_table_bytes.max(r.peak_table_bytes as u64);
            reps_s.push(secs);
        }
        if opts.verbose {
            eprintln!(
                "[perf] {:<36} median {:>9.3} ms over {} reps",
                spec.id,
                median(&reps_s) * 1e3,
                reps_s.len()
            );
        }
        doc.benchmarks.insert(
            spec.id,
            PerfRecord {
                warmup: opts.warmup as u64,
                threshold: DEFAULT_THRESHOLD,
                peak_table_bytes,
                reps_s,
            },
        );
    }
    doc
}

// ---------------------------------------------------------------------------
// Paired kernel A/B
// ---------------------------------------------------------------------------

/// One suite cell of [`run_ab`]: the same pinned workload timed under
/// both DP kernels, with repetitions interleaved in a single process.
#[derive(Debug, Clone)]
pub struct AbCell {
    /// Benchmark id (same scheme as [`default_suite`]).
    pub id: String,
    /// Timed scalar-kernel repetitions, in seconds, in execution order.
    pub scalar_s: Vec<f64>,
    /// Timed vectorized-kernel repetitions, in seconds, in execution order.
    pub vector_s: Vec<f64>,
    /// Peak live DP-table bytes observed under the scalar kernel.
    pub scalar_peak_bytes: u64,
    /// Peak live DP-table bytes observed under the vectorized kernel.
    pub vector_peak_bytes: u64,
}

impl AbCell {
    /// Median scalar-over-vectorized speedup (1.0 when degenerate).
    pub fn speedup(&self) -> f64 {
        let v = median(&self.vector_s);
        if v > 0.0 {
            median(&self.scalar_s) / v
        } else {
            1.0
        }
    }

    /// One-sided Mann–Whitney p-value that the vectorized kernel is
    /// *faster* (i.e. that scalar repetitions are stochastically
    /// greater), when both sides have enough repetitions to test.
    pub fn p_faster(&self) -> Option<f64> {
        (self.scalar_s.len() >= 4 && self.vector_s.len() >= 4)
            .then(|| mann_whitney(&self.vector_s, &self.scalar_s).p_greater)
    }
}

/// Runs every filtered suite cell under **both** kernels, interleaving
/// the timed repetitions (and alternating which kernel goes first each
/// repetition) inside one process.
///
/// Pairing is what makes the ratio trustworthy on a noisy machine: both
/// kernels sample the same load/frequency environment seconds apart, so
/// drift that systematically biases two separate [`run_suite`]
/// invocations minutes apart cancels out of the per-cell comparison.
/// `opts.kernel` is ignored — both kernels always run.
pub fn run_ab(opts: &SuiteOpts) -> Vec<AbCell> {
    let template: Template = NamedTemplate::U5_2.template();
    let mut graphs: Vec<(Scale, Graph)> = Vec::new();
    let mut out = Vec::new();
    for spec in default_suite(opts.smoke) {
        if let Some(f) = &opts.filter {
            if !spec.id.contains(f.as_str()) {
                continue;
            }
        }
        let g = match graphs.iter().find(|(s, _)| *s == spec.scale) {
            Some((_, g)) => g,
            None => {
                graphs.push((spec.scale, spec.scale.graph()));
                &graphs.last().unwrap().1
            }
        };
        let cfg_for = |kernel: KernelKind| CountConfig {
            iterations: spec.scale.iterations(),
            table: spec.table,
            kernel,
            parallel: spec.mode,
            seed: 0x00FA_5C1A,
            fault: FaultInjection {
                sleep_in_dp: opts.handicap,
                ..FaultInjection::default()
            },
            ..CountConfig::default()
        };
        let cfgs = [cfg_for(KernelKind::Scalar), cfg_for(KernelKind::Vectorized)];
        for cfg in &cfgs {
            for _ in 0..opts.warmup {
                let _ = count_template(g, &template, cfg).expect("suite workload must count");
            }
        }
        let mut cell = AbCell {
            id: spec.id.clone(),
            scalar_s: Vec::with_capacity(opts.reps.max(1)),
            vector_s: Vec::with_capacity(opts.reps.max(1)),
            scalar_peak_bytes: 0,
            vector_peak_bytes: 0,
        };
        for rep in 0..opts.reps.max(1) {
            // Alternate which kernel goes first so monotone drift within
            // the cell (thermal ramp, background load) biases neither side.
            let order: [usize; 2] = if rep % 2 == 0 { [0, 1] } else { [1, 0] };
            for k in order {
                let start = Instant::now();
                let r = count_template(g, &template, &cfgs[k]).expect("suite workload must count");
                let secs = start.elapsed().as_secs_f64();
                // Keep the estimate alive so the count cannot be optimized out.
                assert!(r.estimate.is_finite());
                if k == 0 {
                    cell.scalar_peak_bytes = cell.scalar_peak_bytes.max(r.peak_table_bytes as u64);
                    cell.scalar_s.push(secs);
                } else {
                    cell.vector_peak_bytes = cell.vector_peak_bytes.max(r.peak_table_bytes as u64);
                    cell.vector_s.push(secs);
                }
            }
        }
        if opts.verbose {
            eprintln!(
                "[perf] {:<36} scalar {:>9.3} ms  vectorized {:>9.3} ms  {:>5.2}x",
                cell.id,
                median(&cell.scalar_s) * 1e3,
                median(&cell.vector_s) * 1e3,
                cell.speedup()
            );
        }
        out.push(cell);
    }
    out
}

/// Projects [`run_ab`] cells into two comparable perf documents —
/// `(scalar, vectorized)` with identical benchmark ids — so one paired
/// run also yields `compare`/`speedup`-compatible, archivable documents.
pub fn ab_docs(cells: &[AbCell], warmup: u64) -> (PerfDoc, PerfDoc) {
    let mut scalar = PerfDoc::new_now();
    let mut vector = PerfDoc::new_now();
    for c in cells {
        scalar.benchmarks.insert(
            c.id.clone(),
            PerfRecord {
                warmup,
                threshold: DEFAULT_THRESHOLD,
                peak_table_bytes: c.scalar_peak_bytes,
                reps_s: c.scalar_s.clone(),
            },
        );
        vector.benchmarks.insert(
            c.id.clone(),
            PerfRecord {
                warmup,
                threshold: DEFAULT_THRESHOLD,
                peak_table_bytes: c.vector_peak_bytes,
                reps_s: c.vector_s.clone(),
            },
        );
    }
    (scalar, vector)
}

/// Renders an A/B report as an aligned table. When `min` is set, cells
/// with a median speedup below it are flagged `BELOW MIN` (ratio-only,
/// like `perf speedup`); the p column reports the Mann–Whitney evidence
/// that the vectorized kernel is genuinely faster when reps allow.
pub fn render_ab(cells: &[AbCell], min: Option<f64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>12} {:>9} {:>10}",
        "benchmark", "scalar_ms", "vector_ms", "speedup", "p_faster"
    );
    for c in cells {
        let p = c
            .p_faster()
            .map_or_else(|| "-".to_string(), |p| format!("{p:.4}"));
        let verdict = match min {
            Some(m) if c.speedup() < m => "BELOW MIN",
            Some(_) => "ok",
            None => "",
        };
        let _ = writeln!(
            out,
            "{:<36} {:>12.3} {:>12.3} {:>8.2}x {:>10}  {}",
            c.id,
            median(&c.scalar_s) * 1e3,
            median(&c.vector_s) * 1e3,
            c.speedup(),
            p,
            verdict
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn ab_cell_statistics() {
        let cell = AbCell {
            id: "count/serial/naive/small".into(),
            scalar_s: vec![0.020, 0.021, 0.019, 0.022, 0.020],
            vector_s: vec![0.010, 0.011, 0.010, 0.009, 0.010],
            scalar_peak_bytes: 100,
            vector_peak_bytes: 90,
        };
        assert!((cell.speedup() - 2.0).abs() < 1e-9);
        // Every scalar rep exceeds every vectorized rep: strong evidence.
        assert!(cell.p_faster().expect("5 reps are testable") < 0.05);
        let (s, v) = ab_docs(std::slice::from_ref(&cell), 1);
        assert_eq!(s.benchmarks.len(), 1);
        assert_eq!(
            s.benchmarks[&cell.id].reps_s, cell.scalar_s,
            "scalar doc carries the scalar reps"
        );
        assert_eq!(v.benchmarks[&cell.id].peak_table_bytes, 90);
        let table = render_ab(std::slice::from_ref(&cell), Some(2.5));
        assert!(table.contains("BELOW MIN"), "{table}");
        let table = render_ab(&[cell], Some(1.5));
        assert!(table.contains(" ok"), "{table}");
    }

    #[test]
    fn ab_small_samples_are_untestable() {
        let cell = AbCell {
            id: "x".into(),
            scalar_s: vec![0.02],
            vector_s: vec![0.01],
            scalar_peak_bytes: 0,
            vector_peak_bytes: 0,
        };
        assert_eq!(cell.p_faster(), None);
        assert!((cell.speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn iso_dates_are_civil() {
        assert_eq!(iso_date_utc(0), "1970-01-01");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(
            iso_date_utc(1_786_320_000_000),
            iso_date_utc(1_786_320_000_000)
        );
        assert_eq!(iso_date_utc(86_400_000), "1970-01-02");
        // Leap day: 2024-02-29 12:00 UTC = 1709208000000.
        assert_eq!(iso_date_utc(1_709_208_000_000), "2024-02-29");
    }
}
