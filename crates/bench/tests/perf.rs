//! Integration tests of the `fascia-perf` harness: the Mann–Whitney gate
//! against hand-computed null distributions, schema round-trips, a golden
//! file pinning the `fascia-perf/1` serialization, the compare verdict
//! rules, and an end-to-end run of the (filtered) pinned suite including
//! the injected-regression check the gate exists for.

use fascia_bench::perf::{
    any_regression, compare, mad, mann_whitney, median, render_comparisons, run_suite, PerfDoc,
    PerfRecord, SuiteOpts, Verdict, DEFAULT_THRESHOLD,
};
use std::collections::BTreeMap;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mann–Whitney against hand-computed values
// ---------------------------------------------------------------------------

/// Fully separated samples: every `new` beats every `old`, so `U = 9`,
/// and exactly one of the `C(6,3) = 20` label arrangements reaches it:
/// `p = 1/20 = 0.05` exactly.
#[test]
fn mwu_separated_samples_exact() {
    let r = mann_whitney(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
    assert_eq!(r.u, 9.0);
    assert!((r.p_greater - 0.05).abs() < 1e-12, "p = {}", r.p_greater);
}

/// Interleaved samples land on the null mean `U = nm/2 = 10`. The exact
/// tail is the sum of the Gaussian-binomial counts for `u ≥ 10`
/// (7+5+5+3+2+1+1 = 24 of the C(8,4) = 70 arrangements): `p = 24/70`.
#[test]
fn mwu_interleaved_samples_exact() {
    let r = mann_whitney(&[1.0, 3.0, 5.0, 7.0], &[2.0, 4.0, 6.0, 8.0]);
    assert_eq!(r.u, 10.0);
    assert!(
        (r.p_greater - 24.0 / 70.0).abs() < 1e-12,
        "p = {}",
        r.p_greater
    );
}

/// A cross-sample tie credits 0.5 to U and forces the tie-corrected
/// normal path: `U = 1 + 0.5 + 2 = 3.5` here.
#[test]
fn mwu_ties_use_half_credit() {
    let r = mann_whitney(&[1.0, 2.0], &[2.0, 3.0]);
    assert_eq!(r.u, 3.5);
    assert!(
        r.p_greater > 0.0 && r.p_greater < 0.5,
        "p = {}",
        r.p_greater
    );
}

/// With the samples swapped, `U = 0` and `P(U ≥ 0)` is certain.
#[test]
fn mwu_reversed_direction_is_not_significant() {
    let r = mann_whitney(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]);
    assert_eq!(r.u, 0.0);
    assert!((r.p_greater - 1.0).abs() < 1e-12);
}

#[test]
fn mwu_empty_samples_are_inconclusive() {
    assert_eq!(mann_whitney(&[], &[1.0]).p_greater, 1.0);
    assert_eq!(mann_whitney(&[1.0], &[]).p_greater, 1.0);
}

/// All pooled values identical: zero variance, no evidence either way.
#[test]
fn mwu_constant_samples_are_inconclusive() {
    let r = mann_whitney(&[2.0, 2.0, 2.0], &[2.0, 2.0, 2.0]);
    assert_eq!(r.p_greater, 1.0);
}

// ---------------------------------------------------------------------------
// Document round-trip, JSONL merge, and the golden file
// ---------------------------------------------------------------------------

fn sample_doc() -> PerfDoc {
    let mut benchmarks = BTreeMap::new();
    benchmarks.insert(
        "count/serial/improved/small".to_string(),
        PerfRecord {
            warmup: 1,
            threshold: 1.3,
            peak_table_bytes: 1_048_576,
            reps_s: vec![0.25, 0.5, 1.0],
        },
    );
    benchmarks.insert(
        "count/outer/hash/large".to_string(),
        PerfRecord {
            warmup: 2,
            threshold: 1.5,
            peak_table_bytes: 2_048,
            reps_s: vec![0.125],
        },
    );
    PerfDoc {
        created_unix_ms: 1_754_460_000_000,
        threads: 8,
        cpu_model: Some("Example CPU @ 3.00GHz".to_string()),
        kernel: Some("6.0.0-example".to_string()),
        git_sha: Some("0123456789abcdef".to_string()),
        benchmarks,
    }
}

#[test]
fn document_round_trips_through_json() {
    let doc = sample_doc();
    let parsed = PerfDoc::parse(&doc.to_json()).unwrap();
    assert_eq!(parsed, doc);
    // Derived statistics come back identical because they are recomputed
    // from reps_s, never trusted from the file.
    let rec = &parsed.benchmarks["count/serial/improved/small"];
    assert_eq!(rec.median_s(), 0.5);
    assert_eq!(rec.mad_s(), 0.25);
}

#[test]
fn parse_merges_jsonl_streams_and_defaults_missing_fields() {
    // A full document followed by two criterion-shim style lines (no
    // created/threads/threshold): the shim records pick up the default
    // threshold, and later lines win on benchmark-name collisions.
    let text = format!(
        "{}\n{}\n{}\n",
        sample_doc().to_json(),
        r#"{"schema":"fascia-perf/1","benchmarks":{"engine_trace_overhead/absent":{"warmup":1,"reps_s":[0.001,0.002]}}}"#,
        r#"{"schema":"fascia-perf/1","benchmarks":{"count/outer/hash/large":{"warmup":9,"reps_s":[0.5]}}}"#,
    );
    let doc = PerfDoc::parse(&text).unwrap();
    assert_eq!(doc.created_unix_ms, 1_754_460_000_000);
    assert_eq!(doc.threads, 8);
    assert_eq!(doc.benchmarks.len(), 3);
    let shim = &doc.benchmarks["engine_trace_overhead/absent"];
    assert_eq!(shim.threshold, DEFAULT_THRESHOLD);
    assert_eq!(shim.reps_s, vec![0.001, 0.002]);
    // Pre-memory-axis producers parse with the additive default.
    assert_eq!(shim.peak_table_bytes, 0);
    // Shim lines carry no provenance; the full document's survives the merge.
    assert_eq!(doc.cpu_model.as_deref(), Some("Example CPU @ 3.00GHz"));
    assert_eq!(doc.git_sha.as_deref(), Some("0123456789abcdef"));
    // The later line replaced the earlier record wholesale.
    assert_eq!(doc.benchmarks["count/outer/hash/large"].warmup, 9);
}

#[test]
fn parse_rejects_bad_documents() {
    assert!(PerfDoc::parse("").is_err());
    assert!(PerfDoc::parse("not json").is_err());
    assert!(PerfDoc::parse(r#"{"schema":"fascia-perf/2","benchmarks":{}}"#).is_err());
    // Zero reps would make every statistic meaningless.
    let err = PerfDoc::parse(r#"{"schema":"fascia-perf/1","benchmarks":{"b":{"reps_s":[]}}}"#)
        .unwrap_err();
    assert!(err.contains("zero reps"), "got: {err}");
    // Line numbers point at the offending line of a stream.
    let text = format!("{}\nnonsense\n", sample_doc().to_json());
    let err = PerfDoc::parse(&text).unwrap_err();
    assert!(err.starts_with("line 2:"), "got: {err}");
}

/// Pins the exact `fascia-perf/1` serialization. The schema is a
/// compatibility surface (CI baselines are checked-in files), so drift
/// must be deliberate: re-bless with
/// `BLESS=1 cargo test -p fascia-bench --test perf`.
#[test]
fn serialization_matches_golden_file() {
    let rendered = format!("{}\n", sample_doc().to_json());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/perf.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "fascia-perf/1 serialization drifted from the golden file; \
         if intentional, re-bless with BLESS=1"
    );
}

// ---------------------------------------------------------------------------
// Compare verdict rules
// ---------------------------------------------------------------------------

fn doc_of(entries: &[(&str, &[f64])]) -> PerfDoc {
    let mut benchmarks = BTreeMap::new();
    for (name, reps) in entries {
        benchmarks.insert(
            name.to_string(),
            PerfRecord {
                warmup: 0,
                threshold: DEFAULT_THRESHOLD,
                reps_s: reps.to_vec(),
                ..PerfRecord::default()
            },
        );
    }
    PerfDoc {
        created_unix_ms: 0,
        threads: 1,
        benchmarks,
        ..PerfDoc::default()
    }
}

const OLD_REPS: [f64; 7] = [0.100, 0.101, 0.102, 0.103, 0.104, 0.105, 0.106];

#[test]
fn compare_identical_documents_is_all_similar() {
    let doc = doc_of(&[("a", &OLD_REPS), ("b", &[0.5])]);
    let rows = compare(&doc, &doc, None, 0.01);
    assert!(
        rows.iter().all(|r| r.verdict == Verdict::Similar),
        "{rows:?}"
    );
    assert!(!any_regression(&rows));
}

#[test]
fn compare_flags_significant_slowdown() {
    let old = doc_of(&[("a", &OLD_REPS)]);
    let slow: Vec<f64> = OLD_REPS.iter().map(|x| x * 2.5).collect();
    let new = doc_of(&[("a", &slow)]);
    let rows = compare(&old, &new, None, 0.01);
    assert_eq!(rows[0].verdict, Verdict::Regressed);
    // Complete separation of 7-vs-7 samples: p = 1/C(14,7) = 1/3432.
    let p = rows[0].p_greater.unwrap();
    assert!((p - 1.0 / 3432.0).abs() < 1e-12, "p = {p}");
    assert!(any_regression(&rows));
    assert!(render_comparisons(&rows).contains("REGRESSED"));
}

/// A significant but tiny slowdown stays below the ratio threshold:
/// significance alone must not fail the gate.
#[test]
fn compare_tolerates_small_significant_shifts() {
    let old = doc_of(&[("a", &OLD_REPS)]);
    let slight: Vec<f64> = OLD_REPS.iter().map(|x| x * 1.05).collect();
    let new = doc_of(&[("a", &slight)]);
    let rows = compare(&old, &new, None, 0.01);
    assert_eq!(rows[0].verdict, Verdict::Similar, "{rows:?}");
}

/// A big ratio without significance (noisy overlapping samples) also
/// stays Similar — the two conditions are conjunctive.
#[test]
fn compare_requires_significance_for_large_samples() {
    let old = doc_of(&[("a", &[0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 5.0])]);
    let new = doc_of(&[("a", &[0.1, 0.1, 0.1, 0.1, 0.1, 5.0, 5.0])]);
    let rows = compare(&old, &new, None, 0.01);
    assert!(rows[0].ratio > DEFAULT_THRESHOLD || rows[0].verdict == Verdict::Similar);
    assert_eq!(rows[0].verdict, Verdict::Similar, "{rows:?}");
}

/// Fewer than 4 reps on either side (the 1-rep CI smoke) falls back to
/// the ratio-only rule with no p-value.
#[test]
fn compare_small_samples_use_ratio_only() {
    let old = doc_of(&[("a", &[0.1]), ("b", &[0.1])]);
    let new = doc_of(&[("a", &[0.25]), ("b", &[0.11])]);
    let rows = compare(&old, &new, None, 0.01);
    let a = rows.iter().find(|r| r.name == "a").unwrap();
    let b = rows.iter().find(|r| r.name == "b").unwrap();
    assert_eq!(a.verdict, Verdict::Regressed);
    assert_eq!(a.p_greater, None);
    assert_eq!(b.verdict, Verdict::Similar);
    // The rendered table exposes the fallback: per-cell rep counts and
    // MAD columns show 1-rep cells whose `p` is `-` (ratio-only verdict).
    assert_eq!((a.old_n, a.new_n), (1, 1));
    assert_eq!((a.old_mad_s, a.new_mad_s), (0.0, 0.0));
    let table = render_comparisons(&rows);
    let header = table.lines().next().unwrap();
    for col in ["old_n", "new_n", "old_mad", "new_mad"] {
        assert!(header.contains(col), "missing {col} in {header:?}");
    }
    let row_a = table.lines().find(|l| l.starts_with("a ")).unwrap();
    assert!(row_a.contains(" 1 "), "rep count visible in {row_a:?}");
    assert!(row_a.ends_with("REGRESSED"));
}

#[test]
fn compare_detects_improvement_additions_and_removals() {
    let fast: Vec<f64> = OLD_REPS.iter().map(|x| x * 0.4).collect();
    let old = doc_of(&[("kept", &OLD_REPS), ("gone", &[0.5])]);
    let mut new = doc_of(&[("kept", &fast), ("fresh", &[0.5])]);
    new.benchmarks.get_mut("kept").unwrap().threshold = 1.3;
    let rows = compare(&old, &new, None, 0.01);
    let verdict = |name: &str| rows.iter().find(|r| r.name == name).unwrap().verdict;
    assert_eq!(verdict("kept"), Verdict::Improved);
    assert_eq!(verdict("gone"), Verdict::Removed);
    assert_eq!(verdict("fresh"), Verdict::Added);
    assert!(!any_regression(&rows));
}

#[test]
fn compare_threshold_override_wins() {
    let old = doc_of(&[("a", &OLD_REPS)]);
    let slow: Vec<f64> = OLD_REPS.iter().map(|x| x * 2.5).collect();
    let new = doc_of(&[("a", &slow)]);
    let rows = compare(&old, &new, Some(3.0), 0.01);
    assert_eq!(rows[0].verdict, Verdict::Similar, "{rows:?}");
}

// ---------------------------------------------------------------------------
// End-to-end: the pinned suite and the injected-regression check
// ---------------------------------------------------------------------------

fn quick_opts() -> SuiteOpts {
    SuiteOpts {
        reps: 5,
        warmup: 1,
        smoke: true,
        filter: Some("improved".to_string()),
        ..SuiteOpts::default()
    }
}

/// Two identically-configured runs of the (filtered) smoke suite must
/// compare clean, and the emitted document must survive its own
/// serialization.
#[test]
fn suite_self_comparison_is_clean() {
    let a = run_suite(&quick_opts());
    let b = run_suite(&quick_opts());
    assert_eq!(a.benchmarks.len(), 1, "filter should keep exactly one spec");
    let rec = &a.benchmarks["count/serial/improved/small"];
    assert_eq!(rec.reps_s.len(), 5);
    assert!(rec.median_s() > 0.0);
    assert!(median(&rec.reps_s) >= mad(&rec.reps_s));
    // The memory axis rides along: a real counting run builds tables.
    assert!(rec.peak_table_bytes > 0, "suite must measure table memory");
    let rows = compare(&a, &b, None, 0.01);
    assert!(
        !any_regression(&rows),
        "identical configs compared dirty: {}",
        render_comparisons(&rows)
    );
    let round = PerfDoc::parse(&a.to_json()).unwrap();
    assert_eq!(round, a);
}

/// The reason the handicap hook exists: a synthetic sleep injected into
/// every DP step must be caught by the gate as a significant regression.
#[test]
fn injected_sleep_is_flagged_as_regression() {
    let base = run_suite(&quick_opts());
    let rec = &base.benchmarks["count/serial/improved/small"];
    // Scale the sleep to the machine: each rep executes ≥ 4 DP steps
    // (4 iterations × ≥ 1 subtemplate node), so sleeping a quarter of
    // the base median per step at least doubles the rep time — far past
    // the 1.3× threshold regardless of absolute speed.
    let sleep_ms = (rec.median_s() * 1e3 / 4.0).clamp(2.0, 250.0);
    let slow = run_suite(&SuiteOpts {
        handicap: Some(Duration::from_millis(sleep_ms as u64)),
        ..quick_opts()
    });
    let rows = compare(&base, &slow, None, 0.05);
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows[0].verdict,
        Verdict::Regressed,
        "sleep {sleep_ms} ms/step not flagged: {}",
        render_comparisons(&rows)
    );
    assert!(rows[0].ratio > DEFAULT_THRESHOLD);
    assert!(rows[0].p_greater.unwrap() < 0.05);
}
