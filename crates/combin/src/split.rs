//! Precomputed color-set split tables.
//!
//! For a subtemplate of size `h` with an active child of size `a` (and
//! passive child of size `h - a`), the dynamic program enumerates, for every
//! color set `C`, all `C(h, a)` ways of distributing `C`'s colors onto the
//! two children. [`SplitTable`] materializes the CNS index pairs
//! `(index(Ca), index(Cp))` for every color set, so the innermost loop is a
//! linear scan over a flat array — the paper's replacement of "explicit
//! computation of these indexes with memory lookups".

use crate::binomial::BinomialTable;
use crate::colorset::{index_of_set, ColorSetIter};

/// One split: CNS indices of the active and passive color subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPair {
    /// Index of the active child's color set (size `a`, universe `0..k`).
    pub active: u32,
    /// Index of the passive child's color set (size `h - a`).
    pub passive: u32,
}

/// All splits of every `h`-subset of `0..k` into (active `a`, passive `h-a`).
///
/// ```
/// use fascia_combin::{BinomialTable, SplitTable};
/// let binom = BinomialTable::default();
/// let t = SplitTable::new(5, 3, 1, &binom);
/// assert_eq!(t.num_sets(), 10);       // C(5, 3)
/// assert_eq!(t.splits_per_set(), 3);  // C(3, 1)
/// ```
#[derive(Debug, Clone)]
pub struct SplitTable {
    k: usize,
    h: usize,
    a: usize,
    num_sets: usize,
    splits_per_set: usize,
    pairs: Vec<SplitPair>,
}

impl SplitTable {
    /// Builds the table. Cost is `C(k, h) * C(h, a)` index computations,
    /// done once per subtemplate per run (a few megabytes at `k = 12`).
    ///
    /// # Panics
    /// Panics if `a == 0`, `a >= h`, or `h > k`.
    pub fn new(k: usize, h: usize, a: usize, binom: &BinomialTable) -> Self {
        assert!(h <= k, "subtemplate larger than color universe");
        assert!(a > 0 && a < h, "active child size must split h properly");
        let num_sets = binom.get(k, h) as usize;
        let splits_per_set = binom.get(h, a) as usize;
        let mut pairs = Vec::with_capacity(num_sets * splits_per_set);

        // Precompute the position subsets once: which of the h positions of
        // the sorted color set go to the active child.
        let position_choices = ColorSetIter::new(h, a).collect_all();
        debug_assert_eq!(position_choices.len(), splits_per_set);

        let mut sets = ColorSetIter::new(k, h);
        let mut ca = vec![0u8; a];
        let mut cp = vec![0u8; h - a];
        while let Some(set) = sets.next() {
            for positions in &position_choices {
                let mut ai = 0;
                let mut pi = 0;
                let mut pos_iter = positions.iter().peekable();
                for (idx, &color) in set.iter().enumerate() {
                    if pos_iter.peek() == Some(&&(idx as u8)) {
                        pos_iter.next();
                        ca[ai] = color;
                        ai += 1;
                    } else {
                        cp[pi] = color;
                        pi += 1;
                    }
                }
                debug_assert_eq!(ai, a);
                pairs.push(SplitPair {
                    active: index_of_set(&ca, binom) as u32,
                    passive: index_of_set(&cp, binom) as u32,
                });
            }
        }
        Self {
            k,
            h,
            a,
            num_sets,
            splits_per_set,
            pairs,
        }
    }

    /// Splits of the color set with CNS index `set_idx`.
    #[inline]
    pub fn splits(&self, set_idx: usize) -> &[SplitPair] {
        let start = set_idx * self.splits_per_set;
        &self.pairs[start..start + self.splits_per_set]
    }

    /// Number of `h`-subsets covered (`C(k, h)`).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of splits per set (`C(h, a)`).
    #[inline]
    pub fn splits_per_set(&self) -> usize {
        self.splits_per_set
    }

    /// `(k, h, a)` parameters this table was built for.
    pub fn params(&self) -> (usize, usize, usize) {
        (self.k, self.h, self.a)
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.pairs.capacity() * std::mem::size_of::<SplitPair>()
    }
}

/// The position-major transpose of a [`SplitTable`], laid out for the
/// vectorized DP kernel.
///
/// [`SplitTable`] is *colorset-major*: the `C(h, a)` split pairs of one
/// color set are contiguous, so the scalar inner loop walks one set's
/// splits at a time. The vectorized combine interchanges those loops — for
/// each of the `C(h, a)` *position choices* `j` it sweeps **all** color
/// sets at once:
///
/// ```text
/// for j in 0..splits_per_set:
///     row[i] += act[active_idx[j][i]] * pas[passive_idx[j][i]]   for all i
/// ```
///
/// The inner sweep writes `row` sequentially and reads two flat `u32`
/// index lanes sequentially, which is the shape compilers autovectorize.
/// Because lane `j` of set `i` holds exactly the `j`-th entry of
/// `SplitTable::splits(i)`, the per-slot multiply-accumulate order is
/// identical to the scalar walk — the bitwise-equality contract of
/// DESIGN.md §15 rests on this.
///
/// ```
/// use fascia_combin::{BinomialTable, PositionSplitTable, SplitTable};
/// let binom = BinomialTable::default();
/// let split = SplitTable::new(5, 3, 1, &binom);
/// let pos = PositionSplitTable::new(&split);
/// assert_eq!(pos.splits_per_set(), 3); // C(3, 1) lanes
/// let (ai, pi) = pos.lane(0);
/// assert_eq!(ai.len(), split.num_sets()); // one entry per color set
/// assert_eq!(ai[4], split.splits(4)[0].active);
/// assert_eq!(pi[4], split.splits(4)[0].passive);
/// ```
#[derive(Debug, Clone)]
pub struct PositionSplitTable {
    num_sets: usize,
    splits_per_set: usize,
    /// `active_idx[j * num_sets + i]` = active CNS index of split `j` of
    /// color set `i`.
    active_idx: Vec<u32>,
    /// Same layout for the passive CNS indices.
    passive_idx: Vec<u32>,
}

impl PositionSplitTable {
    /// Transposes `split` into position-major lanes. Cost is one linear
    /// pass over the pair array, done once per subtemplate per run.
    pub fn new(split: &SplitTable) -> Self {
        let num_sets = split.num_sets();
        let spc = split.splits_per_set();
        let mut active_idx = vec![0u32; num_sets * spc];
        let mut passive_idx = vec![0u32; num_sets * spc];
        for i in 0..num_sets {
            for (j, sp) in split.splits(i).iter().enumerate() {
                active_idx[j * num_sets + i] = sp.active;
                passive_idx[j * num_sets + i] = sp.passive;
            }
        }
        Self {
            num_sets,
            splits_per_set: spc,
            active_idx,
            passive_idx,
        }
    }

    /// The `(active, passive)` index lanes of position choice `j`: two
    /// `num_sets`-long slices, entry `i` belonging to color set `i`.
    #[inline]
    pub fn lane(&self, j: usize) -> (&[u32], &[u32]) {
        let start = j * self.num_sets;
        (
            &self.active_idx[start..start + self.num_sets],
            &self.passive_idx[start..start + self.num_sets],
        )
    }

    /// Number of `h`-subsets covered (`C(k, h)`).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of position-choice lanes (`C(h, a)`).
    #[inline]
    pub fn splits_per_set(&self) -> usize {
        self.splits_per_set
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        (self.active_idx.capacity() + self.passive_idx.capacity()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::choose;
    use crate::colorset::set_of_index;

    fn binom() -> BinomialTable {
        BinomialTable::default()
    }

    #[test]
    fn split_counts_match_binomials() {
        let b = binom();
        let t = SplitTable::new(7, 4, 2, &b);
        assert_eq!(t.num_sets() as u64, choose(7, 4));
        assert_eq!(t.splits_per_set() as u64, choose(4, 2));
        assert_eq!(t.params(), (7, 4, 2));
    }

    /// Every split must be a disjoint cover of the parent color set, and
    /// all C(h, a) distinct splits must appear exactly once.
    #[test]
    fn splits_partition_parent_exhaustive() {
        let b = binom();
        for k in 3..=8usize {
            for h in 2..=k {
                for a in 1..h {
                    let t = SplitTable::new(k, h, a, &b);
                    for set_idx in 0..t.num_sets() {
                        let parent = set_of_index(set_idx, h, k, &b);
                        let mut seen = std::collections::HashSet::new();
                        for sp in t.splits(set_idx) {
                            let ca = set_of_index(sp.active as usize, a, k, &b);
                            let cp = set_of_index(sp.passive as usize, h - a, k, &b);
                            let mut merged: Vec<u8> = ca.iter().chain(cp.iter()).copied().collect();
                            merged.sort_unstable();
                            assert_eq!(merged, parent, "k={k} h={h} a={a}");
                            assert!(seen.insert((sp.active, sp.passive)), "dup split");
                        }
                        assert_eq!(seen.len() as u64, choose(h, a));
                    }
                }
            }
        }
    }

    #[test]
    fn single_vertex_active_lists_each_color_once() {
        // a = 1: the active indices across splits of set C must be exactly
        // the CNS indices of each singleton color of C.
        let b = binom();
        let t = SplitTable::new(6, 3, 1, &b);
        for set_idx in 0..t.num_sets() {
            let parent = set_of_index(set_idx, 3, 6, &b);
            let mut actives: Vec<u32> = t.splits(set_idx).iter().map(|s| s.active).collect();
            actives.sort_unstable();
            let mut expect: Vec<u32> = parent
                .iter()
                .map(|&c| index_of_set(&[c], &b) as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(actives, expect);
        }
    }

    /// The transpose must agree entry-for-entry with the pair layout, in
    /// lane order — the order the vectorized MAC replays.
    #[test]
    fn position_major_transpose_is_exact() {
        let b = binom();
        for (k, h, a) in [(5, 3, 1), (7, 4, 2), (8, 6, 3), (10, 5, 2)] {
            let t = SplitTable::new(k, h, a, &b);
            let pos = PositionSplitTable::new(&t);
            assert_eq!(pos.num_sets(), t.num_sets());
            assert_eq!(pos.splits_per_set(), t.splits_per_set());
            assert!(pos.bytes() >= t.num_sets() * t.splits_per_set() * 8);
            for j in 0..pos.splits_per_set() {
                let (ai, pi) = pos.lane(j);
                for i in 0..t.num_sets() {
                    assert_eq!(ai[i], t.splits(i)[j].active, "k={k} h={h} a={a}");
                    assert_eq!(pi[i], t.splits(i)[j].passive, "k={k} h={h} a={a}");
                }
            }
        }
    }

    #[test]
    fn bytes_accounting_positive() {
        let b = binom();
        let t = SplitTable::new(12, 6, 3, &b);
        assert!(t.bytes() >= t.num_sets() * t.splits_per_set() * 8);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_split() {
        SplitTable::new(5, 3, 0, &binom());
    }

    #[test]
    #[should_panic]
    fn rejects_full_split() {
        SplitTable::new(5, 3, 3, &binom());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::colorset::set_of_index;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_split_is_disjoint_cover(
            k in 4usize..13,
            hseed in any::<u32>(),
            sseed in any::<u32>(),
        ) {
            let b = BinomialTable::default();
            let h = 2 + (hseed as usize) % (k - 1);
            let a = 1 + (sseed as usize) % (h - 1);
            let t = SplitTable::new(k, h, a, &b);
            let set_idx = (hseed as usize ^ sseed as usize) % t.num_sets();
            let parent = set_of_index(set_idx, h, k, &b);
            for sp in t.splits(set_idx) {
                let ca = set_of_index(sp.active as usize, a, k, &b);
                let cp = set_of_index(sp.passive as usize, h - a, k, &b);
                let mut merged: Vec<u8> = ca.iter().chain(cp.iter()).copied().collect();
                merged.sort_unstable();
                prop_assert_eq!(&merged, &parent);
            }
        }
    }
}
