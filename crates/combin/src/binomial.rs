//! Binomial coefficient tables.
//!
//! The counting engine needs `C(n, r)` for `n, r <= MAX_COLORS` in hot
//! paths (color-set ranking and table sizing). A dense Pascal-triangle
//! table turns those into single loads.

use crate::MAX_COLORS;

/// Dense table of binomial coefficients `C(n, r)` for `0 <= n, r <= max_n`.
#[derive(Debug, Clone)]
pub struct BinomialTable {
    max_n: usize,
    /// Row-major `(max_n + 1) x (max_n + 1)`; entry `[n][r]` is `C(n, r)`,
    /// zero when `r > n`.
    table: Vec<u64>,
}

impl BinomialTable {
    /// Builds the table for all `n <= max_n` via Pascal's rule.
    pub fn new(max_n: usize) -> Self {
        let w = max_n + 1;
        let mut table = vec![0u64; w * w];
        for n in 0..=max_n {
            table[n * w] = 1;
            for r in 1..=n {
                table[n * w + r] =
                    table[(n - 1) * w + r - 1] + if r < n { table[(n - 1) * w + r] } else { 0 };
            }
        }
        Self { max_n, table }
    }

    /// Largest `n` this table covers.
    #[inline]
    pub fn max_n(&self) -> usize {
        self.max_n
    }

    /// `C(n, r)`, zero when `r > n`.
    ///
    /// # Panics
    /// Panics if `n > self.max_n()`.
    #[inline]
    pub fn get(&self, n: usize, r: usize) -> u64 {
        debug_assert!(n <= self.max_n, "n={n} exceeds table max {}", self.max_n);
        if r > n {
            return 0;
        }
        self.table[n * (self.max_n + 1) + r]
    }
}

impl Default for BinomialTable {
    fn default() -> Self {
        Self::new(MAX_COLORS)
    }
}

/// Standalone binomial coefficient `C(n, r)` computed multiplicatively.
///
/// Suitable outside hot loops; exact for all values fitting `u64`
/// (comfortably covers `n <= 62`).
pub fn choose(n: usize, r: usize) -> u64 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u64 = 1;
    for i in 0..r {
        // Multiply then divide; the running product of i+1 consecutive
        // integers is always divisible by (i+1)!.
        acc = acc * (n - i) as u64 / (i as u64 + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_edge_cases() {
        assert_eq!(choose(0, 0), 1);
        assert_eq!(choose(5, 0), 1);
        assert_eq!(choose(5, 5), 1);
        assert_eq!(choose(5, 6), 0);
        assert_eq!(choose(3, 7), 0);
    }

    #[test]
    fn choose_known_values() {
        assert_eq!(choose(4, 2), 6);
        assert_eq!(choose(10, 3), 120);
        assert_eq!(choose(12, 6), 924);
        assert_eq!(choose(20, 10), 184_756);
        assert_eq!(choose(52, 5), 2_598_960);
    }

    #[test]
    fn table_matches_standalone() {
        let t = BinomialTable::new(MAX_COLORS);
        for n in 0..=MAX_COLORS {
            for r in 0..=MAX_COLORS {
                assert_eq!(t.get(n, r), choose(n, r), "C({n},{r})");
            }
        }
    }

    #[test]
    fn table_pascal_identity() {
        let t = BinomialTable::new(15);
        for n in 1..=15usize {
            for r in 1..n {
                assert_eq!(t.get(n, r), t.get(n - 1, r - 1) + t.get(n - 1, r));
            }
        }
    }

    #[test]
    fn table_rows_sum_to_powers_of_two() {
        let t = BinomialTable::new(16);
        for n in 0..=16usize {
            let sum: u64 = (0..=n).map(|r| t.get(n, r)).sum();
            assert_eq!(sum, 1u64 << n);
        }
    }

    #[test]
    fn default_covers_max_colors() {
        let t = BinomialTable::default();
        assert_eq!(t.max_n(), MAX_COLORS);
        assert_eq!(
            t.get(MAX_COLORS, MAX_COLORS / 2),
            choose(MAX_COLORS, MAX_COLORS / 2)
        );
    }
}
