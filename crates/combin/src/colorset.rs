//! Color-set ranking and unranking in the combinatorial number system.
//!
//! A color set is a strictly increasing slice of colors `c1 < c2 < ... < ch`
//! drawn from `0..k`. Its CNS index is
//! `I = C(c1, 1) + C(c2, 2) + ... + C(ch, h)`, which enumerates the
//! `C(k, h)` sets in colexicographic order starting at zero.

use crate::binomial::BinomialTable;

/// Ranks a strictly increasing color set into its CNS index.
///
/// # Panics
/// Debug-panics if `colors` is not strictly increasing or exceeds the table.
#[inline]
pub fn index_of_set(colors: &[u8], binom: &BinomialTable) -> usize {
    let mut idx = 0u64;
    let mut prev: i32 = -1;
    for (i, &c) in colors.iter().enumerate() {
        debug_assert!(
            (c as i32) > prev,
            "color set must be strictly increasing, got {colors:?}"
        );
        prev = c as i32;
        idx += binom.get(c as usize, i + 1);
    }
    idx as usize
}

/// Unranks CNS index `idx` into the `h` colors of the set (ascending).
///
/// Inverse of [`index_of_set`]; `k` bounds the color universe and is used
/// only to seed the search for the largest element.
pub fn set_of_index(idx: usize, h: usize, k: usize, binom: &BinomialTable) -> Vec<u8> {
    let mut out = vec![0u8; h];
    let mut rem = idx as u64;
    let mut hi = k; // exclusive upper bound for the next (largest) element
    for pos in (0..h).rev() {
        // Largest c < hi with C(c, pos+1) <= rem.
        let mut c = hi - 1;
        while binom.get(c, pos + 1) > rem {
            debug_assert!(c > 0, "unrank underflow: idx out of range");
            c -= 1;
        }
        out[pos] = c as u8;
        rem -= binom.get(c, pos + 1);
        hi = c;
    }
    debug_assert_eq!(rem, 0, "unrank left a remainder; idx out of range");
    out
}

/// Iterates all `h`-element subsets of `0..k` in colexicographic (= CNS
/// index) order, yielding each set as a slice without allocating per item.
pub struct ColorSetIter {
    current: Vec<u8>,
    k: u8,
    started: bool,
    done: bool,
}

impl ColorSetIter {
    /// Creates an iterator over `h`-subsets of `{0, .., k-1}`.
    ///
    /// Yields nothing when `h > k`; yields the single empty set when `h == 0`.
    pub fn new(k: usize, h: usize) -> Self {
        Self {
            current: (0..h as u8).collect(),
            k: k as u8,
            started: false,
            done: h > k,
        }
    }

    /// Advances to the next subset, returning it as a borrowed slice.
    ///
    /// This is a lending iterator (the slice borrows from `self`), so it
    /// does not implement `Iterator`; use `while let Some(set) = it.next()`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[u8]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.current);
        }
        let h = self.current.len();
        if h == 0 {
            self.done = true;
            return None;
        }
        // Colex successor: find the smallest position that can advance.
        let mut i = 0;
        loop {
            let limit = if i + 1 < h {
                self.current[i + 1]
            } else {
                self.k
            };
            if self.current[i] + 1 < limit {
                self.current[i] += 1;
                for (j, slot) in self.current.iter_mut().enumerate().take(i) {
                    *slot = j as u8;
                }
                return Some(&self.current);
            }
            i += 1;
            if i == h {
                self.done = true;
                return None;
            }
        }
    }

    /// Collects all subsets (test/debug convenience; allocates per set).
    pub fn collect_all(mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(s) = self.next() {
            out.push(s.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::choose;

    fn binom() -> BinomialTable {
        BinomialTable::default()
    }

    #[test]
    fn first_set_has_index_zero() {
        let b = binom();
        for h in 1..=8usize {
            let first: Vec<u8> = (0..h as u8).collect();
            assert_eq!(index_of_set(&first, &b), 0);
        }
    }

    #[test]
    fn last_set_has_max_index() {
        let b = binom();
        let k = 9usize;
        let h = 4usize;
        let last: Vec<u8> = ((k - h) as u8..k as u8).collect();
        assert_eq!(index_of_set(&last, &b) as u64, choose(k, h) - 1);
    }

    #[test]
    fn iterator_yields_in_index_order_and_complete() {
        let b = binom();
        for k in 0..=9usize {
            for h in 0..=k {
                let all = ColorSetIter::new(k, h).collect_all();
                assert_eq!(all.len() as u64, choose(k, h), "count for k={k} h={h}");
                for (i, set) in all.iter().enumerate() {
                    assert_eq!(index_of_set(set, &b), i, "rank of {set:?}");
                    // strictly increasing & in range
                    for w in set.windows(2) {
                        assert!(w[0] < w[1]);
                    }
                    if let Some(&mx) = set.last() {
                        assert!((mx as usize) < k);
                    }
                }
            }
        }
    }

    #[test]
    fn unrank_roundtrip_exhaustive_small() {
        let b = binom();
        for k in 1..=10usize {
            for h in 1..=k {
                for idx in 0..choose(k, h) as usize {
                    let set = set_of_index(idx, h, k, &b);
                    assert_eq!(index_of_set(&set, &b), idx);
                }
            }
        }
    }

    #[test]
    fn empty_set_iteration() {
        let all = ColorSetIter::new(5, 0).collect_all();
        assert_eq!(all, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn h_greater_than_k_yields_nothing() {
        assert!(ColorSetIter::new(3, 4).collect_all().is_empty());
    }

    #[test]
    fn paper_example_indices() {
        // For k = 4, h = 2 the colex order is
        // {0,1} {0,2} {1,2} {0,3} {1,3} {2,3}.
        let sets = ColorSetIter::new(4, 2).collect_all();
        let expect: Vec<Vec<u8>> = vec![
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 3],
            vec![1, 3],
            vec![2, 3],
        ];
        assert_eq!(sets, expect);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn rank_unrank_bijective(k in 1usize..16, seed in any::<u64>()) {
            let b = BinomialTable::default();
            let h = 1 + (seed as usize) % k;
            let total = crate::binomial::choose(k, h) as usize;
            let idx = (seed as usize).wrapping_mul(0x9E37_79B9) % total;
            let set = set_of_index(idx, h, k, &b);
            prop_assert_eq!(set.len(), h);
            prop_assert_eq!(index_of_set(&set, &b), idx);
        }

        #[test]
        fn index_is_order_isomorphic(k in 2usize..12) {
            // Colex comparison of sets agrees with index comparison.
            let b = BinomialTable::default();
            let h = k / 2 + 1;
            let all = ColorSetIter::new(k, h).collect_all();
            for pair in all.windows(2) {
                let (lo, hi) = (&pair[0], &pair[1]);
                prop_assert!(index_of_set(lo, &b) < index_of_set(hi, &b));
            }
        }
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;
    use crate::binomial::{choose, BinomialTable};
    use crate::MAX_COLORS;

    #[test]
    fn roundtrip_at_max_colors() {
        let b = BinomialTable::default();
        let k = MAX_COLORS;
        let h = k / 2;
        let total = choose(k, h) as usize;
        // Spot-check a spread of indices across the full range.
        for idx in [0, 1, total / 3, total / 2, total - 2, total - 1] {
            let set = set_of_index(idx, h, k, &b);
            assert_eq!(index_of_set(&set, &b), idx);
            assert_eq!(set.len(), h);
            assert!(set.iter().all(|&c| (c as usize) < k));
        }
    }

    #[test]
    fn full_set_is_last_index() {
        let b = BinomialTable::default();
        for k in 1..=12usize {
            let full: Vec<u8> = (0..k as u8).collect();
            assert_eq!(index_of_set(&full, &b), 0, "C(k,k) = 1, single index");
        }
    }

    #[test]
    fn iterator_count_at_max() {
        // C(20, 3) = 1140 — iterate and count without materializing.
        let mut it = ColorSetIter::new(MAX_COLORS, 3);
        let mut count = 0u64;
        while it.next().is_some() {
            count += 1;
        }
        assert_eq!(count, choose(MAX_COLORS, 3));
    }

    #[test]
    fn singleton_index_is_color_value() {
        // The engine relies on rank({c}) == c.
        let b = BinomialTable::default();
        for c in 0..MAX_COLORS as u8 {
            assert_eq!(index_of_set(&[c], &b), c as usize);
        }
    }
}
