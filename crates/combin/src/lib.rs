//! Combinatorial number system (CNS) machinery for FASCIA color coding.
//!
//! The FASCIA paper (§III-B) represents a *color set* — an `h`-element subset
//! of the `k` available colors — as a single integer index computed with the
//! combinatorial number system:
//!
//! ```text
//! I = C(c1, 1) + C(c2, 2) + ... + C(ch, h)      with c1 < c2 < ... < ch
//! ```
//!
//! This ranks the `C(k, h)` color sets `0..C(k,h)` in colexicographic order,
//! which lets the dynamic-programming tables use plain arrays indexed by `I`
//! instead of hashing explicit color lists.
//!
//! The innermost loops of the counting algorithm repeatedly *split* a color
//! set `C` of size `h` into an active part `Ca` of size `a` and a passive
//! part `Cp = C \ Ca` of size `h - a`. [`SplitTable`] precomputes, for every
//! color-set index, the index pairs of all `C(h, a)` splits, replacing index
//! arithmetic in the hot loop with sequential memory reads — the paper
//! reports this as a considerable constant-factor win.
//!
//! # Worked example: indexing and splitting with k = 4 colors
//!
//! Take `k = 4` colors `{0, 1, 2, 3}` and color sets of size `h = 2`. There
//! are `C(4, 2) = 6` such sets; colexicographic CNS order ranks them
//! `{0,1} < {0,2} < {1,2} < {0,3} < {1,3} < {2,3}`. The set `{1, 3}` gets
//! index `C(1, 1) + C(3, 2) = 1 + 3 = 4`:
//!
//! ```
//! use fascia_combin::{choose, index_of_set, set_of_index, BinomialTable, SplitTable};
//!
//! let binom = BinomialTable::default();
//! assert_eq!(choose(4, 2), 6);
//! assert_eq!(index_of_set(&[1, 3], &binom), 4);
//! assert_eq!(set_of_index(4, 2, 4, &binom), vec![1, 3]);
//!
//! // The DP splits each 2-color set into an active 1-color part and its
//! // 1-color complement. A SplitTable precomputes all C(2, 1) = 2 splits
//! // for every one of the 6 sets, as (active, passive) index pairs.
//! let table = SplitTable::new(4, 2, 1, &binom);
//! let splits: Vec<(u32, u32)> = table
//!     .splits(4)
//!     .iter()
//!     .map(|p| (p.active, p.passive))
//!     .collect();
//! // {1,3} splits into ({1}, {3}) and ({3}, {1}); singleton {c} has
//! // index C(c, 1) = c, so the pairs are (1, 3) and (3, 1).
//! assert_eq!(splits, vec![(1, 3), (3, 1)]);
//! ```
//!
//! In the counting engine the active index addresses a child-template table
//! row and the passive index the other child's row, so one sequential scan
//! of `table.splits(i)` replaces `C(h, a)` subset enumerations per graph
//! vertex per iteration.

#![warn(missing_docs)]

pub mod binomial;
pub mod colorset;
pub mod split;

pub use binomial::{choose, BinomialTable};
pub use colorset::{index_of_set, set_of_index, ColorSetIter};
pub use split::{PositionSplitTable, SplitTable};

/// Maximum number of colors supported by the precomputed machinery.
///
/// The paper evaluates templates up to 12 vertices; we leave headroom.
pub const MAX_COLORS: usize = 20;

/// Probability that a fixed `h`-vertex subgraph is *colorful* (all vertices
/// receive distinct colors) under a uniformly random coloring with `k >= h`
/// colors: `C(k, h) * h! / k^h`.
///
/// For `k == h` this is the familiar `k! / k^k` from the paper.
///
/// # Panics
/// Panics if `h > k` or `k == 0`.
pub fn colorful_probability(k: usize, h: usize) -> f64 {
    assert!(k >= h, "need at least as many colors as template vertices");
    assert!(k > 0, "k must be positive");
    // Compute as a product of h factors (k - i) / k to stay in f64 range.
    let mut p = 1.0_f64;
    for i in 0..h {
        p *= (k - i) as f64 / k as f64;
    }
    p
}

/// Number of color-coding iterations required by the theoretical bound of
/// Alon–Yuster–Zwick for relative error `epsilon` with confidence
/// `1 - 2*delta` on a `k`-vertex template: `ceil(e^k * ln(1/delta) / eps^2)`.
///
/// The paper (Alg. 1, and §V-D empirically) notes that far fewer iterations
/// suffice in practice; this function exists so callers can relate an
/// iteration budget to the worst-case guarantee.
///
/// # Panics
/// Panics unless `0 < epsilon`, `0 < delta < 1`.
pub fn iterations_for(epsilon: f64, delta: f64, k: usize) -> u64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let raw = (k as f64).exp() * (1.0 / delta).ln() / (epsilon * epsilon);
    raw.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colorful_probability_matches_closed_form() {
        // k = h: k!/k^k
        let k = 5;
        let fact: f64 = (1..=k).product::<usize>() as f64;
        let expect = fact / (k as f64).powi(k as i32);
        assert!((colorful_probability(k, k) - expect).abs() < 1e-12);
    }

    #[test]
    fn colorful_probability_single_vertex_is_one() {
        for k in 1..=12 {
            assert_eq!(colorful_probability(k, 1), 1.0);
        }
    }

    #[test]
    fn colorful_probability_more_colors_is_larger() {
        // Giving extra colors makes colorfulness more likely.
        let h = 7;
        let p_eq = colorful_probability(h, h);
        let p_more = colorful_probability(h + 2, h);
        assert!(p_more > p_eq);
        assert!(p_more < 1.0);
    }

    #[test]
    fn colorful_probability_known_value_k3() {
        // 3!/3^3 = 6/27
        assert!((colorful_probability(3, 3) - 6.0 / 27.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn colorful_probability_rejects_h_gt_k() {
        colorful_probability(3, 4);
    }

    #[test]
    fn iterations_bound_monotone_in_k() {
        let a = iterations_for(0.1, 0.05, 3);
        let b = iterations_for(0.1, 0.05, 5);
        assert!(b > a);
    }

    #[test]
    fn iterations_bound_monotone_in_eps() {
        let loose = iterations_for(0.5, 0.05, 5);
        let tight = iterations_for(0.05, 0.05, 5);
        assert!(tight > loose);
    }

    #[test]
    fn iterations_bound_small_case() {
        // e^1 * ln(1/0.5) / 1 = e * ln 2 ~ 1.884 -> 2
        assert_eq!(iterations_for(1.0, 0.5, 1), 2);
    }
}
