//! The improved lazily-materialized table, stored as a row arena.
//!
//! "We only initialize storage for a given vertex v if that vertex has a
//! value stored in it for any color set" (§III-C). Inactive vertices cost
//! one 4-byte slot; the activity check is a sentinel test. On the Portland
//! network with unlabeled templates the paper reports ~20% peak-memory
//! savings, and >90% with labels, purely from this row laziness.
//!
//! # Layout
//!
//! Earlier versions stored `Vec<Option<Box<[f64]>>>` — one heap
//! allocation per active row, scattered wherever the allocator put them.
//! The vectorized DP kernel (DESIGN.md §15) reads child rows in bulk, so
//! the layout is now a single arena:
//!
//! ```text
//! data:  [ row of v3 | row of v7 | row of v9 | ... ]   (nc doubles each,
//! slots: [ ⊥ ⊥ ⊥ 0 ⊥ ⊥ ⊥ 1 ⊥ 2 ... ]                  ascending vertex order)
//! ```
//!
//! `slots[v]` is the arena row index of vertex `v` (or a sentinel when
//! inactive), so `row_slice` is one bounds-checked slice view and
//! consecutive active rows are physically adjacent — the property the
//! colorset-major kernel's sequential sweeps rely on. A [`RowBatch`]
//! produced by that kernel already *is* this layout, so
//! [`LazyTable::from_batch_kind`] moves the arena instead of copying rows.

use crate::access::{recorder_for, AccessRecorder};
use crate::batch::{RowBatch, NO_ROW};
use crate::{CountTable, Rows, TableKind, TableStats};
use std::sync::Arc;

/// Arena-backed per-vertex optional rows.
#[derive(Debug, Clone)]
pub struct LazyTable {
    nc: usize,
    /// Active rows, `nc` doubles each, in ascending vertex order.
    data: Vec<f64>,
    /// Per-vertex arena row index; `u32::MAX` marks an inactive vertex.
    slots: Vec<u32>,
    /// Opt-in access telemetry; excluded from `bytes()` accounting.
    access: Option<Arc<AccessRecorder>>,
}

impl CountTable for LazyTable {
    fn from_rows(n: usize, nc: usize, rows: Rows) -> Self {
        assert_eq!(rows.len(), n, "row count must equal vertex count");
        let active = rows
            .iter()
            .flatten()
            .filter(|r| {
                assert_eq!(r.len(), nc, "row width must equal colorset count");
                r.iter().any(|&x| x != 0.0)
            })
            .count();
        let mut data = Vec::with_capacity(active * nc);
        let mut slots = Vec::with_capacity(n);
        let mut next = 0u32;
        for row in &rows {
            match row {
                Some(r) if r.iter().any(|&x| x != 0.0) => {
                    slots.push(next);
                    next += 1;
                    data.extend_from_slice(r);
                }
                // All-zero rows are normalized to "inactive" so every
                // layout sees the same logical content.
                _ => slots.push(NO_ROW),
            }
        }
        Self {
            nc,
            data,
            slots,
            access: recorder_for(n),
        }
    }

    fn from_batch_kind(_kind: TableKind, mut batch: RowBatch) -> Self {
        let n = batch.num_vertices();
        let nc = batch.num_colorsets();
        batch.data.truncate(batch.committed * nc);
        // The arena may carry growth slack from staging; return it so
        // `bytes()` reports (and the process holds) exactly the rows kept.
        batch.data.shrink_to_fit();
        Self {
            nc,
            data: batch.data,
            slots: batch.slots,
            access: recorder_for(n),
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn num_colorsets(&self) -> usize {
        self.nc
    }

    #[inline]
    fn get(&self, v: usize, cs: usize) -> f64 {
        match self.slots[v] {
            NO_ROW => {
                if let Some(rec) = &self.access {
                    rec.note_inactive();
                }
                0.0
            }
            slot => {
                if let Some(rec) = &self.access {
                    rec.note_get(v);
                }
                self.data[slot as usize * self.nc + cs]
            }
        }
    }

    #[inline]
    fn vertex_active(&self, v: usize) -> bool {
        let a = self.slots[v] != NO_ROW;
        if !a {
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
        }
        a
    }

    #[inline]
    fn row_slice(&self, v: usize) -> Option<&[f64]> {
        match self.slots[v] {
            NO_ROW => {
                // A slice miss doubles as the activity check (see
                // `CountTable::has_row_slices`), so account it as one.
                if let Some(rec) = &self.access {
                    rec.note_inactive();
                }
                None
            }
            slot => {
                if let Some(rec) = &self.access {
                    rec.note_row_read(v);
                }
                let start = slot as usize * self.nc;
                Some(&self.data[start..start + self.nc])
            }
        }
    }

    fn bytes(&self) -> usize {
        // Length-based on purpose: `from_batch_kind` shrinks the arena to
        // its kept rows, and `projected_bytes` mirrors this formula.
        self.data.len() * std::mem::size_of::<f64>() + self.slots.len() * std::mem::size_of::<u32>()
    }

    fn stats(&self) -> TableStats {
        let materialized = self.slots.iter().filter(|&&s| s != NO_ROW).count();
        TableStats {
            allocated_bytes: self.bytes(),
            // Lazy materializes exactly the active rows — that is the
            // paper's "improved" memory scheme.
            rows_materialized: materialized,
            nonzero_rows: materialized,
            live_entries: self.data.iter().filter(|&&x| x != 0.0).count(),
            probe: None,
            access: self.access.as_ref().map(|rec| rec.snapshot()),
        }
    }

    fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    fn kind(&self) -> TableKind {
        TableKind::Lazy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTable;
    use crate::test_support::{check_contract, sample_rows};

    #[test]
    fn satisfies_table_contract() {
        check_contract::<LazyTable>();
    }

    #[test]
    fn saves_memory_vs_dense_on_sparse_rows() {
        let n = 1000;
        let nc = 64;
        // Only 10% of vertices active.
        let rows: Rows = (0..n)
            .map(|v| {
                if v % 10 == 0 {
                    Some(vec![1.0; nc].into_boxed_slice())
                } else {
                    None
                }
            })
            .collect();
        let lazy = LazyTable::from_rows(n, nc, rows.clone());
        let dense = DenseTable::from_rows(n, nc, rows);
        assert!(
            lazy.bytes() * 2 < dense.bytes(),
            "lazy {} vs dense {}",
            lazy.bytes(),
            dense.bytes()
        );
        assert_eq!(lazy.total(), dense.total());
    }

    #[test]
    fn normalizes_zero_rows_itself() {
        let rows: Rows = vec![Some(vec![0.0, 0.0].into_boxed_slice())];
        let t = LazyTable::from_rows(1, 2, rows);
        assert!(!t.vertex_active(0));
        assert!(t.row_slice(0).is_none());
    }

    #[test]
    fn matches_dense_semantics() {
        let rows = sample_rows(40, 9);
        let lazy = LazyTable::from_rows(40, 9, rows.clone());
        let dense = DenseTable::from_rows(40, 9, rows);
        for v in 0..40 {
            for cs in 0..9 {
                assert_eq!(lazy.get(v, cs), dense.get(v, cs));
            }
        }
    }

    #[test]
    fn arena_rows_are_adjacent_in_vertex_order() {
        let mut rows = sample_rows(17, 4);
        crate::prune_zero_rows(&mut rows);
        let t = LazyTable::from_rows(17, 4, rows.clone());
        let mut expect_start = 0;
        for (v, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                let slice = t.row_slice(v).unwrap();
                assert_eq!(slice, &r[..]);
                // Each active row starts right where the previous ended.
                assert_eq!(
                    slice.as_ptr() as usize - t.data.as_ptr() as usize,
                    expect_start * 8
                );
                expect_start += 4;
            }
        }
    }

    #[test]
    fn from_batch_matches_from_rows() {
        let mut rows = sample_rows(23, 5);
        crate::prune_zero_rows(&mut rows);
        let mut batch = RowBatch::new(23, 5);
        for (v, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                batch.stage().copy_from_slice(r);
                batch.commit(v);
            }
        }
        let a = LazyTable::from_batch_kind(TableKind::Lazy, batch);
        let b = LazyTable::from_rows(23, 5, rows);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a.total().to_bits(), b.total().to_bits());
        for v in 0..23 {
            assert_eq!(a.row_slice(v), b.row_slice(v), "vertex {v}");
        }
    }
}
