//! The improved lazily-materialized table.
//!
//! "We only initialize storage for a given vertex v if that vertex has a
//! value stored in it for any color set" (§III-C). Inactive vertices cost
//! one pointer; the activity check is a null test. On the Portland network
//! with unlabeled templates the paper reports ~20% peak-memory savings,
//! and >90% with labels, purely from this row laziness.

use crate::access::{recorder_for, AccessRecorder};
use crate::{CountTable, Rows, TableKind, TableStats};
use std::sync::Arc;

/// Per-vertex optional rows.
#[derive(Debug, Clone)]
pub struct LazyTable {
    nc: usize,
    rows: Rows,
    /// Opt-in access telemetry; excluded from `bytes()` accounting.
    access: Option<Arc<AccessRecorder>>,
}

impl CountTable for LazyTable {
    fn from_rows(n: usize, nc: usize, mut rows: Rows) -> Self {
        assert_eq!(rows.len(), n, "row count must equal vertex count");
        for row in rows.iter_mut() {
            if let Some(r) = row {
                assert_eq!(r.len(), nc, "row width must equal colorset count");
                if r.iter().all(|&x| x == 0.0) {
                    *row = None;
                }
            }
        }
        Self {
            nc,
            rows,
            access: recorder_for(n),
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    fn num_colorsets(&self) -> usize {
        self.nc
    }

    #[inline]
    fn get(&self, v: usize, cs: usize) -> f64 {
        match &self.rows[v] {
            Some(row) => {
                if let Some(rec) = &self.access {
                    rec.note_get(v);
                }
                row[cs]
            }
            None => {
                if let Some(rec) = &self.access {
                    rec.note_inactive();
                }
                0.0
            }
        }
    }

    #[inline]
    fn vertex_active(&self, v: usize) -> bool {
        let a = self.rows[v].is_some();
        if !a {
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
        }
        a
    }

    #[inline]
    fn row_slice(&self, v: usize) -> Option<&[f64]> {
        let row = self.rows[v].as_deref();
        if row.is_some() {
            if let Some(rec) = &self.access {
                rec.note_row_read(v);
            }
        }
        row
    }

    fn bytes(&self) -> usize {
        let row_bytes: usize = self
            .rows
            .iter()
            .map(|r| r.as_ref().map_or(0, |row| row.len() * 8))
            .sum();
        row_bytes + self.rows.capacity() * std::mem::size_of::<Option<Box<[f64]>>>()
    }

    fn stats(&self) -> TableStats {
        let materialized = self.rows.iter().filter(|r| r.is_some()).count();
        TableStats {
            allocated_bytes: self.bytes(),
            // Lazy materializes exactly the active rows — that is the
            // paper's "improved" memory scheme.
            rows_materialized: materialized,
            nonzero_rows: materialized,
            live_entries: self
                .rows
                .iter()
                .flatten()
                .map(|row| row.iter().filter(|&&x| x != 0.0).count())
                .sum(),
            probe: None,
            access: self.access.as_ref().map(|rec| rec.snapshot()),
        }
    }

    fn total(&self) -> f64 {
        self.rows
            .iter()
            .flatten()
            .map(|row| row.iter().sum::<f64>())
            .sum()
    }

    fn kind(&self) -> TableKind {
        TableKind::Lazy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTable;
    use crate::test_support::{check_contract, sample_rows};

    #[test]
    fn satisfies_table_contract() {
        check_contract::<LazyTable>();
    }

    #[test]
    fn saves_memory_vs_dense_on_sparse_rows() {
        let n = 1000;
        let nc = 64;
        // Only 10% of vertices active.
        let rows: Rows = (0..n)
            .map(|v| {
                if v % 10 == 0 {
                    Some(vec![1.0; nc].into_boxed_slice())
                } else {
                    None
                }
            })
            .collect();
        let lazy = LazyTable::from_rows(n, nc, rows.clone());
        let dense = DenseTable::from_rows(n, nc, rows);
        assert!(
            lazy.bytes() * 2 < dense.bytes(),
            "lazy {} vs dense {}",
            lazy.bytes(),
            dense.bytes()
        );
        assert_eq!(lazy.total(), dense.total());
    }

    #[test]
    fn normalizes_zero_rows_itself() {
        let rows: Rows = vec![Some(vec![0.0, 0.0].into_boxed_slice())];
        let t = LazyTable::from_rows(1, 2, rows);
        assert!(!t.vertex_active(0));
        assert!(t.row_slice(0).is_none());
    }

    #[test]
    fn matches_dense_semantics() {
        let rows = sample_rows(40, 9);
        let lazy = LazyTable::from_rows(40, 9, rows.clone());
        let dense = DenseTable::from_rows(40, 9, rows);
        for v in 0..40 {
            for cs in 0..9 {
                assert_eq!(lazy.get(v, cs), dense.get(v, cs));
            }
        }
    }
}
