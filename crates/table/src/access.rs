//! Opt-in access-pattern analytics for the table layouts.
//!
//! The layout decision (DESIGN.md §14) should be made from measured
//! telemetry: how often rows are touched, how long hash probe chains run
//! at lookup time, and whether the DP walks a table sequentially (cache
//! friendly) or scatters across it. Each layout owns an optional
//! [`AccessRecorder`]; when the process-wide tracking flag is off (the
//! default) the recorder is never allocated and every read path pays one
//! `Option` branch. Recording uses relaxed atomics only — it observes,
//! never participates, so counts stay bitwise identical with tracking on
//! or off.
//!
//! Recorder storage is deliberately *excluded* from [`bytes`] accounting:
//! `projected_bytes` must keep matching the built table exactly, and the
//! Figs. 6–7 memory comparisons measure the layout, not the telemetry.
//!
//! [`bytes`]: crate::CountTable::bytes

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets in the touch/probe histograms.
pub const ACCESS_BUCKETS: usize = 16;

/// Process-wide switch: when set, every table built afterwards carries an
/// [`AccessRecorder`].
static ACCESS_TRACKING: AtomicBool = AtomicBool::new(false);

/// Enables or disables access tracking for tables built *after* this call.
/// Existing tables keep (or keep lacking) their recorders.
pub fn set_access_tracking(on: bool) {
    ACCESS_TRACKING.store(on, Ordering::Relaxed);
}

/// Whether tables built right now would carry a recorder.
pub fn access_tracking_enabled() -> bool {
    ACCESS_TRACKING.load(Ordering::Relaxed)
}

/// Returns a recorder for a table of `n` vertices when tracking is on.
pub(crate) fn recorder_for(n: usize) -> Option<Arc<AccessRecorder>> {
    if access_tracking_enabled() {
        Some(Arc::new(AccessRecorder::new(n)))
    } else {
        None
    }
}

/// Relaxed-atomic access counters owned by one table instance.
///
/// All methods are safe to call concurrently from the parallel DP; the
/// counters are monotone and order-insensitive.
#[derive(Debug)]
pub struct AccessRecorder {
    gets: AtomicU64,
    inactive_skips: AtomicU64,
    row_reads: AtomicU64,
    sequential: AtomicU64,
    scattered: AtomicU64,
    last_vertex: AtomicU64,
    probe_hist: [AtomicU64; ACCESS_BUCKETS],
    touch: Box<[AtomicU32]>,
}

const NO_VERTEX: u64 = u64::MAX;

impl AccessRecorder {
    fn new(n: usize) -> Self {
        let mut touch = Vec::with_capacity(n);
        touch.resize_with(n, || AtomicU32::new(0));
        Self {
            gets: AtomicU64::new(0),
            inactive_skips: AtomicU64::new(0),
            row_reads: AtomicU64::new(0),
            sequential: AtomicU64::new(0),
            scattered: AtomicU64::new(0),
            last_vertex: AtomicU64::new(NO_VERTEX),
            probe_hist: [const { AtomicU64::new(0) }; ACCESS_BUCKETS],
            touch: touch.into_boxed_slice(),
        }
    }

    #[inline]
    fn note_stride(&self, v: usize) {
        let prev = self.last_vertex.swap(v as u64, Ordering::Relaxed);
        let seq = v as u64 == prev || (prev != NO_VERTEX && v as u64 == prev + 1);
        if seq {
            self.sequential.fetch_add(1, Ordering::Relaxed);
        } else {
            self.scattered.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One point lookup of vertex `v`.
    #[inline]
    pub(crate) fn note_get(&self, v: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.touch.get(v) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.note_stride(v);
    }

    /// An activity check (or hashed lookup) that found the vertex inactive.
    #[inline]
    pub(crate) fn note_inactive(&self) {
        self.inactive_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// One whole-row read of vertex `v`.
    #[inline]
    pub(crate) fn note_row_read(&self, v: usize) {
        self.row_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.touch.get(v) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.note_stride(v);
    }

    /// A hashed lookup that walked a probe chain of `chain` slots.
    #[inline]
    pub(crate) fn note_probe(&self, chain: u64) {
        let bucket = (chain.saturating_sub(1) as usize).min(ACCESS_BUCKETS - 1);
        self.probe_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> AccessSnapshot {
        let mut touch_hist = [0u64; ACCESS_BUCKETS];
        let mut touched_rows = 0u64;
        for slot in self.touch.iter() {
            let c = slot.load(Ordering::Relaxed);
            if c > 0 {
                touched_rows += 1;
                // log2 buckets: 1, 2-3, 4-7, ... accesses per row.
                let bucket = (u32::BITS - 1 - c.leading_zeros()) as usize;
                touch_hist[bucket.min(ACCESS_BUCKETS - 1)] += 1;
            }
        }
        let mut probe_hist = [0u64; ACCESS_BUCKETS];
        for (dst, src) in probe_hist.iter_mut().zip(self.probe_hist.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        AccessSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            inactive_skips: self.inactive_skips.load(Ordering::Relaxed),
            row_reads: self.row_reads.load(Ordering::Relaxed),
            sequential: self.sequential.load(Ordering::Relaxed),
            scattered: self.scattered.load(Ordering::Relaxed),
            touched_rows,
            touch_hist,
            probe_hist,
        }
    }
}

/// Frozen view of a recorder, carried in [`TableStats::access`].
///
/// [`TableStats::access`]: crate::TableStats::access
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessSnapshot {
    /// Point lookups served ([`CountTable::get`] on an active vertex for
    /// the hashed layout; every `get` for dense/lazy).
    ///
    /// [`CountTable::get`]: crate::CountTable::get
    pub gets: u64,
    /// Activity checks (and hashed lookups) that found the vertex inactive
    /// — the paper's O(1) skip saving, measured.
    pub inactive_skips: u64,
    /// Whole-row reads served through `row_slice`.
    pub row_reads: u64,
    /// Accesses whose vertex equaled or directly followed the previous one.
    pub sequential: u64,
    /// Accesses that jumped elsewhere in the table.
    pub scattered: u64,
    /// Rows touched at least once.
    pub touched_rows: u64,
    /// Histogram of per-row touch counts, log2 buckets (`[i]` counts rows
    /// touched `2^i ..= 2^(i+1)-1` times; the last bucket absorbs the tail).
    pub touch_hist: [u64; ACCESS_BUCKETS],
    /// Histogram of lookup-time probe-chain lengths (hashed layout only;
    /// `[i]` counts lookups that inspected `i + 1` slots, last bucket
    /// absorbs the tail).
    pub probe_hist: [u64; ACCESS_BUCKETS],
}

impl AccessSnapshot {
    /// Fraction of stride-classified accesses that were sequential
    /// (`None` when nothing was recorded).
    pub fn sequential_ratio(&self) -> Option<f64> {
        let total = self.sequential + self.scattered;
        if total == 0 {
            None
        } else {
            Some(self.sequential as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_rows;
    use crate::{AnyTable, CountTable, TableKind};

    /// One test owns the global flag end to end so parallel test threads
    /// in this binary never observe a half-configured state they assert on.
    #[test]
    fn recorders_observe_all_layouts() {
        set_access_tracking(true);
        let (n, nc) = (30, 6);
        for kind in TableKind::all() {
            let t = AnyTable::from_rows_kind(kind, n, nc, sample_rows(n, nc));
            // Sequential sweep, then a scattered revisit.
            for v in 0..n {
                let _ = t.vertex_active(v);
                let _ = t.get(v, 0);
                let _ = t.row_slice(v);
            }
            let _ = t.get(0, 1);
            let _ = t.get(n - 1, 1);
            let s = t.stats().access.expect("tracking is on");
            assert!(s.gets > 0, "{kind:?}: gets {}", s.gets);
            assert!(
                s.gets + s.inactive_skips >= n as u64,
                "{kind:?}: every vertex was visited"
            );
            assert!(s.touched_rows > 0, "{kind:?}");
            assert!(s.sequential > 0, "{kind:?}");
            assert!(s.scattered > 0, "{kind:?}");
            assert!(s.inactive_skips > 0, "{kind:?}: sample_rows has gaps");
            let hist_rows: u64 = s.touch_hist.iter().sum();
            assert_eq!(hist_rows, s.touched_rows, "{kind:?}");
            if kind == TableKind::Hash {
                assert!(s.probe_hist.iter().sum::<u64>() > 0);
            } else {
                assert_eq!(s.probe_hist.iter().sum::<u64>(), 0, "{kind:?}");
            }
        }
        set_access_tracking(false);
        let t = AnyTable::from_rows_kind(TableKind::Lazy, n, nc, sample_rows(n, nc));
        assert!(t.stats().access.is_none(), "built after disabling");
    }

    #[test]
    fn snapshot_ratio_handles_empty() {
        assert_eq!(AccessSnapshot::default().sequential_ratio(), None);
        let s = AccessSnapshot {
            sequential: 3,
            scattered: 1,
            ..AccessSnapshot::default()
        };
        assert_eq!(s.sequential_ratio(), Some(0.75));
    }
}
