//! Dynamic-programming count tables (paper §III-C).
//!
//! The DP stores, for the current subtemplate, a count per (graph vertex,
//! color-set index). The paper abstracts this table and evaluates three
//! layouts, all reproduced here behind the [`CountTable`] trait:
//!
//! * [`DenseTable`] — the naive layout: a flat `n x Nc` array fully
//!   allocated up front regardless of need,
//! * [`LazyTable`] — the "improved" layout: rows materialized only for
//!   vertices with at least one non-zero count, packed into one contiguous
//!   arena in vertex order, enabling the memory saving, the O(1) "is this
//!   vertex initialized" check that skips work in the inner loops, *and*
//!   the sequential row reads the vectorized DP kernel depends on
//!   (DESIGN.md §15),
//! * [`HashCountTable`] — the hashing scheme for high-selectivity
//!   templates: key `vid * Nc + I`, hashed by plain modulo into an
//!   open-addressing table (the paper's `key mod size` with a table sized
//!   as a factor of the live entries).
//!
//! Tables are built from per-vertex rows produced (possibly in parallel) by
//! the engine; all-zero rows are dropped before construction so every
//! layout sees the same logical content.
//!
//! # Choosing a layout
//!
//! For `n` graph vertices, `Nc = C(k, h)` color-set slots per vertex, `r`
//! *active* vertices (at least one non-zero count) and `e` live
//! `(vertex, color set)` entries, the memory footprints are roughly:
//!
//! * dense — `8 * n * Nc` bytes, always. Fastest access (one multiply),
//!   right when most vertices are active and `Nc` is small (small
//!   templates on dense graphs).
//! * lazy — `8 * r * Nc` plus a 4-byte arena slot per vertex:
//!   `4n + 8 * r * Nc`. The default: same O(1) row addressing as dense,
//!   but pays only for active vertices — a large win on sparse or
//!   road-like graphs where most vertices never accumulate a count. Its
//!   arena keeps active rows adjacent in vertex order, so neighbor-row
//!   sweeps read memory almost sequentially (watch
//!   `access.sequential_ratio` under `--mem-stats`, and see the PR 6
//!   occupancy recipe in EXPERIMENTS.md for picking a layout from
//!   measured occupancy).
//! * hash — `~16 * e / load` bytes (key + value per live entry at the
//!   configured load factor). Right for *high-selectivity* workloads —
//!   labeled or large templates where `e << r * Nc` — at the cost of a
//!   probe chain per lookup.
//!
//! All three agree bitwise on every count; the engine's `TableKind` config
//! knob is purely a space/time trade (see Figs. 6–7 for the measured
//! curves).
//!
//! ```
//! use fascia_table::{prune_zero_rows, CountTable, DenseTable, LazyTable, Rows};
//!
//! // 4 vertices, 3 color-set slots; vertices 1 and 3 never got a count.
//! let mut rows: Rows = vec![
//!     Some(vec![2.0, 0.0, 1.0].into_boxed_slice()),
//!     Some(vec![0.0, 0.0, 0.0].into_boxed_slice()),
//!     Some(vec![0.0, 4.0, 0.0].into_boxed_slice()),
//!     None,
//! ];
//! prune_zero_rows(&mut rows); // all-zero row 1 becomes None
//!
//! let lazy = LazyTable::from_rows(4, 3, rows.clone());
//! let dense = DenseTable::from_rows(4, 3, rows);
//! assert_eq!(lazy.get(0, 2), 1.0);
//! assert!(!lazy.vertex_active(1));
//! assert_eq!(lazy.total(), dense.total()); // layouts agree on content
//! // ...but lazy materialized only the 2 active rows, dense all 4.
//! assert_eq!(lazy.stats().rows_materialized, 2);
//! assert_eq!(dense.stats().rows_materialized, 4);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod any;
pub mod batch;
pub mod dense;
pub mod hashed;
pub mod lazy;

pub use access::{
    access_tracking_enabled, set_access_tracking, AccessRecorder, AccessSnapshot, ACCESS_BUCKETS,
};
pub use any::AnyTable;
pub use batch::RowBatch;
pub use dense::DenseTable;
pub use hashed::HashCountTable;
pub use lazy::LazyTable;

/// Which table layout to use (runtime-selectable in the engine config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// Naive dense array (paper's baseline memory scheme).
    Dense,
    /// Lazily materialized per-vertex rows (paper's improved scheme).
    Lazy,
    /// Modulo-hashed sparse table (paper's high-selectivity scheme).
    Hash,
}

impl TableKind {
    /// All three layouts, in paper presentation order.
    pub fn all() -> [TableKind; 3] {
        [TableKind::Dense, TableKind::Lazy, TableKind::Hash]
    }

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            TableKind::Dense => "naive",
            TableKind::Lazy => "improved",
            TableKind::Hash => "hash",
        }
    }

    /// The degradation ladder: layouts at-or-below `self` in memory
    /// footprint, densest first. Dense can fall back to lazy or hashed,
    /// lazy to hashed, hashed only to itself.
    pub fn ladder(&self) -> &'static [TableKind] {
        match self {
            TableKind::Dense => &[TableKind::Dense, TableKind::Lazy, TableKind::Hash],
            TableKind::Lazy => &[TableKind::Lazy, TableKind::Hash],
            TableKind::Hash => &[TableKind::Hash],
        }
    }
}

/// Projects the heap bytes a layout would allocate for a table of `n`
/// vertices x `nc` colorsets with `active_rows` non-zero rows holding
/// `live_entries` non-zero counts, without building it.
///
/// The formulas mirror each layout's [`CountTable::bytes`] accounting
/// exactly (dense: full `n x nc` doubles plus the activity bitmap; lazy:
/// doubles for the active-row arena plus one 4-byte slot per vertex;
/// hash: the open-addressing key/value arrays at factor-of-two occupancy
/// plus the activity bitmap), so a projection can be compared against a
/// memory budget before committing to a layout.
pub fn projected_bytes(
    kind: TableKind,
    n: usize,
    nc: usize,
    active_rows: usize,
    live_entries: usize,
) -> usize {
    match kind {
        TableKind::Dense => n * nc * 8 + n,
        TableKind::Lazy => active_rows * nc * 8 + n * std::mem::size_of::<u32>(),
        TableKind::Hash => {
            let capacity = (2 * live_entries).max(16) + 1;
            capacity * 16 + n
        }
    }
}

/// Per-vertex rows as produced by the DP: `None` means "vertex never
/// initialized" (all-zero row).
pub type Rows = Vec<Option<Box<[f64]>>>;

/// Measured storage statistics of a built table.
///
/// Unlike [`CountTable::bytes`]-based estimates aggregated by the engine,
/// these are read off the concrete layout after construction, so the
/// Figs. 6–7 memory comparisons can report what was actually allocated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TableStats {
    /// Exact heap bytes held by the layout's allocations.
    pub allocated_bytes: usize,
    /// Vertices for which the layout materialized storage (dense: all of
    /// them — that is the point of the comparison; lazy: active rows only).
    pub rows_materialized: usize,
    /// Vertices holding at least one non-zero count.
    pub nonzero_rows: usize,
    /// Non-zero `(vertex, colorset)` pairs.
    pub live_entries: usize,
    /// Open-addressing probe statistics (hash layout only).
    pub probe: Option<ProbeStats>,
    /// Access-pattern counters accumulated since construction (present only
    /// when [`set_access_tracking`] was on when the table was built).
    pub access: Option<AccessSnapshot>,
}

/// Construction-time probe behavior of the hashed layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Total slot inspections across all inserts (1 per insert is ideal).
    pub probes: u64,
    /// Longest single probe chain.
    pub max_probe: u64,
}

impl ProbeStats {
    /// Mean slot inspections per insert (1.0 = collision-free).
    pub fn mean_probe(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.probes as f64 / self.inserts as f64
        }
    }
}

/// Common interface of the three table layouts.
///
/// A table is immutable once built: the DP always constructs the parent
/// table from complete child tables, so no in-place mutation is needed.
pub trait CountTable: Send + Sync + Sized {
    /// Builds a table from per-vertex rows (each row has `nc` entries).
    ///
    /// # Panics
    /// Panics if `rows.len() != n` or any row length differs from `nc`.
    fn from_rows(n: usize, nc: usize, rows: Rows) -> Self;

    /// Builds a table with the requested *logical* layout. Concrete
    /// layouts ignore the hint (they are their own layout); [`AnyTable`]
    /// dispatches on it — this is the hook the engine's memory-budget
    /// degradation ladder uses to pick a layout per subtemplate.
    fn from_rows_kind(kind: TableKind, n: usize, nc: usize, rows: Rows) -> Self {
        let _ = kind;
        Self::from_rows(n, nc, rows)
    }

    /// Builds a table from an arena-staged [`RowBatch`] (the vectorized DP
    /// kernel's output), honoring `kind` as in
    /// [`CountTable::from_rows_kind`]. Every layout overrides the default
    /// with a direct construction so no per-row boxes are allocated; for
    /// [`LazyTable`] the batch arena is *moved*, not copied.
    ///
    /// ```
    /// use fascia_table::{CountTable, DenseTable, RowBatch, TableKind};
    /// let mut batch = RowBatch::new(3, 2);
    /// batch.stage()[0] = 7.0;
    /// batch.commit(2);
    /// let t = DenseTable::from_batch_kind(TableKind::Dense, batch);
    /// assert_eq!(t.get(2, 0), 7.0);
    /// assert!(!t.vertex_active(0));
    /// ```
    fn from_batch_kind(kind: TableKind, batch: RowBatch) -> Self {
        let (n, nc) = (batch.num_vertices(), batch.num_colorsets());
        Self::from_rows_kind(kind, n, nc, batch.into_rows())
    }

    /// Number of graph vertices this table covers.
    fn num_vertices(&self) -> usize;

    /// Number of color-set slots per vertex.
    fn num_colorsets(&self) -> usize;

    /// Count for vertex `v` and color-set index `cs` (0 when absent).
    fn get(&self, v: usize, cs: usize) -> f64;

    /// Whether vertex `v` holds any non-zero count — the paper's boolean
    /// check that avoids "considerable computation and additional memory
    /// accesses".
    fn vertex_active(&self, v: usize) -> bool;

    /// Contiguous row of vertex `v` when the layout materializes one
    /// (`None` for inactive vertices and for the hash layout).
    fn row_slice(&self, v: usize) -> Option<&[f64]>;

    /// Whether this layout materializes contiguous rows at all: when
    /// `true`, `row_slice(v).is_some()` is equivalent to
    /// `vertex_active(v)`, so a single [`CountTable::row_slice`] probe can
    /// serve as both the activity check and the row read. The hash layout
    /// returns `false`.
    fn has_row_slices(&self) -> bool {
        true
    }

    /// Adds vertex `v`'s whole row into `acc` slot-by-slot, equivalent to
    /// `acc[cs] += self.get(v, cs)` for every `cs` in `0..acc.len()`, in
    /// ascending `cs` order. Layouts without contiguous rows override this
    /// with a batched probe (the hashed layout amortizes one hash
    /// computation over the row's consecutive keys); results are bitwise
    /// identical to the per-slot default.
    fn add_row_into(&self, v: usize, acc: &mut [f64]) {
        for (cs, a) in acc.iter_mut().enumerate() {
            *a += self.get(v, cs);
        }
    }

    /// Hints that vertex `v`'s row is about to be read (e.g. by
    /// [`CountTable::add_row_into`]): layouts may prefetch the backing
    /// storage. Semantically a no-op; the default does nothing.
    fn prefetch_row_hint(&self, v: usize) {
        let _ = v;
    }

    /// Approximate heap bytes held (peak-memory accounting, Figs. 6–7).
    fn bytes(&self) -> usize;

    /// Measured storage statistics (exact bytes, materialized rows, probe
    /// behavior). May scan the table; call once per built table, not in
    /// inner loops.
    fn stats(&self) -> TableStats;

    /// Sum over all entries (the final count aggregation, Alg. 2 line 20).
    fn total(&self) -> f64;

    /// The layout tag of this table instance (for [`AnyTable`] the layout
    /// actually chosen, which may differ per subtemplate under a budget).
    fn kind(&self) -> TableKind;
}

/// Drops all-zero rows, normalizing rows before table construction so all
/// layouts agree on which vertices are "active".
pub fn prune_zero_rows(rows: &mut Rows) {
    for row in rows.iter_mut() {
        if let Some(r) = row {
            if r.iter().all(|&x| x == 0.0) {
                *row = None;
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Deterministic sparse test rows.
    pub fn sample_rows(n: usize, nc: usize) -> Rows {
        (0..n)
            .map(|v| {
                if v % 3 == 2 {
                    None
                } else {
                    let mut row = vec![0.0; nc].into_boxed_slice();
                    for (cs, slot) in row.iter_mut().enumerate() {
                        if (v + cs) % 4 == 0 {
                            *slot = (v * nc + cs + 1) as f64;
                        }
                    }
                    Some(row)
                }
            })
            .collect()
    }

    /// Exercises the full trait contract for a layout.
    pub fn check_contract<T: CountTable>() {
        let (n, nc) = (23, 7);
        let mut rows = sample_rows(n, nc);
        prune_zero_rows(&mut rows);
        let reference = rows.clone();
        let table = T::from_rows(n, nc, rows);
        assert_eq!(table.num_vertices(), n);
        assert_eq!(table.num_colorsets(), nc);
        let mut expect_total = 0.0;
        for (v, expect_row) in reference.iter().enumerate() {
            match expect_row {
                None => {
                    assert!(!table.vertex_active(v), "vertex {v} should be inactive");
                    for cs in 0..nc {
                        assert_eq!(table.get(v, cs), 0.0);
                    }
                }
                Some(row) => {
                    assert!(table.vertex_active(v), "vertex {v} should be active");
                    for cs in 0..nc {
                        assert_eq!(table.get(v, cs), row[cs], "v={v} cs={cs}");
                        expect_total += row[cs];
                    }
                    if let Some(slice) = table.row_slice(v) {
                        assert_eq!(slice, &row[..]);
                    }
                }
            }
        }
        assert!((table.total() - expect_total).abs() < 1e-9);
        assert!(table.bytes() > 0);
        let stats = table.stats();
        assert_eq!(stats.allocated_bytes, table.bytes());
        let expect_active = reference.iter().filter(|r| r.is_some()).count();
        let expect_live: usize = reference
            .iter()
            .flatten()
            .map(|row| row.iter().filter(|&&x| x != 0.0).count())
            .sum();
        assert_eq!(stats.nonzero_rows, expect_active);
        assert_eq!(stats.live_entries, expect_live);
        assert!(stats.rows_materialized >= stats.nonzero_rows);
        if let Some(p) = stats.probe {
            assert_eq!(p.inserts, expect_live as u64);
            assert!(p.probes >= p.inserts);
            assert!(p.max_probe >= 1 || p.inserts == 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_normalizes_zero_rows() {
        let mut rows: Rows = vec![
            Some(vec![0.0, 0.0].into_boxed_slice()),
            Some(vec![1.0, 0.0].into_boxed_slice()),
            None,
        ];
        prune_zero_rows(&mut rows);
        assert!(rows[0].is_none());
        assert!(rows[1].is_some());
        assert!(rows[2].is_none());
    }

    #[test]
    fn kind_names() {
        assert_eq!(TableKind::Dense.name(), "naive");
        assert_eq!(TableKind::Lazy.name(), "improved");
        assert_eq!(TableKind::Hash.name(), "hash");
        assert_eq!(TableKind::all().len(), 3);
    }
}
