//! Arena-staged row batches for the vectorized DP kernel.
//!
//! The scalar DP emits one `Option<Box<[f64]>>` per vertex ([`Rows`]),
//! paying one heap allocation per active vertex. The vectorized kernel
//! (DESIGN.md §15) instead stages rows into a single contiguous arena:
//! `stage()` hands out a zeroed scratch row at the arena tail, and
//! `commit(v)` keeps it as vertex `v`'s row — an uncommitted row is simply
//! overwritten by the next `stage()`. Construction of the final table then
//! consumes the arena directly (see [`crate::CountTable::from_batch_kind`]),
//! so the hot loop performs **zero** per-row allocations.
//!
//! Committed rows live in the arena in commit order; the engine commits in
//! ascending vertex order, which makes the arena identical to the
//! colorset-major layout [`crate::LazyTable`] stores — its
//! `from_batch` is a move, not a copy.

use crate::Rows;

/// Per-vertex slot value marking "no committed row".
pub(crate) const NO_ROW: u32 = u32::MAX;

/// A growable arena of fixed-width `f64` rows with per-vertex slots.
///
/// ```
/// use fascia_table::{CountTable, LazyTable, RowBatch, TableKind};
///
/// let mut batch = RowBatch::new(4, 3);
/// let row = batch.stage();       // zeroed scratch row at the arena tail
/// row[1] = 2.0;
/// batch.commit(0);               // keep it as vertex 0's row
/// let _ = batch.stage();         // staged but never committed: discarded
/// let row = batch.stage();
/// row[2] = 5.0;
/// batch.commit(3);
/// assert_eq!(batch.active_rows(), 2);
/// assert_eq!(batch.live_entries(), 2);
///
/// let table = LazyTable::from_batch_kind(TableKind::Lazy, batch);
/// assert_eq!(table.get(0, 1), 2.0);
/// assert_eq!(table.get(3, 2), 5.0);
/// assert!(!table.vertex_active(1));
/// ```
#[derive(Debug, Clone)]
pub struct RowBatch {
    n: usize,
    nc: usize,
    /// Committed rows (`committed * nc` doubles), plus at most one staged
    /// row at the tail.
    pub(crate) data: Vec<f64>,
    /// Per-vertex arena row index, [`NO_ROW`] when the vertex has none.
    pub(crate) slots: Vec<u32>,
    pub(crate) committed: usize,
}

impl RowBatch {
    /// An empty batch for `n` vertices with `nc`-slot rows.
    pub fn new(n: usize, nc: usize) -> Self {
        Self {
            n,
            nc,
            data: Vec::new(),
            slots: vec![NO_ROW; n],
            committed: 0,
        }
    }

    /// Number of vertices this batch covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Row width (color-set slots per vertex).
    #[inline]
    pub fn num_colorsets(&self) -> usize {
        self.nc
    }

    /// A zeroed scratch row at the arena tail. The row becomes permanent
    /// only on [`RowBatch::commit`]; calling `stage` again first reuses
    /// (and re-zeroes) the same storage.
    #[inline]
    pub fn stage(&mut self) -> &mut [f64] {
        let start = self.committed * self.nc;
        if self.data.len() < start + self.nc {
            // Freshly grown storage is already zero; only a reused
            // (staged-but-discarded) row needs explicit re-zeroing.
            self.data.resize(start + self.nc, 0.0);
            &mut self.data[start..start + self.nc]
        } else {
            let row = &mut self.data[start..start + self.nc];
            row.fill(0.0);
            row
        }
    }

    /// Commits the currently staged row as vertex `v`'s row.
    ///
    /// # Panics
    /// Panics if `v` is out of range, already has a row, or nothing was
    /// staged since the last commit.
    #[inline]
    pub fn commit(&mut self, v: usize) {
        assert!(
            self.data.len() >= (self.committed + 1) * self.nc,
            "commit without a staged row"
        );
        assert_eq!(self.slots[v], NO_ROW, "vertex {v} committed twice");
        self.slots[v] = self.committed as u32;
        self.committed += 1;
    }

    /// Number of committed rows.
    #[inline]
    pub fn active_rows(&self) -> usize {
        self.committed
    }

    /// Non-zero entries across committed rows (memory-budget projection
    /// input; scans the arena).
    pub fn live_entries(&self) -> usize {
        self.data[..self.committed * self.nc]
            .iter()
            .filter(|&&x| x != 0.0)
            .count()
    }

    /// The committed row of vertex `v`, if any.
    #[inline]
    pub fn row(&self, v: usize) -> Option<&[f64]> {
        match self.slots[v] {
            NO_ROW => None,
            slot => {
                let start = slot as usize * self.nc;
                Some(&self.data[start..start + self.nc])
            }
        }
    }

    /// Concatenates per-band batches into one, in band order. Band `i`
    /// covers the next `parts[i].num_vertices()` global vertices; its
    /// local vertex 0 becomes the global vertex at the running offset.
    /// Used by the inner-parallel kernel: each worker fills a private
    /// band batch, and the deterministic band order makes the merged
    /// arena identical to a serial pass.
    ///
    /// # Panics
    /// Panics if the band widths disagree with `nc` or the bands do not
    /// cover exactly `n` vertices.
    pub fn concat(n: usize, nc: usize, parts: Vec<RowBatch>) -> Self {
        let total_rows: usize = parts.iter().map(|p| p.committed).sum();
        let mut out = Self {
            n,
            nc,
            data: Vec::with_capacity(total_rows * nc),
            slots: Vec::with_capacity(n),
            committed: 0,
        };
        for part in parts {
            assert_eq!(part.nc, nc, "band row width mismatch");
            for slot in &part.slots {
                out.slots.push(match *slot {
                    NO_ROW => NO_ROW,
                    s => s + out.committed as u32,
                });
            }
            out.data
                .extend_from_slice(&part.data[..part.committed * nc]);
            out.committed += part.committed;
        }
        assert_eq!(out.slots.len(), n, "bands must cover every vertex");
        out
    }

    /// Converts to the boxed per-vertex representation (the compatibility
    /// path behind [`crate::CountTable::from_batch_kind`]'s default).
    pub fn into_rows(self) -> Rows {
        let Self {
            n, nc, data, slots, ..
        } = self;
        (0..n)
            .map(|v| match slots[v] {
                NO_ROW => None,
                slot => {
                    let start = slot as usize * nc;
                    Some(data[start..start + nc].to_vec().into_boxed_slice())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_commit_roundtrip() {
        let mut b = RowBatch::new(5, 2);
        b.stage()[0] = 1.0;
        b.commit(1);
        b.stage()[1] = 9.0; // never committed
        let r = b.stage();
        assert_eq!(r, &[0.0, 0.0], "stage re-zeroes discarded rows");
        r[1] = 3.0;
        b.commit(4);
        assert_eq!(b.active_rows(), 2);
        assert_eq!(b.live_entries(), 2);
        assert_eq!(b.row(1), Some(&[1.0, 0.0][..]));
        assert_eq!(b.row(4), Some(&[0.0, 3.0][..]));
        assert_eq!(b.row(0), None);
        let rows = b.into_rows();
        assert!(rows[0].is_none());
        assert_eq!(rows[1].as_deref(), Some(&[1.0, 0.0][..]));
    }

    #[test]
    #[should_panic]
    fn commit_without_stage_panics() {
        let mut b = RowBatch::new(3, 2);
        b.commit(0);
    }

    #[test]
    #[should_panic]
    fn double_commit_panics() {
        let mut b = RowBatch::new(3, 2);
        b.stage();
        b.commit(0);
        b.stage();
        b.commit(0);
    }

    #[test]
    fn concat_matches_serial_fill() {
        let mut serial = RowBatch::new(6, 2);
        let mut band0 = RowBatch::new(3, 2);
        let mut band1 = RowBatch::new(3, 2);
        for v in 0..6usize {
            if v % 2 == 0 {
                continue;
            }
            let band = if v < 3 { &mut band0 } else { &mut band1 };
            band.stage()[0] = v as f64;
            band.commit(v % 3);
            serial.stage()[0] = v as f64;
            serial.commit(v);
        }
        let merged = RowBatch::concat(6, 2, vec![band0, band1]);
        assert_eq!(merged.active_rows(), serial.active_rows());
        for v in 0..6 {
            assert_eq!(merged.row(v), serial.row(v), "vertex {v}");
        }
        assert_eq!(merged.data, serial.data);
    }
}
