//! The hashed sparse table for high-selectivity templates.
//!
//! §III-C: "key = vid * Nc + I ... we can utilize a very simple hash
//! function of (key mod size)". We size the open-addressing array as a
//! small factor of the number of live entries (the paper's "factor of
//! n * Nc" with the factor chosen by occupancy), probe linearly, and keep a
//! per-vertex activity bitmap so the inner-loop skip check stays O(1).
//!
//! This wins when few (vertex, colorset) pairs are non-zero — e.g. long
//! paths on the PA road network, where Fig. 7 reports up to 90% memory
//! reduction versus the dense layout.

use crate::access::{recorder_for, AccessRecorder};
use crate::{CountTable, ProbeStats, RowBatch, Rows, TableKind, TableStats};
use std::sync::Arc;

const EMPTY: u64 = u64::MAX;

/// Open-addressing hash table keyed by `v * nc + cs`.
#[derive(Debug, Clone)]
pub struct HashCountTable {
    n: usize,
    nc: usize,
    capacity: usize,
    keys: Vec<u64>,
    vals: Vec<f64>,
    active: Vec<bool>,
    live: usize,
    probe: ProbeStats,
    /// Opt-in access telemetry; excluded from `bytes()` accounting.
    access: Option<Arc<AccessRecorder>>,
}

impl HashCountTable {
    #[inline]
    fn slot_of(&self, key: u64) -> Option<usize> {
        let mut i = (key % self.capacity as u64) as usize;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i += 1;
            if i == self.capacity {
                i = 0;
            }
        }
    }

    /// `slot_of` with the probe-chain length counted, for the telemetry
    /// path only — the untracked hot path keeps the leaner loop above.
    #[inline]
    fn slot_of_counted(&self, key: u64) -> (Option<usize>, u64) {
        let mut i = (key % self.capacity as u64) as usize;
        let mut chain = 1u64;
        loop {
            let k = self.keys[i];
            if k == key {
                return (Some(i), chain);
            }
            if k == EMPTY {
                return (None, chain);
            }
            chain += 1;
            i += 1;
            if i == self.capacity {
                i = 0;
            }
        }
    }

    /// Number of live (non-zero) entries.
    pub fn live_entries(&self) -> usize {
        self.live
    }

    /// Load factor of the probe array.
    pub fn load_factor(&self) -> f64 {
        self.live as f64 / self.capacity as f64
    }

    /// Construction-time probe statistics (collision behavior of the
    /// paper's `key mod size` hash at this occupancy).
    pub fn probe_stats(&self) -> ProbeStats {
        self.probe
    }

    /// Inserts `val` under `key`, counting the probe chain.
    #[inline]
    fn insert(&mut self, key: u64, val: f64) {
        let mut i = (key % self.capacity as u64) as usize;
        let mut chain = 1u64;
        while self.keys[i] != EMPTY {
            debug_assert_ne!(self.keys[i], key, "duplicate key");
            chain += 1;
            i += 1;
            if i == self.capacity {
                i = 0;
            }
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.probe.inserts += 1;
        self.probe.probes += chain;
        self.probe.max_probe = self.probe.max_probe.max(chain);
    }
}

impl CountTable for HashCountTable {
    fn from_rows(n: usize, nc: usize, rows: Rows) -> Self {
        assert_eq!(rows.len(), n, "row count must equal vertex count");
        let live: usize = rows
            .iter()
            .flatten()
            .map(|row| {
                assert_eq!(row.len(), nc, "row width must equal colorset count");
                row.iter().filter(|&&x| x != 0.0).count()
            })
            .sum();
        // Factor-of-two occupancy, as the paper sizes its table by a factor
        // of the live range; keep a floor to avoid degenerate mod values.
        let capacity = (2 * live).max(16) + 1;
        let mut table = Self {
            n,
            nc,
            capacity,
            keys: vec![EMPTY; capacity],
            vals: vec![0.0; capacity],
            active: vec![false; n],
            live,
            probe: ProbeStats::default(),
            access: recorder_for(n),
        };
        for (v, row) in rows.into_iter().enumerate() {
            let Some(row) = row else { continue };
            for (cs, &val) in row.iter().enumerate() {
                if val == 0.0 {
                    continue;
                }
                table.active[v] = true;
                table.insert((v * nc + cs) as u64, val);
            }
        }
        table
    }

    fn from_batch_kind(_kind: TableKind, batch: RowBatch) -> Self {
        let n = batch.num_vertices();
        let nc = batch.num_colorsets();
        let live = batch.live_entries();
        let capacity = (2 * live).max(16) + 1;
        let mut table = Self {
            n,
            nc,
            capacity,
            keys: vec![EMPTY; capacity],
            vals: vec![0.0; capacity],
            active: vec![false; n],
            live,
            probe: ProbeStats::default(),
            access: recorder_for(n),
        };
        for v in 0..n {
            let Some(row) = batch.row(v) else { continue };
            for (cs, &val) in row.iter().enumerate() {
                if val == 0.0 {
                    continue;
                }
                table.active[v] = true;
                table.insert((v * nc + cs) as u64, val);
            }
        }
        table
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_colorsets(&self) -> usize {
        self.nc
    }

    #[inline]
    fn get(&self, v: usize, cs: usize) -> f64 {
        if !self.active[v] {
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
            return 0.0;
        }
        let key = (v * self.nc + cs) as u64;
        if let Some(rec) = &self.access {
            rec.note_get(v);
            let (slot, chain) = self.slot_of_counted(key);
            rec.note_probe(chain);
            return match slot {
                Some(i) => self.vals[i],
                None => 0.0,
            };
        }
        match self.slot_of(key) {
            Some(i) => self.vals[i],
            None => 0.0,
        }
    }

    #[inline]
    fn vertex_active(&self, v: usize) -> bool {
        let a = self.active[v];
        if !a {
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
        }
        a
    }

    #[inline]
    fn row_slice(&self, _v: usize) -> Option<&[f64]> {
        None // no contiguous rows in the hashed layout
    }

    #[inline]
    fn has_row_slices(&self) -> bool {
        false
    }

    /// Batched row accumulation: the keys of one row are consecutive
    /// (`v*nc .. v*nc+nc`), and `key mod size` maps consecutive keys to
    /// consecutive home slots — so the division happens once per row and
    /// each subsequent home slot is a wrapping increment. Probe chains and
    /// results are identical to `nc` separate [`CountTable::get`] calls.
    fn add_row_into(&self, v: usize, acc: &mut [f64]) {
        if !self.active[v] {
            if let Some(rec) = &self.access {
                // The per-slot default would hit the inactive check once
                // per colorset; keep the telemetry identical.
                for _ in 0..acc.len() {
                    rec.note_inactive();
                }
            }
            return;
        }
        let base = (v * self.nc) as u64;
        let mut home = (base % self.capacity as u64) as usize;
        for (cs, a) in acc.iter_mut().enumerate() {
            let key = base + cs as u64;
            let mut i = home;
            let mut chain = 1u64;
            loop {
                let k = self.keys[i];
                if k == key {
                    *a += self.vals[i];
                    break;
                }
                if k == EMPTY {
                    break;
                }
                chain += 1;
                i += 1;
                if i == self.capacity {
                    i = 0;
                }
            }
            if let Some(rec) = &self.access {
                rec.note_get(v);
                rec.note_probe(chain);
            }
            home += 1;
            if home == self.capacity {
                home = 0;
            }
        }
    }

    /// Prefetches the probe window a row's consecutive home slots land in,
    /// so a later [`CountTable::add_row_into`] finds the key and value
    /// lines resident. No-op off x86-64.
    fn prefetch_row_hint(&self, v: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if !self.active[v] {
                return;
            }
            let home = ((v * self.nc) as u64 % self.capacity as u64) as usize;
            // The row's nc home slots start here; one line of keys and one
            // of values covers the short chains of a half-loaded table.
            // Safety: prefetch is a hint and the indices are in bounds.
            unsafe {
                _mm_prefetch(self.keys.as_ptr().add(home).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(self.vals.as_ptr().add(home).cast::<i8>(), _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = v;
    }

    fn bytes(&self) -> usize {
        self.keys.capacity() * 8 + self.vals.capacity() * 8 + self.active.capacity()
    }

    fn stats(&self) -> TableStats {
        TableStats {
            allocated_bytes: self.bytes(),
            // The hash layout materializes no rows at all; what it pays for
            // is the probe array, reflected in `allocated_bytes`.
            rows_materialized: self.active.iter().filter(|&&a| a).count(),
            nonzero_rows: self.active.iter().filter(|&&a| a).count(),
            live_entries: self.live,
            probe: Some(self.probe),
            access: self.access.as_ref().map(|rec| rec.snapshot()),
        }
    }

    fn total(&self) -> f64 {
        self.vals.iter().sum()
    }

    fn kind(&self) -> TableKind {
        TableKind::Hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTable;
    use crate::test_support::{check_contract, sample_rows};

    #[test]
    fn satisfies_table_contract() {
        check_contract::<HashCountTable>();
    }

    #[test]
    fn matches_dense_semantics() {
        let rows = sample_rows(57, 11);
        let hash = HashCountTable::from_rows(57, 11, rows.clone());
        let dense = DenseTable::from_rows(57, 11, rows);
        for v in 0..57 {
            for cs in 0..11 {
                assert_eq!(hash.get(v, cs), dense.get(v, cs), "v={v} cs={cs}");
            }
            assert_eq!(hash.vertex_active(v), dense.vertex_active(v));
        }
        assert!((hash.total() - dense.total()).abs() < 1e-9);
    }

    #[test]
    fn wins_big_on_high_selectivity() {
        // 1% of vertices active, one colorset each: the Fig. 7 regime.
        let n = 2000;
        let nc = 128;
        let rows: Rows = (0..n)
            .map(|v| {
                if v % 100 == 0 {
                    let mut r = vec![0.0; nc].into_boxed_slice();
                    r[v % nc] = 1.0;
                    Some(r)
                } else {
                    None
                }
            })
            .collect();
        let hash = HashCountTable::from_rows(n, nc, rows.clone());
        let dense = DenseTable::from_rows(n, nc, rows);
        assert!(
            hash.bytes() * 10 < dense.bytes(),
            "hash {} vs dense {}",
            hash.bytes(),
            dense.bytes()
        );
        assert_eq!(hash.live_entries(), 20);
        assert!(hash.load_factor() <= 0.5 + 1e-9);
    }

    #[test]
    fn empty_table() {
        let t = HashCountTable::from_rows(5, 4, vec![None; 5]);
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.total(), 0.0);
        for v in 0..5 {
            assert!(!t.vertex_active(v));
            assert_eq!(t.get(v, 3), 0.0);
        }
    }

    #[test]
    fn probes_resolve_collisions() {
        // Capacity is ~2x live; adjacent keys force probe chains. Verify
        // every key still resolves.
        let n = 64;
        let nc = 4;
        let rows: Rows = (0..n)
            .map(|v| {
                let mut r = vec![0.0; nc].into_boxed_slice();
                for cs in 0..nc {
                    r[cs] = (v * nc + cs) as f64 + 0.5;
                }
                Some(r)
            })
            .collect();
        let t = HashCountTable::from_rows(n, nc, rows);
        for v in 0..n {
            for cs in 0..nc {
                assert_eq!(t.get(v, cs), (v * nc + cs) as f64 + 0.5);
            }
        }
    }
}

#[cfg(test)]
mod adversarial_tests {
    use super::*;

    /// Keys that all collide modulo a small capacity still resolve.
    #[test]
    fn dense_cluster_of_keys_probes_through() {
        // One vertex, many colorsets: keys 0..nc are consecutive — the
        // worst case for linear probing at 50% load.
        let nc = 512;
        let row: Box<[f64]> = (0..nc).map(|i| (i + 1) as f64).collect();
        let t = HashCountTable::from_rows(1, nc, vec![Some(row)]);
        for cs in 0..nc {
            assert_eq!(t.get(0, cs), (cs + 1) as f64);
        }
        assert_eq!(t.live_entries(), nc);
    }

    /// Sparse huge-key space: vertex ids near u32 range keep keys in u64.
    #[test]
    fn large_vertex_ids_do_not_overflow() {
        let n = 3_000_000;
        let nc = 924; // C(12, 6)
        let mut rows: Rows = Vec::new();
        rows.resize_with(n, || None);
        let mut row = vec![0.0; nc].into_boxed_slice();
        row[nc - 1] = 42.0;
        rows[n - 1] = Some(row);
        let t = HashCountTable::from_rows(n, nc, rows);
        assert_eq!(t.get(n - 1, nc - 1), 42.0);
        assert_eq!(t.get(n - 2, nc - 1), 0.0);
        assert_eq!(t.live_entries(), 1);
    }

    #[test]
    fn totals_are_stable_under_probe_order() {
        let rows = crate::test_support::sample_rows(101, 13);
        let t1 = HashCountTable::from_rows(101, 13, rows.clone());
        let t2 = HashCountTable::from_rows(101, 13, rows);
        assert_eq!(t1.total(), t2.total());
        assert_eq!(t1.live_entries(), t2.live_entries());
    }
}
