//! The naive dense table: `n x Nc` fully allocated.
//!
//! This is the paper's baseline memory scheme ("initializing all storage
//! regardless of need"). It has the fastest accesses (single multiply-add
//! indexing) but the worst footprint; Figures 6–7 compare it against the
//! lazy and hashed layouts.

use crate::access::{recorder_for, AccessRecorder};
use crate::{CountTable, RowBatch, Rows, TableKind, TableStats};
use std::sync::Arc;

/// Flat row-major `n x Nc` array of counts.
#[derive(Debug, Clone)]
pub struct DenseTable {
    n: usize,
    nc: usize,
    data: Vec<f64>,
    /// Cached per-vertex activity (any non-zero in the row), kept so the
    /// inner-loop skip check stays O(1) instead of O(Nc).
    active: Vec<bool>,
    /// Opt-in access telemetry; excluded from `bytes()` accounting.
    access: Option<Arc<AccessRecorder>>,
}

impl CountTable for DenseTable {
    fn from_rows(n: usize, nc: usize, rows: Rows) -> Self {
        assert_eq!(rows.len(), n, "row count must equal vertex count");
        let mut data = vec![0.0f64; n * nc];
        let mut active = vec![false; n];
        for (v, row) in rows.into_iter().enumerate() {
            if let Some(row) = row {
                assert_eq!(row.len(), nc, "row width must equal colorset count");
                let is_active = row.iter().any(|&x| x != 0.0);
                data[v * nc..(v + 1) * nc].copy_from_slice(&row);
                active[v] = is_active;
            }
        }
        Self {
            n,
            nc,
            data,
            active,
            access: recorder_for(n),
        }
    }

    fn from_batch_kind(_kind: TableKind, batch: RowBatch) -> Self {
        let n = batch.num_vertices();
        let nc = batch.num_colorsets();
        let mut data = vec![0.0f64; n * nc];
        let mut active = vec![false; n];
        for v in 0..n {
            if let Some(row) = batch.row(v) {
                data[v * nc..(v + 1) * nc].copy_from_slice(row);
                // Committed rows are active by the staging contract (the
                // kernel commits only non-zero rows), matching the lazy
                // arena's slot semantics without rescanning every row.
                active[v] = true;
            }
        }
        Self {
            n,
            nc,
            data,
            active,
            access: recorder_for(n),
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_colorsets(&self) -> usize {
        self.nc
    }

    #[inline]
    fn get(&self, v: usize, cs: usize) -> f64 {
        if let Some(rec) = &self.access {
            rec.note_get(v);
        }
        self.data[v * self.nc + cs]
    }

    #[inline]
    fn vertex_active(&self, v: usize) -> bool {
        let a = self.active[v];
        if !a {
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
        }
        a
    }

    #[inline]
    fn row_slice(&self, v: usize) -> Option<&[f64]> {
        if self.active[v] {
            if let Some(rec) = &self.access {
                rec.note_row_read(v);
            }
            Some(&self.data[v * self.nc..(v + 1) * self.nc])
        } else {
            // A slice miss doubles as the activity check (see
            // `CountTable::has_row_slices`), so account it as one.
            if let Some(rec) = &self.access {
                rec.note_inactive();
            }
            None
        }
    }

    fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>() + self.active.capacity()
    }

    fn stats(&self) -> TableStats {
        TableStats {
            allocated_bytes: self.bytes(),
            // Dense pays for every row whether or not it is used.
            rows_materialized: self.n,
            nonzero_rows: self.active.iter().filter(|&&a| a).count(),
            live_entries: self.data.iter().filter(|&&x| x != 0.0).count(),
            probe: None,
            access: self.access.as_ref().map(|rec| rec.snapshot()),
        }
    }

    fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    fn kind(&self) -> TableKind {
        TableKind::Dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::check_contract;

    #[test]
    fn satisfies_table_contract() {
        check_contract::<DenseTable>();
    }

    #[test]
    fn bytes_are_full_allocation() {
        let rows: Rows = vec![None; 10];
        let t = DenseTable::from_rows(10, 5, rows);
        // Dense always pays the full n * nc doubles.
        assert!(t.bytes() >= 10 * 5 * 8);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn empty_rows_read_as_zero() {
        let t = DenseTable::from_rows(3, 2, vec![None, None, None]);
        for v in 0..3 {
            assert!(!t.vertex_active(v));
            assert_eq!(t.get(v, 0), 0.0);
            assert!(t.row_slice(v).is_none());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_row_count() {
        DenseTable::from_rows(3, 2, vec![None, None]);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_row_width() {
        DenseTable::from_rows(1, 2, vec![Some(vec![1.0].into_boxed_slice())]);
    }
}
