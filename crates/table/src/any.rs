//! A layout-erased table that can pick its representation at run time.
//!
//! The engine's memory-budget degradation (DESIGN.md §11) needs a *per
//! subtemplate* layout decision: a size-4 subtemplate may fit dense while
//! the size-7 parent must fall back to hashed. The concrete layouts are
//! monomorphized into the DP, so [`AnyTable`] wraps all three behind one
//! type and dispatches [`CountTable::from_rows_kind`] on the requested
//! [`TableKind`] — the virtual-dispatch cost is paid only when a budget is
//! configured.

use crate::{
    CountTable, DenseTable, HashCountTable, LazyTable, RowBatch, Rows, TableKind, TableStats,
};

/// One of the three layouts, chosen at construction time.
#[derive(Debug, Clone)]
pub enum AnyTable {
    /// Naive dense array.
    Dense(DenseTable),
    /// Lazily materialized rows.
    Lazy(LazyTable),
    /// Modulo-hashed sparse table.
    Hash(HashCountTable),
}

macro_rules! dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            AnyTable::Dense($t) => $body,
            AnyTable::Lazy($t) => $body,
            AnyTable::Hash($t) => $body,
        }
    };
}

impl CountTable for AnyTable {
    /// Defaults to the lazy layout (the engine's default kind).
    fn from_rows(n: usize, nc: usize, rows: Rows) -> Self {
        AnyTable::Lazy(LazyTable::from_rows(n, nc, rows))
    }

    fn from_rows_kind(kind: TableKind, n: usize, nc: usize, rows: Rows) -> Self {
        match kind {
            TableKind::Dense => AnyTable::Dense(DenseTable::from_rows(n, nc, rows)),
            TableKind::Lazy => AnyTable::Lazy(LazyTable::from_rows(n, nc, rows)),
            TableKind::Hash => AnyTable::Hash(HashCountTable::from_rows(n, nc, rows)),
        }
    }

    fn from_batch_kind(kind: TableKind, batch: RowBatch) -> Self {
        match kind {
            TableKind::Dense => AnyTable::Dense(DenseTable::from_batch_kind(kind, batch)),
            TableKind::Lazy => AnyTable::Lazy(LazyTable::from_batch_kind(kind, batch)),
            TableKind::Hash => AnyTable::Hash(HashCountTable::from_batch_kind(kind, batch)),
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        dispatch!(self, t => t.num_vertices())
    }

    #[inline]
    fn num_colorsets(&self) -> usize {
        dispatch!(self, t => t.num_colorsets())
    }

    #[inline]
    fn get(&self, v: usize, cs: usize) -> f64 {
        dispatch!(self, t => t.get(v, cs))
    }

    #[inline]
    fn vertex_active(&self, v: usize) -> bool {
        dispatch!(self, t => t.vertex_active(v))
    }

    #[inline]
    fn row_slice(&self, v: usize) -> Option<&[f64]> {
        dispatch!(self, t => t.row_slice(v))
    }

    #[inline]
    fn has_row_slices(&self) -> bool {
        dispatch!(self, t => t.has_row_slices())
    }

    #[inline]
    fn add_row_into(&self, v: usize, acc: &mut [f64]) {
        dispatch!(self, t => t.add_row_into(v, acc))
    }

    #[inline]
    fn prefetch_row_hint(&self, v: usize) {
        dispatch!(self, t => t.prefetch_row_hint(v))
    }

    fn bytes(&self) -> usize {
        dispatch!(self, t => t.bytes())
    }

    fn stats(&self) -> TableStats {
        dispatch!(self, t => t.stats())
    }

    fn total(&self) -> f64 {
        dispatch!(self, t => t.total())
    }

    fn kind(&self) -> TableKind {
        dispatch!(self, t => t.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_contract, sample_rows};
    use crate::{projected_bytes, prune_zero_rows};

    #[test]
    fn satisfies_table_contract() {
        check_contract::<AnyTable>();
    }

    #[test]
    fn dispatches_each_kind() {
        let (n, nc) = (19, 5);
        for kind in TableKind::all() {
            let t = AnyTable::from_rows_kind(kind, n, nc, sample_rows(n, nc));
            assert_eq!(t.kind(), kind);
            let direct = LazyTable::from_rows(n, nc, sample_rows(n, nc));
            assert_eq!(t.total(), direct.total(), "kind {kind:?}");
        }
    }

    #[test]
    fn projection_matches_built_bytes() {
        let (n, nc) = (200, 12);
        let mut rows = sample_rows(n, nc);
        prune_zero_rows(&mut rows);
        let active = rows.iter().filter(|r| r.is_some()).count();
        let live: usize = rows
            .iter()
            .flatten()
            .map(|r| r.iter().filter(|&&x| x != 0.0).count())
            .sum();
        for kind in TableKind::all() {
            let projected = projected_bytes(kind, n, nc, active, live);
            let built = AnyTable::from_rows_kind(kind, n, nc, rows.clone()).bytes();
            assert_eq!(projected, built, "kind {kind:?}");
        }
    }

    #[test]
    fn ladder_never_steps_up() {
        assert_eq!(TableKind::Dense.ladder().len(), 3);
        assert_eq!(
            TableKind::Lazy.ladder(),
            &[TableKind::Lazy, TableKind::Hash]
        );
        assert_eq!(TableKind::Hash.ladder(), &[TableKind::Hash]);
        for kind in TableKind::all() {
            assert_eq!(
                kind.ladder()[0],
                kind,
                "ladder starts at the preferred kind"
            );
        }
    }
}
