//! Connected components and largest-component extraction.
//!
//! The paper analyzes only the largest connected component of every input
//! network (§IV-A); [`largest_component`] reproduces that preprocessing,
//! relabeling the surviving vertices densely.

use crate::csr::Graph;

/// Per-vertex component ids (`0..num_components`), assigned by BFS in
/// ascending order of the smallest vertex in each component.
pub fn component_ids(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut ids = vec![u32::MAX; n];
    let mut next_id = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if ids[start] != u32::MAX {
            continue;
        }
        ids[start] = next_id;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v as usize) {
                if ids[u as usize] == u32::MAX {
                    ids[u as usize] = next_id;
                    queue.push_back(u);
                }
            }
        }
        next_id += 1;
    }
    (ids, next_id as usize)
}

/// Extracts the largest connected component as a new graph with dense
/// vertex ids, returning it together with the mapping from new ids back to
/// the original vertex ids.
///
/// Ties are broken toward the component containing the smallest vertex.
/// The empty graph maps to itself.
pub fn largest_component(g: &Graph) -> (Graph, Vec<u32>) {
    let n = g.num_vertices();
    if n == 0 {
        return (Graph::from_edges(0, &[]), Vec::new());
    }
    let (ids, num) = component_ids(g);
    let mut sizes = vec![0usize; num];
    for &id in &ids {
        sizes[id as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .expect("non-empty graph has a component");

    let mut new_id = vec![u32::MAX; n];
    let mut back = Vec::with_capacity(sizes[best as usize]);
    for v in 0..n {
        if ids[v] == best {
            new_id[v] = back.len() as u32;
            back.push(v as u32);
        }
    }
    let mut edges = Vec::new();
    for &v in &back {
        for &u in g.neighbors(v as usize) {
            if v < u && ids[u as usize] == best {
                edges.push((new_id[v as usize], new_id[u as usize]));
            }
        }
    }
    (Graph::from_edges(back.len(), &edges), back)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_vertices() == 0 {
        return true;
    }
    component_ids(g).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components_identified() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (ids, num) = component_ids(&g);
        assert_eq!(num, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
        assert_ne!(ids[3], ids[5]);
    }

    #[test]
    fn largest_component_extracts_and_relabels() {
        let g = Graph::from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]);
        let (lcc, back) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 3);
        assert_eq!(lcc.num_edges(), 3); // triangle
        assert_eq!(back, vec![2, 3, 4]);
        assert!(lcc.has_edge(0, 1) && lcc.has_edge(1, 2) && lcc.has_edge(0, 2));
    }

    #[test]
    fn connected_graph_is_its_own_lcc() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        let (lcc, back) = largest_component(&g);
        assert_eq!(lcc, g);
        assert_eq!(back, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::from_edges(3, &[]);
        let (_, num) = component_ids(&g);
        assert_eq!(num, 3);
        assert!(!is_connected(&g));
        let (lcc, back) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 1);
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn empty_graph_handled() {
        let g = Graph::from_edges(0, &[]);
        assert!(is_connected(&g));
        let (lcc, back) = largest_component(&g);
        assert_eq!(lcc.num_vertices(), 0);
        assert!(back.is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lcc_is_connected_and_at_least_as_big_as_others(
            n in 1usize..30,
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            let g = Graph::from_edges(n, &edges);
            let (ids, num) = component_ids(&g);
            let mut sizes = vec![0usize; num];
            for &id in &ids { sizes[id as usize] += 1; }
            let (lcc, back) = largest_component(&g);
            prop_assert!(is_connected(&lcc));
            prop_assert_eq!(lcc.num_vertices(), *sizes.iter().max().unwrap());
            // back-mapping preserves adjacency
            for v in 0..lcc.num_vertices() {
                for &u in lcc.neighbors(v) {
                    prop_assert!(g.has_edge(back[v] as usize, back[u as usize] as usize));
                }
            }
        }
    }
}
