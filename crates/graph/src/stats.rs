//! Graph statistics used to audit dataset stand-ins.
//!
//! The substitutions of DESIGN.md §3 claim to match degree structure;
//! these helpers quantify that: degree histograms, global and average
//! local clustering, and triangle counts (the clustering numbers also
//! sanity-check the triangle DP base case).

use crate::csr::Graph;

/// Histogram of vertex degrees: `hist[d]` = number of vertices of degree
/// `d` (length `max_degree + 1`; empty graph gives `[0]`-like vec of 1).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Number of triangles in the graph (each counted once), via sorted
/// adjacency intersections over each edge's higher endpoint.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.num_vertices() {
        let nu = g.neighbors(u);
        for &v in nu {
            let v = v as usize;
            if v <= u {
                continue;
            }
            // Count w > v adjacent to both u and v.
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if (nu[i] as usize) > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Global clustering coefficient: `3 * triangles / open-or-closed wedges`
/// (0 when the graph has no wedge).
pub fn global_clustering(g: &Graph) -> f64 {
    let wedges: u64 = (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

/// Average local clustering coefficient (vertices of degree < 2 count 0,
/// following the common convention).
pub fn average_local_clustering(g: &Graph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for v in 0..n {
        let d = g.degree(v);
        if d < 2 {
            continue;
        }
        let neigh = g.neighbors(v);
        let mut links = 0u64;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if g.has_edge(a as usize, b as usize) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (d * (d - 1)) as f64;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gnm, watts_strogatz};

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn k4_statistics() {
        let g = k4();
        assert_eq!(triangle_count(&g), 4);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((average_local_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(degree_histogram(&g), vec![0, 0, 0, 4]);
    }

    #[test]
    fn trees_have_no_triangles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
    }

    #[test]
    fn triangle_count_matches_wedge_closure_formula_on_small_er() {
        // Cross-check against a brute-force O(n^3) count.
        let g = gnm(40, 160, 3);
        let mut brute = 0u64;
        for a in 0..40 {
            for b in (a + 1)..40 {
                for c in (b + 1)..40 {
                    if g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }

    #[test]
    fn small_world_clusters_more_than_random() {
        let ws = watts_strogatz(300, 8, 0.05, 7);
        let er = gnm(300, ws.num_edges(), 7);
        assert!(
            average_local_clustering(&ws) > 3.0 * average_local_clustering(&er),
            "WS {} vs ER {}",
            average_local_clustering(&ws),
            average_local_clustering(&er)
        );
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = gnm(100, 300, 11);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 100);
        // Handshake via histogram.
        let m2: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(m2, 600);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
    }
}
