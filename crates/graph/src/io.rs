//! Plain-text edge-list I/O.
//!
//! Format matches common SNAP-style dumps: one `u v` pair per line,
//! whitespace separated; lines starting with `#` or `%` are comments;
//! tokens after the first two are ignored (some dumps carry weights).
//! Vertex ids need not be dense — they are compacted on load.
//!
//! The reader is written for adversarial input (fuzzed or corrupted
//! files): every failure is a typed [`IoError`] carrying line and byte
//! context, never a panic, and floods of self-loops or duplicate edges
//! are dropped (and counted in [`ReadStats`]) rather than amplified into
//! CSR memory.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::csr::Graph;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Longest slice of an offending line echoed back in an error message;
/// keeps adversarial multi-megabyte lines out of logs.
const ERR_CONTEXT_CHARS: usize = 80;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error (open/create/write).
    Io(std::io::Error),
    /// Reading a specific line failed (truncated stream, invalid UTF-8).
    Read {
        /// 1-based line where the stream broke off.
        line: usize,
        /// Byte offset of that line's start.
        byte: usize,
        /// The underlying reader error.
        source: std::io::Error,
    },
    /// A data line whose first two tokens are not valid vertex ids
    /// (missing token, non-numeric text, or a value overflowing `u64`).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Byte offset of the line's start within the input.
        byte: usize,
        /// The offending line, truncated to a bounded length.
        content: String,
    },
    /// More distinct vertex ids than the CSR's `u32` index can address.
    TooManyVertices {
        /// Distinct ids seen.
        distinct: usize,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Read { line, byte, source } => {
                write!(f, "read failed at line {line} (byte {byte}): {source}")
            }
            IoError::Parse {
                line,
                byte,
                content,
            } => {
                write!(
                    f,
                    "cannot parse edge on line {line} (byte {byte}): {content:?}"
                )
            }
            IoError::TooManyVertices { distinct } => {
                write!(
                    f,
                    "{distinct} distinct vertex ids exceed the 2^32-1 the CSR index supports"
                )
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) | IoError::Read { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// What the loader dropped or compacted while reading (self-loop and
/// duplicate floods are absorbed here instead of inflating the graph).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReadStats {
    /// Lines read, including comments and blanks.
    pub lines: usize,
    /// Comment or blank lines skipped.
    pub skipped: usize,
    /// `u u` edges dropped (the counting engine is simple-graph only).
    pub self_loops: usize,
    /// Repeated `{u, v}` pairs dropped after normalization.
    pub duplicate_edges: usize,
    /// Distinct undirected edges kept in the graph.
    pub edges_kept: usize,
}

/// Parses an edge list from a reader; returns the graph and the mapping
/// from dense ids back to original ids (sorted ascending).
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let (g, ids, _) = read_edge_list_stats(reader)?;
    Ok((g, ids))
}

/// As [`read_edge_list`], also reporting what was dropped on the way in.
pub fn read_edge_list_stats<R: BufRead>(
    reader: R,
) -> Result<(Graph, Vec<u64>, ReadStats), IoError> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut stats = ReadStats::default();
    let mut byte = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        stats.lines += 1;
        let line = line.map_err(|source| IoError::Read {
            line: lineno + 1,
            byte,
            source,
        })?;
        let line_start = byte;
        byte += line.len() + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            stats.skipped += 1;
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) if u == v => stats.self_loops += 1,
            // Normalize on the way in so the dedup below catches both
            // orientations of the same undirected edge.
            (Some(u), Some(v)) => raw_edges.push((u.min(v), u.max(v))),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    byte: line_start,
                    content: t.chars().take(ERR_CONTEXT_CHARS).collect(),
                })
            }
        }
    }
    // Drop duplicate floods before they reach id compaction.
    raw_edges.sort_unstable();
    let before = raw_edges.len();
    raw_edges.dedup();
    stats.duplicate_edges = before - raw_edges.len();
    stats.edges_kept = raw_edges.len();

    // Compact ids.
    let mut ids: Vec<u64> = raw_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() > u32::MAX as usize {
        return Err(IoError::TooManyVertices {
            distinct: ids.len(),
        });
    }
    let index: HashMap<u64, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, i as u32))
        .collect();
    let edges: Vec<(u32, u32)> = raw_edges
        .iter()
        .map(|&(u, v)| (index[&u], index[&v]))
        .collect();
    Ok((Graph::from_edges(ids.len(), &edges), ids, stats))
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as an edge list (`u v` per line, `u < v`).
pub fn write_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# fascia edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    type R = Result<(), IoError>;

    #[test]
    fn parses_with_comments_and_gaps() -> R {
        let text = "# header\n10 20\n20 30\n\n% more\n10 30\n";
        let (g, ids) = read_edge_list(Cursor::new(text))?;
        assert_eq!(ids, vec![10, 20, 30]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        Ok(())
    }

    #[test]
    fn rejects_garbage_with_line_and_byte_context() {
        match read_edge_list(Cursor::new("1 2\nfoo bar\n")) {
            Err(IoError::Parse { line, byte, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(byte, 4);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn truncated_line_is_a_parse_error() {
        match read_edge_list(Cursor::new("1 2\n3\n")) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn overflowing_vertex_id_is_a_parse_error() {
        // One digit past u64::MAX.
        let text = format!("1 {}0\n", u64::MAX);
        assert!(matches!(
            read_edge_list(Cursor::new(text)),
            Err(IoError::Parse { line: 1, .. })
        ));
        // u64::MAX itself is fine — ids are compacted.
        let text = format!("1 {}\n", u64::MAX);
        match read_edge_list(Cursor::new(text)) {
            Ok((g, ids)) => {
                assert_eq!(g.num_vertices(), 2);
                assert_eq!(ids, vec![1, u64::MAX]);
            }
            Err(e) => panic!("should accept u64::MAX ids: {e}"),
        }
    }

    #[test]
    fn long_adversarial_lines_are_truncated_in_errors() {
        let text = format!("1 2\nx{}\n", "y".repeat(1 << 20));
        match read_edge_list(Cursor::new(text)) {
            Err(IoError::Parse { content, .. }) => {
                assert!(content.chars().count() <= ERR_CONTEXT_CHARS)
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn self_loop_and_duplicate_floods_are_dropped_and_counted() -> R {
        let mut text = String::new();
        for _ in 0..10_000 {
            text.push_str("5 5\n");
            text.push_str("1 2\n");
            text.push_str("2 1\n");
        }
        text.push_str("2 3\n");
        let (g, ids, stats) = read_edge_list_stats(Cursor::new(&text))?;
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.self_loops, 10_000);
        assert_eq!(stats.duplicate_edges, 2 * 10_000 - 1);
        assert_eq!(stats.edges_kept, 2);
        assert_eq!(stats.lines, 30_001);
        Ok(())
    }

    #[test]
    fn invalid_utf8_is_a_read_error_with_context() {
        let bytes: &[u8] = b"1 2\n\xff\xfe broken\n";
        match read_edge_list(Cursor::new(bytes)) {
            Err(IoError::Read { line, byte, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(byte, 4);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn extra_tokens_are_ignored() -> R {
        let (g, ids) = read_edge_list(Cursor::new("1 2 0.75\n2 3 weight\n"))?;
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(g.num_edges(), 2);
        Ok(())
    }

    #[test]
    fn round_trip_via_tempfile() -> R {
        let dir = std::env::temp_dir().join("fascia_io_test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("g.txt");
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        write_edge_list(&g, &path)?;
        let (g2, ids) = load_edge_list(&path)?;
        assert_eq!(g2, g);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn empty_input_is_empty_graph() -> R {
        let (g, ids) = read_edge_list(Cursor::new("# nothing\n"))?;
        assert_eq!(g.num_vertices(), 0);
        assert!(ids.is_empty());
        Ok(())
    }
}
