//! Plain-text edge-list I/O.
//!
//! Format matches common SNAP-style dumps: one `u v` pair per line,
//! whitespace separated; lines starting with `#` or `%` are comments.
//! Vertex ids need not be dense — they are compacted on load.

use crate::csr::Graph;
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    Io(std::io::Error),
    /// A data line that is not two integers.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from a reader; returns the graph and the mapping
/// from dense ids back to original ids (sorted ascending).
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => raw_edges.push((u, v)),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: t.to_string(),
                })
            }
        }
    }
    // Compact ids.
    let mut ids: Vec<u64> = raw_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let index: HashMap<u64, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, i as u32))
        .collect();
    let edges: Vec<(u32, u32)> = raw_edges
        .iter()
        .map(|&(u, v)| (index[&u], index[&v]))
        .collect();
    Ok((Graph::from_edges(ids.len(), &edges), ids))
}

/// Loads an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes a graph as an edge list (`u v` per line, `u < v`).
pub fn write_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# fascia edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_with_comments_and_gaps() {
        let text = "# header\n10 20\n20 30\n\n% more\n10 30\n";
        let (g, ids) = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(ids, vec![10, 20, 30]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list(Cursor::new("1 2\nfoo bar\n")).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join("fascia_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        write_edge_list(&g, &path).unwrap();
        let (g2, ids) = load_edge_list(&path).unwrap();
        assert_eq!(g2, g);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let (g, ids) = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert!(ids.is_empty());
    }
}
