//! Compressed sparse row (CSR) undirected graph.
//!
//! Vertices are dense `u32` identifiers `0..n`. The adjacency of each vertex
//! is stored sorted, enabling `O(log d)` edge queries. All FASCIA kernels
//! only need `neighbors(v)` scans, which CSR serves with perfect locality —
//! the layout matters because >90% of counting time is spent streaming
//! neighbor lists against DP-table rows (paper §V-A).

/// An immutable undirected graph in CSR form.
///
/// Self-loops and parallel edges are removed at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj` with v's neighbors (sorted).
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; every undirected edge appears
    /// twice (once per endpoint).
    adj: Vec<u32>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Edges may appear in any orientation and with duplicates; self-loops
    /// and repeated edges are dropped. Endpoints must be `< n`.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of range for n = {n}"
            );
        }
        // Count degrees over deduplicated edges. Normalize, sort, dedup.
        let mut norm: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        norm.sort_unstable();
        norm.dedup();

        let mut degree = vec![0usize; n];
        for &(u, v) in &norm {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0u32; acc];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &norm {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list was filled from a globally sorted edge list, so the
        // `v` sides are sorted already, but the `u` side entries interleave;
        // sort each list to guarantee the invariant.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self { offsets, adj }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Maximum vertex degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average vertex degree `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.adj.len() as f64 / self.num_vertices() as f64
    }

    /// All undirected edges, each once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() {
            for &v in self.neighbors(u) {
                if (u as u32) < v {
                    out.push((u as u32, v));
                }
            }
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.adj.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_sorts_adjacency() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 3), (1, 0), (4, 0)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3, 4]);
        assert_eq!(g.neighbors(3), &[0, 1]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn dedups_and_removes_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn degree_statistics() {
        // Star on 5 vertices centered at 0.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.max_degree(), 4);
        assert!((g.avg_degree() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn edges_round_trip() {
        let input = vec![(0u32, 1u32), (1, 2), (0, 4), (3, 4)];
        let g = Graph::from_edges(5, &input);
        let mut got = g.edges();
        got.sort_unstable();
        let mut want = input.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        let g2 = Graph::from_edges(5, &got);
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_edge() {
        Graph::from_edges(2, &[(0, 2)]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn handshake_and_symmetry(
            n in 1usize..40,
            raw in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            let g = Graph::from_edges(n, &edges);
            // Handshake: sum of degrees = 2m.
            let degsum: usize = (0..n).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.num_edges());
            // Symmetry: u in N(v) iff v in N(u); no self loops.
            for v in 0..n {
                for &u in g.neighbors(v) {
                    prop_assert!(u as usize != v);
                    prop_assert!(g.has_edge(u as usize, v));
                }
                // Sorted, no duplicates.
                for w in g.neighbors(v).windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }
}
