//! Named dataset registry mirroring Table I of the paper.
//!
//! Each [`Dataset`] carries the paper's reported size (`n`, `m`, average and
//! maximum degree) and generates a seeded synthetic stand-in with matched
//! size and degree structure (DESIGN.md §3 documents every substitution).
//! As in the paper, only the largest connected component is returned.
//!
//! The two million-vertex networks accept a `scale` divisor so experiments
//! can run at laptop scale by default (the figure binaries read
//! `FASCIA_SCALE`, defaulting to 64) and at paper scale with `--full`.

use crate::components::largest_component;
use crate::csr::Graph;
use crate::gen;

/// The ten networks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Synthetic social contact network of Portland (NDSSL); R-MAT stand-in.
    Portland,
    /// Enron email network; Barabási–Albert stand-in.
    Enron,
    /// The paper's own Erdős–Rényi graph matched to Enron's size.
    Gnp,
    /// Slashdot community snapshot; Barabási–Albert stand-in.
    Slashdot,
    /// Pennsylvania road network; grid road stand-in.
    PaRoad,
    /// ISCAS89 s420 electrical circuit; random connected stand-in.
    Circuit,
    /// E. coli protein-interaction network (DIP); duplication–divergence.
    EColi,
    /// S. cerevisiae (yeast) PPI network (DIP); duplication–divergence.
    SCerevisiae,
    /// H. pylori PPI network (DIP); duplication–divergence.
    HPylori,
    /// C. elegans (roundworm) PPI network (DIP); duplication–divergence.
    CElegans,
}

/// Paper-reported statistics for one Table I network.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short display name as used in the paper.
    pub name: &'static str,
    /// Vertices in the paper's largest connected component.
    pub n: usize,
    /// Edges in the paper's largest connected component.
    pub m: usize,
    /// Average degree reported in Table I.
    pub d_avg: f64,
    /// Maximum degree reported in Table I.
    pub d_max: usize,
    /// Whether the network is large enough that `scale` applies.
    pub scalable: bool,
}

impl Dataset {
    /// All ten datasets in Table I order.
    pub fn all() -> [Dataset; 10] {
        use Dataset::*;
        [
            Portland,
            Enron,
            Gnp,
            Slashdot,
            PaRoad,
            Circuit,
            EColi,
            SCerevisiae,
            HPylori,
            CElegans,
        ]
    }

    /// The four protein-interaction networks (motif-finding experiments).
    pub fn ppi() -> [Dataset; 4] {
        use Dataset::*;
        [EColi, SCerevisiae, HPylori, CElegans]
    }

    /// Paper-reported statistics (Table I).
    pub fn spec(&self) -> DatasetSpec {
        use Dataset::*;
        match self {
            Portland => DatasetSpec {
                name: "Portland",
                n: 1_588_212,
                m: 31_204_286,
                d_avg: 39.3,
                d_max: 275,
                scalable: true,
            },
            Enron => DatasetSpec {
                name: "Enron",
                n: 33_696,
                m: 180_811,
                d_avg: 10.7,
                d_max: 1383,
                scalable: false,
            },
            Gnp => DatasetSpec {
                name: "G(n,p)",
                n: 33_696,
                m: 181_044,
                d_avg: 10.7,
                d_max: 27,
                scalable: false,
            },
            Slashdot => DatasetSpec {
                name: "Slashdot",
                n: 82_168,
                m: 438_643,
                d_avg: 10.7,
                d_max: 2510,
                scalable: false,
            },
            PaRoad => DatasetSpec {
                name: "PA Road Net",
                n: 1_090_917,
                m: 1_541_898,
                d_avg: 2.8,
                d_max: 9,
                scalable: true,
            },
            Circuit => DatasetSpec {
                name: "Elec. Circuit",
                n: 252,
                m: 399,
                d_avg: 3.1,
                d_max: 14,
                scalable: false,
            },
            EColi => DatasetSpec {
                name: "E. coli",
                n: 2_546,
                m: 11_520,
                d_avg: 9.0,
                d_max: 178,
                scalable: false,
            },
            SCerevisiae => DatasetSpec {
                name: "S. cerevisiae",
                n: 5_021,
                m: 22_119,
                d_avg: 8.8,
                d_max: 289,
                scalable: false,
            },
            HPylori => DatasetSpec {
                name: "H. pylori",
                n: 687,
                m: 1_352,
                d_avg: 3.9,
                d_max: 54,
                scalable: false,
            },
            CElegans => DatasetSpec {
                name: "C. elegans",
                n: 2_391,
                m: 3_831,
                d_avg: 3.2,
                d_max: 187,
                scalable: false,
            },
        }
    }

    /// Generates the synthetic stand-in at `1/scale` of paper size (scale
    /// applies only to the two scalable networks; pass 1 for paper scale)
    /// and extracts its largest connected component, as the paper does.
    ///
    /// ```
    /// use fascia_graph::Dataset;
    /// let g = Dataset::Circuit.generate(1, 42);
    /// assert_eq!(g.num_vertices(), 252);
    /// assert_eq!(g.num_edges(), 399);
    /// ```
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn generate(&self, scale: usize, seed: u64) -> Graph {
        assert!(scale >= 1, "scale is a divisor; use 1 for paper scale");
        let spec = self.spec();
        let scale = if spec.scalable { scale } else { 1 };
        let n = (spec.n / scale).max(64);
        let m = (spec.m / scale).max(n);
        let raw = match self {
            Dataset::Portland => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                // Mild skew: the Portland contact network is dense but
                // nearly flat (d_max / d_avg ~ 7 in Table I); Graph500-style
                // parameters would produce 100x hubs and a different
                // workload.
                let params = gen::rmat::RmatParams {
                    a: 0.35,
                    b: 0.25,
                    c: 0.25,
                    d: 0.15,
                };
                gen::rmat(bits, m, params, seed)
            }
            Dataset::Enron | Dataset::Slashdot => {
                let m_per = (m / n).max(1);
                gen::barabasi_albert(n, m_per, m, seed)
            }
            Dataset::Gnp => gen::gnm(n, m, seed),
            Dataset::PaRoad => {
                let rows = (n as f64).sqrt().round() as usize;
                let cols = n.div_ceil(rows);
                let grid_n = rows * cols;
                let grid_max = rows * (cols - 1) + cols * (rows - 1);
                let target_m = m.clamp(grid_n - 1, grid_max);
                gen::road_grid(rows, cols, target_m, seed)
            }
            Dataset::Circuit => gen::random_connected(n, m, seed),
            Dataset::EColi | Dataset::SCerevisiae | Dataset::HPylori | Dataset::CElegans => {
                gen::duplication_divergence_target_m(n, m, seed)
            }
        };
        largest_component(&raw).0
    }
}

/// Reads the experiment scale divisor from `FASCIA_SCALE` (default 64).
pub fn scale_from_env() -> usize {
    std::env::var("FASCIA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn registry_matches_table_one() {
        assert_eq!(Dataset::all().len(), 10);
        let spec = Dataset::Portland.spec();
        assert_eq!(spec.n, 1_588_212);
        assert_eq!(spec.m, 31_204_286);
        let hp = Dataset::HPylori.spec();
        assert_eq!((hp.n, hp.m), (687, 1_352));
    }

    #[test]
    fn small_networks_generate_at_paper_size() {
        let g = Dataset::Circuit.generate(1, 1);
        assert_eq!(g.num_vertices(), 252);
        assert_eq!(g.num_edges(), 399);
        assert!(is_connected(&g));
    }

    #[test]
    fn ppi_networks_close_to_spec() {
        for d in Dataset::ppi() {
            let spec = d.spec();
            let g = d.generate(1, 7);
            assert!(is_connected(&g));
            let n_err = (g.num_vertices() as f64 - spec.n as f64).abs() / spec.n as f64;
            let m_err = (g.num_edges() as f64 - spec.m as f64).abs() / spec.m as f64;
            assert!(
                n_err < 0.02,
                "{}: n {} vs {}",
                spec.name,
                g.num_vertices(),
                spec.n
            );
            assert!(
                m_err < 0.12,
                "{}: m {} vs {}",
                spec.name,
                g.num_edges(),
                spec.m
            );
        }
    }

    #[test]
    fn scaled_portland_has_roughly_scaled_size() {
        let g = Dataset::Portland.generate(256, 3);
        let want_m = 31_204_286 / 256;
        // LCC can trim a little.
        assert!(g.num_edges() > want_m * 8 / 10, "m = {}", g.num_edges());
        assert!(is_connected(&g));
    }

    #[test]
    fn enron_like_has_hub_degrees() {
        let g = Dataset::Enron.generate(1, 5);
        assert_eq!(g.num_edges(), 180_811);
        assert!(g.max_degree() > 100, "max degree {}", g.max_degree());
    }

    #[test]
    fn road_is_low_degree() {
        let g = Dataset::PaRoad.generate(64, 5);
        assert!(g.max_degree() <= 4);
        assert!(g.avg_degree() < 3.2);
    }

    #[test]
    fn scale_ignored_for_small_sets() {
        let a = Dataset::HPylori.generate(1, 9);
        let b = Dataset::HPylori.generate(16, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::Gnp.generate(1, 11);
        let b = Dataset::Gnp.generate(1, 11);
        assert_eq!(a, b);
    }
}
