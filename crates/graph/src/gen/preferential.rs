//! Barabási–Albert preferential attachment.
//!
//! Produces heavy-tailed degree distributions with a small number of hubs —
//! the degree structure of the Enron and Slashdot social networks whose
//! maximum degrees (1383 and 2510) dominate the DP neighbor loops.

use super::{edge_key, top_up_edges};
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Barabási–Albert graph on `n` vertices where each arriving vertex
/// attaches to `m_per` distinct existing vertices chosen preferentially by
/// degree, then topped up with uniform random edges to exactly `target_m`
/// edges (pass `target_m = 0` to skip the top-up).
///
/// # Panics
/// Panics if `n <= m_per` or `m_per == 0`.
pub fn barabasi_albert(n: usize, m_per: usize, target_m: usize, seed: u64) -> Graph {
    assert!(m_per >= 1, "m_per must be positive");
    assert!(n > m_per, "need more vertices than attachments per step");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Seed core: a path on m_per + 1 vertices so every early vertex has
    // positive degree for preferential selection.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_per);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * m_per * 2);
    // `endpoints` lists each edge endpoint once; sampling uniformly from it
    // is sampling vertices proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_per);
    let core = m_per + 1;
    for v in 1..core as u32 {
        edges.push((v - 1, v));
        seen.insert(edge_key(v - 1, v));
        endpoints.push(v - 1);
        endpoints.push(v);
    }

    let mut picked: Vec<u32> = Vec::with_capacity(m_per);
    for v in core as u32..n as u32 {
        picked.clear();
        let mut guard = 0usize;
        while picked.len() < m_per {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            guard += 1;
            if t != v && !picked.contains(&t) && !seen.contains(&edge_key(v, t)) {
                picked.push(t);
            }
            // With few existing vertices duplicates are common; fall back to
            // uniform choice if preferential sampling stalls.
            if guard > 50 * m_per {
                let t = rng.gen_range(0..v);
                if !picked.contains(&t) && !seen.contains(&edge_key(v, t)) {
                    picked.push(t);
                }
            }
        }
        for &t in &picked {
            edges.push((v, t));
            seen.insert(edge_key(v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    if target_m > 0 {
        assert!(
            target_m >= edges.len(),
            "target_m {target_m} below structural edge count {}",
            edges.len()
        );
        top_up_edges(&mut edges, &mut seen, n, target_m, &mut rng);
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn structural_edge_count() {
        let n = 500;
        let m_per = 3;
        let g = barabasi_albert(n, m_per, 0, 11);
        // path core (m_per edges) + (n - m_per - 1) * m_per
        assert_eq!(g.num_edges(), m_per + (n - m_per - 1) * m_per);
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn connected_by_construction() {
        let g = barabasi_albert(300, 2, 0, 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn top_up_hits_exact_target() {
        let g = barabasi_albert(200, 2, 700, 3);
        assert_eq!(g.num_edges(), 700);
    }

    #[test]
    fn heavy_tail_emerges() {
        // A BA graph's max degree far exceeds its average.
        let g = barabasi_albert(3000, 3, 0, 21);
        assert!(
            g.max_degree() as f64 > 6.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 0, 9), barabasi_albert(100, 2, 0, 9));
    }
}
