//! Watts–Strogatz small-world graphs.
//!
//! Not tied to a specific paper dataset, but a standard workload family for
//! subgraph-counting studies (high clustering, short paths); included so
//! users can reproduce FASCIA's behaviour on a third degree regime and used
//! by the ablation benchmarks.

use super::edge_key;
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Watts–Strogatz graph: ring lattice where each vertex connects to its
/// `k_nearest / 2` successors on each side, then each edge is rewired to a
/// uniform random endpoint with probability `beta`.
///
/// # Panics
/// Panics unless `k_nearest` is even, `0 < k_nearest < n`, and `beta` is a
/// probability.
pub fn watts_strogatz(n: usize, k_nearest: usize, beta: f64, seed: u64) -> Graph {
    assert!(
        k_nearest > 0 && k_nearest.is_multiple_of(2),
        "k_nearest must be even and positive"
    );
    assert!(k_nearest < n, "ring degree must be below n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * k_nearest);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k_nearest / 2);
    for u in 0..n as u32 {
        for j in 1..=(k_nearest / 2) as u32 {
            let v = (u + j) % n as u32;
            let (mut a, mut b) = (u, v);
            if rng.gen_bool(beta) {
                // Rewire the far endpoint.
                let mut guard = 0;
                loop {
                    let w = rng.gen_range(0..n as u32);
                    if w != a && !seen.contains(&edge_key(a, w)) {
                        b = w;
                        break;
                    }
                    guard += 1;
                    if guard > 100 {
                        break; // keep original if the neighborhood is saturated
                    }
                }
            }
            if a != b && seen.insert(edge_key(a, b)) {
                edges.push((a, b));
            } else {
                // Duplicate after rewiring collision: keep the lattice edge
                // if still free.
                (a, b) = (u, v);
                if seen.insert(edge_key(a, b)) {
                    edges.push((a, b));
                }
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn zero_beta_is_exact_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn rewiring_preserves_edge_budget_approximately() {
        let g = watts_strogatz(200, 6, 0.3, 9);
        // Collisions can drop a few edges, never add.
        assert!(g.num_edges() <= 600);
        assert!(g.num_edges() > 570);
    }

    #[test]
    fn high_beta_breaks_regularity() {
        let g = watts_strogatz(300, 4, 1.0, 4);
        let spread = g.max_degree() as i64 - (0..300).map(|v| g.degree(v)).min().unwrap() as i64;
        assert!(spread >= 2, "rewired graph should not be regular");
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(60, 4, 0.2, 5), watts_strogatz(60, 4, 0.2, 5));
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }
}
