//! R-MAT recursive matrix graphs.
//!
//! Kronecker-style generator producing skewed, community-ish degree
//! distributions at arbitrary scale; used as the Portland contact-network
//! stand-in (1.6 M vertices / 31 M edges) because it streams edges in O(m)
//! with no global state.

use super::edge_key;
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// R-MAT partition probabilities; must sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (self-community).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    /// The conventional Graph500-like skew.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// Generates an R-MAT graph with `m` distinct undirected edges on
/// `n = 2^scale_bits` implicit vertices (vertices that receive no edge are
/// still present; callers usually extract the largest component).
///
/// # Panics
/// Panics if the parameters do not sum to ~1 or `m` is unachievable.
pub fn rmat(scale_bits: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    let sum = params.a + params.b + params.c + params.d;
    assert!((sum - 1.0).abs() < 1e-9, "RMAT probabilities must sum to 1");
    let n: usize = 1usize << scale_bits;
    assert!(m <= n * (n - 1) / 2, "too many edges requested");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut seen: HashSet<u64> = HashSet::with_capacity(2 * m);
    let mut attempts: u64 = 0;
    let max_attempts: u64 = (m as u64) * 1000 + 1_000_000;
    while edges.len() < m {
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "R-MAT rejection sampling stalled; lower m or raise scale"
        );
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale_bits {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        if seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_and_size() {
        let g = rmat(10, 4000, RmatParams::default(), 77);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(12, 20_000, RmatParams::default(), 3);
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "R-MAT should be skewed: max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::default();
        assert_eq!(rmat(8, 500, p, 5), rmat(8, 500, p, 5));
    }

    #[test]
    fn uniform_params_behave_like_er() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g = rmat(10, 3000, p, 9);
        assert_eq!(g.num_edges(), 3000);
        // No extreme hub expected under uniform recursion.
        assert!(g.max_degree() < 40, "max degree {}", g.max_degree());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        rmat(
            6,
            10,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            1,
        );
    }
}
