//! Exact-(n, m) random connected graphs.
//!
//! Stand-in for the ISCAS89 s420 electrical circuit (252 vertices, 399
//! edges): a uniformly grown random recursive tree guarantees connectivity,
//! then uniform random extra edges reach the exact target edge count. Only
//! size and sparsity matter for the §V-C comparison experiment.

use super::{edge_key, top_up_edges};
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Connected random graph with exactly `n` vertices and `m` edges.
///
/// # Panics
/// Panics unless `n - 1 <= m <= n(n-1)/2` (and `n >= 1`).
pub fn random_connected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(m + 1 >= n, "need at least a spanning tree");
    assert!(m <= n * (n - 1) / 2, "too many edges for simple graph");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut seen: HashSet<u64> = HashSet::with_capacity(2 * m);
    // Random recursive tree: vertex v attaches to a uniform earlier vertex.
    for v in 1..n as u32 {
        let u = rng.gen_range(0..v);
        edges.push((u, v));
        seen.insert(edge_key(u, v));
    }
    top_up_edges(&mut edges, &mut seen, n, m, &mut rng);
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn circuit_scale_instance() {
        let g = random_connected(252, 399, 15);
        assert_eq!(g.num_vertices(), 252);
        assert_eq!(g.num_edges(), 399);
        assert!(is_connected(&g));
        assert!((g.avg_degree() - 2.0 * 399.0 / 252.0).abs() < 1e-9);
    }

    #[test]
    fn tree_case() {
        let g = random_connected(50, 49, 0);
        assert_eq!(g.num_edges(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn single_vertex() {
        let g = random_connected(1, 0, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn near_complete() {
        let g = random_connected(8, 28, 3);
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_connected(100, 150, 8), random_connected(100, 150, 8));
    }

    #[test]
    #[should_panic]
    fn rejects_disconnected_budget() {
        random_connected(10, 5, 0);
    }
}
