//! Duplication–divergence graphs (protein-interaction stand-ins).
//!
//! Duplication–divergence is the standard generative model for PPI network
//! topology: a new protein duplicates an existing one, inherits each of its
//! interactions independently with probability `p_retain`, and (with
//! probability `p_anchor`) interacts with its parent. The four DIP networks
//! of Table I are reproduced at matched `(n, m)` by calibrating `p_retain`
//! with a short bisection ([`duplication_divergence_target_m`]).

use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a duplication–divergence graph.
///
/// Starts from a 4-cycle; each arriving vertex picks a uniform anchor,
/// copies each anchor edge with probability `p_retain`, and links to the
/// anchor itself with probability `p_anchor`. A vertex that would end up
/// isolated is linked to its anchor, keeping the graph connected.
///
/// # Panics
/// Panics if `n < 4` or probabilities are outside `[0, 1]`.
pub fn duplication_divergence(n: usize, p_retain: f64, p_anchor: f64, seed: u64) -> Graph {
    assert!(n >= 4, "need at least the 4-cycle seed");
    assert!((0.0..=1.0).contains(&p_retain) && (0.0..=1.0).contains(&p_anchor));
    let mut rng = SmallRng::seed_from_u64(seed);
    // Adjacency as vector-of-vectors during growth; converted to CSR at end.
    let mut adj: Vec<Vec<u32>> = vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![0, 2]];
    adj.reserve(n);
    for v in 4..n as u32 {
        let anchor = rng.gen_range(0..v);
        let mut new_edges: Vec<u32> = Vec::new();
        // Copy anchor's neighbor list (clone to satisfy the borrow checker;
        // lists are short for PPI-scale graphs).
        let anchor_neigh = adj[anchor as usize].clone();
        for w in anchor_neigh {
            if rng.gen_bool(p_retain) {
                new_edges.push(w);
            }
        }
        if rng.gen_bool(p_anchor) && !new_edges.contains(&anchor) {
            new_edges.push(anchor);
        }
        if new_edges.is_empty() {
            new_edges.push(anchor);
        }
        adj.push(Vec::new());
        for w in new_edges {
            adj[v as usize].push(w);
            adj[w as usize].push(v);
        }
    }
    let mut edges = Vec::new();
    for (v, list) in adj.iter().enumerate() {
        for &w in list {
            if (v as u32) < w {
                edges.push((v as u32, w));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Calibrates `p_retain` by bisection so the generated graph hits
/// `target_m` edges as closely as possible (within ~2%), then returns the
/// best graph found. Deterministic for a given seed.
///
/// # Panics
/// Panics if `target_m < n` (too sparse for the model's connectivity floor).
pub fn duplication_divergence_target_m(n: usize, target_m: usize, seed: u64) -> Graph {
    assert!(
        target_m >= n - 1,
        "target too sparse for a connected PPI model"
    );
    let p_anchor = 0.45;
    let (mut lo, mut hi) = (0.0f64, 0.95f64);
    let mut best: Option<(usize, Graph)> = None;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let g = duplication_divergence(n, mid, p_anchor, seed);
        let m = g.num_edges();
        let err = m.abs_diff(target_m);
        if best.as_ref().is_none_or(|(e, _)| err < *e) {
            best = Some((err, g));
        }
        if m < target_m {
            lo = mid;
        } else {
            hi = mid;
        }
        if err * 50 <= target_m {
            break; // within 2%
        }
    }
    best.expect("bisection always evaluates at least once").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn grows_to_requested_size_and_stays_connected() {
        let g = duplication_divergence(500, 0.4, 0.5, 13);
        assert_eq!(g.num_vertices(), 500);
        assert!(is_connected(&g));
    }

    #[test]
    fn retention_increases_density() {
        let sparse = duplication_divergence(400, 0.1, 0.4, 5);
        let dense = duplication_divergence(400, 0.7, 0.4, 5);
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn calibration_hits_target_within_tolerance() {
        // H. pylori scale: n = 687, m = 1352.
        let g = duplication_divergence_target_m(687, 1352, 17);
        assert_eq!(g.num_vertices(), 687);
        let m = g.num_edges() as f64;
        assert!(
            (m - 1352.0).abs() / 1352.0 < 0.10,
            "calibrated m = {m}, want ~1352"
        );
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            duplication_divergence(300, 0.3, 0.5, 2),
            duplication_divergence(300, 0.3, 0.5, 2)
        );
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_n() {
        duplication_divergence(3, 0.5, 0.5, 0);
    }
}
