//! Synthetic network generators.
//!
//! These stand in for the paper's downloaded datasets (Table I). Each
//! generator is seeded and deterministic; each targets a degree structure
//! matching one dataset family (see DESIGN.md §3):
//!
//! * [`erdos_renyi`] — the paper's own `G(n, p)` comparison graph,
//! * [`preferential`] — Barabási–Albert heavy-tailed graphs (Enron,
//!   Slashdot stand-ins),
//! * [`mod@rmat`] — skewed power-law graphs at Portland scale,
//! * [`road`] — low-degree, high-diameter lattice road networks (PA road),
//! * [`dupdiv`] — duplication–divergence protein-interaction topologies,
//! * [`small_world`] — Watts–Strogatz ring graphs,
//! * [`sparse`] — exact-(n, m) random connected graphs (circuit stand-in).

pub mod dupdiv;
pub mod erdos_renyi;
pub mod preferential;
pub mod rmat;
pub mod road;
pub mod small_world;
pub mod sparse;

pub use dupdiv::{duplication_divergence, duplication_divergence_target_m};
pub use erdos_renyi::{gnm, gnp};
pub use preferential::barabasi_albert;
pub use rmat::rmat;
pub use road::road_grid;
pub use small_world::watts_strogatz;
pub use sparse::random_connected;

use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashSet;

/// Canonical undirected edge key for dedup sets.
#[inline]
pub(crate) fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Adds uniformly random distinct edges until `edges` reaches `target_m`
/// (used to hit an exact edge count after a structured construction).
pub(crate) fn top_up_edges(
    edges: &mut Vec<(u32, u32)>,
    seen: &mut HashSet<u64>,
    n: usize,
    target_m: usize,
    rng: &mut SmallRng,
) {
    assert!(
        n >= 2 || edges.len() >= target_m,
        "cannot add edges to a graph with < 2 vertices"
    );
    let max_possible = n * (n - 1) / 2;
    assert!(
        target_m <= max_possible,
        "target_m = {target_m} exceeds complete graph size {max_possible}"
    );
    while edges.len() < target_m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        if seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edge_key_is_orientation_invariant() {
        assert_eq!(edge_key(3, 7), edge_key(7, 3));
        assert_ne!(edge_key(3, 7), edge_key(3, 8));
    }

    #[test]
    fn top_up_reaches_exact_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut edges = vec![(0u32, 1u32)];
        let mut seen: HashSet<u64> = edges.iter().map(|&(u, v)| edge_key(u, v)).collect();
        top_up_edges(&mut edges, &mut seen, 10, 20, &mut rng);
        assert_eq!(edges.len(), 20);
        assert_eq!(seen.len(), 20);
    }

    #[test]
    #[should_panic]
    fn top_up_rejects_impossible_target() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut edges = Vec::new();
        let mut seen = HashSet::new();
        top_up_edges(&mut edges, &mut seen, 3, 10, &mut rng);
    }
}
