//! Road-network-like graphs.
//!
//! The PA road network (Table I: d_avg 2.8, d_max 9) is near-planar, almost
//! constant-degree, and huge-diameter — exactly the regime where FASCIA's
//! hash table wins on memory (Fig. 7). We reproduce that regime with a
//! random spanning tree of a 2-D grid (guaranteeing connectivity at
//! d_avg = 2) plus uniformly chosen extra grid edges up to the target edge
//! count.

use super::edge_key;
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a connected road-like graph on a `rows x cols` grid with
/// exactly `target_m` edges (grid edges only, so degrees stay <= 4 before
/// the small diagonal fraction; max degree stays road-like).
///
/// # Panics
/// Panics unless `rows * cols - 1 <= target_m <=` the number of grid edges.
pub fn road_grid(rows: usize, cols: usize, target_m: usize, seed: u64) -> Graph {
    let n = rows * cols;
    assert!(n >= 1, "grid must be non-empty");
    let grid_edges = if n == 1 {
        0
    } else {
        rows * (cols - 1) + cols * (rows - 1)
    };
    assert!(
        target_m + 1 >= n && target_m <= grid_edges,
        "target_m {target_m} outside [{}, {grid_edges}]",
        n - 1
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let at = |r: usize, c: usize| (r * cols + c) as u32;

    // Randomized DFS spanning tree over the implicit grid.
    let mut visited = vec![false; n];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_m);
    let mut seen: HashSet<u64> = HashSet::with_capacity(2 * target_m);
    let mut stack = vec![(0usize, 0usize)];
    visited[0] = true;
    let mut dirs = [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)];
    while let Some((r, c)) = stack.pop() {
        dirs.shuffle(&mut rng);
        for &(dr, dc) in &dirs {
            let (nr, nc) = (r as i64 + dr, c as i64 + dc);
            if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                continue;
            }
            let (nr, nc) = (nr as usize, nc as usize);
            let id = nr * cols + nc;
            if !visited[id] {
                visited[id] = true;
                edges.push((at(r, c), at(nr, nc)));
                seen.insert(edge_key(at(r, c), at(nr, nc)));
                // Re-push current so remaining directions are retried later,
                // then descend (keeps DFS shape with random twists).
                stack.push((r, c));
                stack.push((nr, nc));
                break;
            }
        }
    }
    debug_assert_eq!(edges.len(), n - 1);

    // Top up with unused grid edges chosen uniformly.
    let mut guard = 0u64;
    while edges.len() < target_m {
        guard += 1;
        assert!(
            guard < 10_000_000_u64.max(100 * grid_edges as u64),
            "road top-up stalled"
        );
        let r = rng.gen_range(0..rows);
        let c = rng.gen_range(0..cols);
        let horizontal = rng.gen_bool(0.5);
        let (nr, nc) = if horizontal { (r, c + 1) } else { (r + 1, c) };
        if nr >= rows || nc >= cols {
            continue;
        }
        let (u, v) = (at(r, c), at(nr, nc));
        if seen.insert(edge_key(u, v)) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn exact_edges_and_connected() {
        let g = road_grid(20, 30, 820, 4);
        assert_eq!(g.num_vertices(), 600);
        assert_eq!(g.num_edges(), 820);
        assert!(is_connected(&g));
    }

    #[test]
    fn degrees_stay_road_like() {
        let g = road_grid(40, 40, 2200, 8);
        assert!(g.max_degree() <= 4);
        assert!(g.avg_degree() < 3.0);
    }

    #[test]
    fn spanning_tree_only() {
        let g = road_grid(10, 10, 99, 2);
        assert_eq!(g.num_edges(), 99);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn single_vertex_grid() {
        let g = road_grid(1, 1, 0, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_grid(15, 15, 300, 6), road_grid(15, 15, 300, 6));
    }

    #[test]
    #[should_panic]
    fn rejects_too_few_edges() {
        road_grid(5, 5, 10, 0); // below n-1 = 24
    }
}
