//! Erdős–Rényi random graphs.
//!
//! The paper's `G(n, p)` network is "modeled after the size and average
//! degree of the Enron network" — i.e. matched `n` and `m` — so [`gnm`]
//! (exact edge count) is the primary entry point; [`gnp`] is the classic
//! per-edge-probability variant.

use super::top_up_edges;
use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// `G(n, m)`: exactly `m` distinct uniform random edges.
///
/// # Panics
/// Panics if `m` exceeds `n(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut seen = HashSet::with_capacity(m * 2);
    top_up_edges(&mut edges, &mut seen, n, m, &mut rng);
    Graph::from_edges(n, &edges)
}

/// `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`. Uses geometric skipping so the cost is `O(n + m)`
/// rather than `O(n^2)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    if p <= 0.0 || n < 2 {
        return Graph::from_edges(n, &edges);
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, &edges);
    }
    // Skip-sampling over the linearized strict upper triangle.
    let total: u64 = (n as u64) * (n as u64 - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        // Invert idx -> (u, v) in the upper triangle.
        let (u, v) = triangle_unrank(idx, n as u64);
        edges.push((u as u32, v as u32));
        idx += 1;
        if idx >= total {
            break;
        }
    }
    Graph::from_edges(n, &edges)
}

/// Maps a linear index into the strict upper triangle of an `n x n` matrix
/// to the pair `(u, v)`, `u < v`, in row-major order.
fn triangle_unrank(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scan from a
    // good initial guess; rows shrink so a float guess then adjust is exact.
    // Row u starts at S(u) = sum_{i<u} (n - i - 1) = u(n-1) - u(u-1)/2.
    // Solve S(u) <= idx by a float guess, then adjust exactly.
    let mut u = {
        let nf = n as f64;
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * idx as f64;
        let guess = ((2.0 * nf - 1.0) - disc.max(0.0).sqrt()) / 2.0;
        (guess.floor().max(0.0) as u64).min(n - 2)
    };
    let row_start = |u: u64| u * (n - 1) - u.saturating_sub(1) * u / 2;
    while u > 0 && row_start(u) > idx {
        u -= 1;
    }
    while row_start(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - row_start(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 250, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(50, 100, 9), gnm(50, 100, 9));
        assert_ne!(gnm(50, 100, 9), gnm(50, 100, 10));
    }

    #[test]
    fn gnm_complete_graph() {
        let g = gnm(6, 15, 0);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn gnp_edge_cases() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(5, 1.0, 1).num_edges(), 10);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
    }

    #[test]
    fn gnp_expected_density() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 123);
        let expect = p * (n * (n - 1) / 2) as f64;
        let sd = (expect * (1.0 - p)).sqrt();
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 5.0 * sd,
            "edges {got} too far from expectation {expect}"
        );
    }

    #[test]
    fn triangle_unrank_covers_everything() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = triangle_unrank(idx, n);
            assert!(u < v && v < n, "idx {idx} -> ({u}, {v})");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, total);
    }
}
