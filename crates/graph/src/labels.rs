//! Vertex labels.
//!
//! Labeled counting (paper Fig. 4 and the SAHAD comparison) attaches a small
//! integer attribute to every graph vertex and template vertex; the dynamic
//! program then only matches label-compatible vertices. The paper assigns
//! the Portland network eight labels (two genders x four age groups) and
//! notes "We assume randomly-assigned labels" — [`random_labels`] reproduces
//! exactly that methodology.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A vertex label; small alphabets only (the paper uses 8).
pub type Label = u8;

/// Uniform random labels in `0..num_labels` for `n` vertices, seeded.
///
/// # Panics
/// Panics if `num_labels == 0`.
pub fn random_labels(n: usize, num_labels: usize, seed: u64) -> Vec<Label> {
    assert!(num_labels > 0, "need at least one label");
    assert!(num_labels <= 256, "labels are u8");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(0..num_labels) as Label)
        .collect()
}

/// Histogram of label occurrences (length `num_labels`).
pub fn label_histogram(labels: &[Label], num_labels: usize) -> Vec<usize> {
    let mut h = vec![0usize; num_labels];
    for &l in labels {
        h[l as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_in_range_and_deterministic() {
        let a = random_labels(1000, 8, 42);
        let b = random_labels(1000, 8, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| l < 8));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_labels(256, 8, 1);
        let b = random_labels(256, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn histogram_counts_everything() {
        let labels = random_labels(10_000, 8, 7);
        let h = label_histogram(&labels, 8);
        assert_eq!(h.iter().sum::<usize>(), 10_000);
        // Roughly uniform: each bucket within 4 sigma of 1250.
        for &c in &h {
            assert!(
                (c as f64 - 1250.0).abs() < 4.0 * (10_000.0f64 * (1.0 / 8.0) * (7.0 / 8.0)).sqrt(),
                "bucket count {c} too far from uniform"
            );
        }
    }

    #[test]
    fn single_label_alphabet() {
        let l = random_labels(10, 1, 0);
        assert!(l.iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic]
    fn zero_labels_rejected() {
        random_labels(10, 0, 0);
    }
}
