//! Graph substrate for FASCIA: a compact CSR representation of undirected
//! graphs, synthetic network generators standing in for the paper's
//! datasets, connected-component extraction, vertex labels, and simple
//! edge-list I/O.
//!
//! The FASCIA paper evaluates on ten networks (Table I). Those datasets are
//! not redistributable here, so [`datasets`] provides seeded synthetic
//! stand-ins matched in size and degree structure (see DESIGN.md §3 for the
//! substitution rationale). All generators are deterministic given a seed.

pub mod components;
pub mod csr;
pub mod datasets;
pub mod digraph;
pub mod gen;
pub mod io;
pub mod labels;
pub mod stats;

pub use csr::Graph;
pub use datasets::Dataset;
pub use labels::random_labels;

#[cfg(test)]
mod tests {
    use crate::csr::Graph;

    #[test]
    fn crate_level_smoke() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }
}
