//! Directed graphs (CSR, both directions).
//!
//! The paper notes the color-coding algorithm "theoretically allows for
//! directed templates and networks" but only implements the undirected
//! case; this substrate provides the directed side of that extension
//! (used by `fascia-core::directed`). Arcs are stored twice — an
//! out-adjacency and an in-adjacency — because the DP walks whichever
//! direction the template arc under the current edge cut demands.

use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An immutable directed graph; both adjacency directions materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_adj: Vec<u32>,
    in_offsets: Vec<usize>,
    in_adj: Vec<u32>,
}

impl DiGraph {
    /// Builds from an arc list (`u -> v`). Self-loops and duplicate arcs
    /// are dropped; antiparallel pairs are allowed.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Self {
        for &(u, v) in arcs {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "arc ({u}, {v}) out of range for n = {n}"
            );
        }
        let mut norm: Vec<(u32, u32)> = arcs.iter().copied().filter(|&(u, v)| u != v).collect();
        norm.sort_unstable();
        norm.dedup();
        let build = |n: usize, pairs: &[(u32, u32)]| {
            let mut deg = vec![0usize; n];
            for &(u, _) in pairs {
                deg[u as usize] += 1;
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut acc = 0;
            offsets.push(0);
            for d in &deg {
                acc += d;
                offsets.push(acc);
            }
            let mut adj = vec![0u32; acc];
            let mut cursor = offsets[..n].to_vec();
            for &(u, v) in pairs {
                adj[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
            }
            for v in 0..n {
                adj[offsets[v]..offsets[v + 1]].sort_unstable();
            }
            (offsets, adj)
        };
        let (out_offsets, out_adj) = build(n, &norm);
        let reversed: Vec<(u32, u32)> = norm.iter().map(|&(u, v)| (v, u)).collect();
        let (in_offsets, in_adj) = build(n, &reversed);
        Self {
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
        }
    }

    /// Orients every undirected edge of `g` in a uniformly random
    /// direction (seeded) — the standard synthetic directed workload.
    pub fn orient_randomly(g: &Graph, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let arcs: Vec<(u32, u32)> = g
            .edges()
            .into_iter()
            .map(|(u, v)| if rng.gen_bool(0.5) { (u, v) } else { (v, u) })
            .collect();
        Self::from_arcs(g.num_vertices(), &arcs)
    }

    /// The underlying undirected graph (arc directions dropped).
    pub fn underlying(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.num_arcs());
        for u in 0..self.num_vertices() {
            for &v in self.out_neighbors(u) {
                edges.push((u as u32, v));
            }
        }
        Graph::from_edges(self.num_vertices(), &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_adj.len()
    }

    /// Sorted out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out_adj[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Sorted in-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.in_adj[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Whether the arc `u -> v` exists.
    #[inline]
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        self.out_neighbors(u).binary_search(&(v as u32)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gnm;

    #[test]
    fn builds_both_directions() {
        let g = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
    }

    #[test]
    fn dedups_and_drops_self_loops() {
        let g = DiGraph::from_arcs(3, &[(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn in_out_degree_sums_match() {
        let und = gnm(50, 150, 3);
        let g = DiGraph::orient_randomly(&und, 9);
        assert_eq!(g.num_arcs(), 150);
        let outs: usize = (0..50).map(|v| g.out_degree(v)).sum();
        let ins: usize = (0..50).map(|v| g.in_degree(v)).sum();
        assert_eq!(outs, 150);
        assert_eq!(ins, 150);
        // Each undirected edge appears exactly once as an arc.
        for v in 0..50 {
            for &u in g.out_neighbors(v) {
                assert!(und.has_edge(v, u as usize));
                assert!(!g.has_arc(u as usize, v), "edge oriented once");
            }
        }
    }

    #[test]
    fn underlying_round_trip() {
        let und = gnm(30, 80, 7);
        let g = DiGraph::orient_randomly(&und, 1);
        assert_eq!(g.underlying(), und);
    }

    #[test]
    fn orientation_is_deterministic() {
        let und = gnm(20, 50, 5);
        assert_eq!(
            DiGraph::orient_randomly(&und, 2),
            DiGraph::orient_randomly(&und, 2)
        );
        assert_ne!(
            DiGraph::orient_randomly(&und, 2),
            DiGraph::orient_randomly(&und, 3)
        );
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        DiGraph::from_arcs(2, &[(0, 5)]);
    }
}
