//! Replay of the `fascia-events/1` job lifecycle log.
//!
//! The write half lives in [`fascia_obs::events`]; this module is the
//! read half: parse the JSONL log back through the same depth-capped
//! parser that guards checkpoint resume, rebuild per-job timelines, and
//! aggregate the job table / retry causes / latency distributions that
//! the admin endpoint and `fascia report` render.
//!
//! Ordering contract: everything here orders by `seq` (the per-process
//! monotonic counter stamped at append time), never by `ts_unix_ms` —
//! the wall clock is a label and may step backwards mid-log.

use fascia_core::resilience::Json;
use fascia_obs::{Histogram, JobEvent, JobEventKind, EVENTS_SCHEMA};
use std::collections::BTreeMap;
use std::path::Path;

/// Parses one event line. Returns `None` for blank, torn, or foreign
/// lines — a crashed writer's final partial line must not poison replay.
pub fn parse_event(line: &str) -> Option<JobEvent> {
    let doc = Json::parse(line.trim()).ok()?;
    let obj = doc.as_obj()?;
    if Json::get(obj, "schema")?.as_str()? != EVENTS_SCHEMA {
        return None;
    }
    let u = |k: &str| Json::get(obj, k).and_then(Json::as_u64);
    let kind = JobEventKind::parse(Json::get(obj, "kind")?.as_str()?)?;
    let mut ev = JobEvent::new(
        u("ts_unix_ms")?,
        Json::get(obj, "job")?.as_str()?,
        kind,
        u("attempt")? as u32,
    );
    ev.seq = u("seq")?;
    ev.cause = Json::get(obj, "cause")
        .and_then(Json::as_str)
        .map(String::from);
    ev.iterations = u("iterations");
    ev.hb_seq = u("hb_seq");
    Some(ev)
}

/// Reads and parses the whole log, in `seq` order. Missing file reads as
/// empty (a service that never emitted an event has an empty timeline,
/// not an error).
pub fn read_events(path: &Path) -> Vec<JobEvent> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut events: Vec<JobEvent> = text.lines().filter_map(parse_event).collect();
    events.sort_by_key(|e| e.seq);
    events
}

/// Raw timeline of one job: the verbatim log lines (still valid JSON,
/// byte-identical to the file) whose `job` field matches `id`, in file
/// order. The admin `/jobs/<id>` endpoint serves exactly these, which is
/// what makes "the timeline matches the log" checkable with `diff`.
pub fn raw_timeline(path: &Path, id: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| parse_event(l).is_some_and(|e| e.job == id))
        .map(String::from)
        .collect()
}

/// One row of the aggregated job table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRow {
    /// Job id.
    pub id: String,
    /// Lifecycle state derived from the latest event: `queued`,
    /// `running`, or a terminal `completed`/`partial`/`failed`.
    pub state: &'static str,
    /// Highest attempt index seen.
    pub attempts: u32,
    /// `retried` events counted.
    pub retries: u32,
    /// Sequence of the job's latest event.
    pub last_seq: u64,
    /// Timestamp label of the job's latest event.
    pub last_ts_unix_ms: u64,
    /// Cause attached to the latest event that carried one.
    pub cause: Option<String>,
    /// Iterations reported by the latest event that carried them.
    pub iterations: Option<u64>,
}

/// Lifecycle state a kind leaves the job in.
fn state_after(kind: JobEventKind) -> &'static str {
    match kind {
        JobEventKind::Submitted => "queued",
        JobEventKind::Dequeued
        | JobEventKind::AttemptStarted
        | JobEventKind::HeartbeatObserved
        | JobEventKind::Checkpointed
        | JobEventKind::Retried => "running",
        JobEventKind::Degraded => "partial",
        JobEventKind::Completed => "completed",
        JobEventKind::Failed => "failed",
    }
}

/// Folds the event stream into one row per job, sorted by id.
pub fn job_table(events: &[JobEvent]) -> Vec<JobRow> {
    let mut rows: BTreeMap<&str, JobRow> = BTreeMap::new();
    for ev in events {
        let row = rows.entry(&ev.job).or_insert_with(|| JobRow {
            id: ev.job.clone(),
            state: "queued",
            attempts: 0,
            retries: 0,
            last_seq: 0,
            last_ts_unix_ms: 0,
            cause: None,
            iterations: None,
        });
        row.state = state_after(ev.kind);
        row.attempts = row.attempts.max(ev.attempt);
        if ev.kind == JobEventKind::Retried {
            row.retries += 1;
        }
        row.last_seq = ev.seq;
        row.last_ts_unix_ms = ev.ts_unix_ms;
        if let Some(c) = &ev.cause {
            row.cause = Some(c.clone());
        }
        if let Some(n) = ev.iterations {
            row.iterations = Some(n);
        }
    }
    rows.into_values().collect()
}

/// Retry causes across the log as `(cause, count)`, sorted by cause.
pub fn retry_causes(events: &[JobEvent]) -> Vec<(String, u64)> {
    let mut causes: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        if ev.kind == JobEventKind::Retried {
            let cause = ev.cause.clone().unwrap_or_else(|| "unknown".to_string());
            *causes.entry(cause).or_insert(0) += 1;
        }
    }
    causes.into_iter().collect()
}

/// Latency distributions recovered from the event stream: queue wait
/// (submitted → dequeued) and end-to-end (submitted → terminal), in
/// milliseconds of the wall-clock labels. Wall-clock steps can make a
/// difference negative; those samples are clamped to zero rather than
/// invented.
pub fn latency_histograms(events: &[JobEvent]) -> (Histogram, Histogram) {
    let queue_wait = Histogram::new();
    let end_to_end = Histogram::new();
    let mut submitted: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            JobEventKind::Submitted => {
                submitted.entry(&ev.job).or_insert(ev.ts_unix_ms);
            }
            JobEventKind::Dequeued => {
                if let Some(&t0) = submitted.get(ev.job.as_str()) {
                    queue_wait.record(ev.ts_unix_ms.saturating_sub(t0));
                }
            }
            k if k.is_terminal() => {
                if let Some(&t0) = submitted.get(ev.job.as_str()) {
                    end_to_end.record(ev.ts_unix_ms.saturating_sub(t0));
                }
            }
            _ => {}
        }
    }
    (queue_wait, end_to_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_obs::EventLog;
    use std::path::PathBuf;

    fn tmp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fascia-svc-events-{tag}-{}/events.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn events_roundtrip_through_the_depth_capped_parser() {
        let ev = JobEvent::new(1234, "job-7", JobEventKind::Retried, 2)
            .cause("worker-dead")
            .iterations(17)
            .hb_seq(42);
        let mut back = parse_event(&ev.to_json()).unwrap();
        back.seq = ev.seq;
        assert_eq!(back, ev);
        // Torn / foreign / blank lines read as nothing.
        assert!(parse_event("").is_none());
        assert!(parse_event("{\"schema\":\"fascia-events/1\",\"seq\":9").is_none());
        assert!(parse_event("{\"schema\":\"fascia-job/1\",\"id\":\"x\"}").is_none());
    }

    #[test]
    fn job_table_folds_lifecycle_and_orders_by_seq_not_ts() {
        let path = tmp_log("table");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path).unwrap();
        // Timestamps go *backwards* mid-stream (NTP step); seq rules.
        let seq = [
            JobEvent::new(5000, "a", JobEventKind::Submitted, 0),
            JobEvent::new(5001, "a", JobEventKind::Dequeued, 0),
            JobEvent::new(5002, "a", JobEventKind::AttemptStarted, 1),
            JobEvent::new(100, "a", JobEventKind::Retried, 1).cause("worker-panic"),
            JobEvent::new(101, "a", JobEventKind::AttemptStarted, 2),
            JobEvent::new(102, "a", JobEventKind::Completed, 2).iterations(8),
            JobEvent::new(103, "b", JobEventKind::Submitted, 0),
        ];
        for ev in seq {
            log.append(ev).unwrap();
        }
        let events = read_events(&path);
        assert_eq!(events.len(), 7);
        let rows = job_table(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "a");
        assert_eq!(rows[0].state, "completed");
        assert_eq!(rows[0].attempts, 2);
        assert_eq!(rows[0].retries, 1);
        assert_eq!(rows[0].iterations, Some(8));
        assert_eq!(rows[1].id, "b");
        assert_eq!(rows[1].state, "queued");
        assert_eq!(retry_causes(&events), vec![("worker-panic".to_string(), 1)]);
        let timeline = raw_timeline(&path, "b");
        assert_eq!(timeline.len(), 1);
        assert!(timeline[0].contains("\"job\":\"b\""));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn latency_histograms_clamp_backdated_clocks() {
        let events = [
            JobEvent::new(1000, "a", JobEventKind::Submitted, 0),
            JobEvent::new(1500, "a", JobEventKind::Dequeued, 0),
            // Wall clock stepped back before the terminal event.
            JobEvent::new(200, "a", JobEventKind::Completed, 1),
        ];
        let (queue_wait, e2e) = latency_histograms(&events);
        assert_eq!(queue_wait.count(), 1);
        assert_eq!(queue_wait.max(), Some(500));
        assert_eq!(e2e.count(), 1);
        assert_eq!(e2e.max(), Some(0), "negative deltas clamp to zero");
    }
}
