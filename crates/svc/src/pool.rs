//! Shared immutable graph pool.
//!
//! The resident service's reason to exist: concurrent and consecutive
//! jobs over the same graph share one immutable CSR instance behind an
//! `Arc` instead of re-reading and re-building it per run. Entries are
//! keyed by the job's graph spec string (edge-list path or Table I
//! dataset name) and live for the service's lifetime — the CSR is
//! read-only, so sharing is safe by construction.
//!
//! Loads are a chaos IO site ([`IoSite::GraphLoad`]): the schedule can
//! fail a load before any bytes are read, and because the fault
//! coordinate includes the load ordinal, a retried job rolls a fresh
//! coordinate — injected load failures are transient, like the NFS
//! flakes they model.

use crate::job::JobError;
use fascia_core::chaos::{ChaosRun, IoSite};
use fascia_graph::datasets::scale_from_env;
use fascia_graph::io::load_edge_list;
use fascia_graph::{Dataset, Graph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Seed used for generated stand-in datasets (same as the CLI, so a
/// service job over `"yeast"` counts the same graph `fascia count
/// yeast …` would).
const DATASET_SEED: u64 = 0xDA7A;

/// The pool. One per service; cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct GraphPool {
    graphs: Mutex<HashMap<String, Arc<Graph>>>,
    /// Service-scope chaos run for load faults (the engine's counting
    /// runs claim their own indices).
    chaos: Option<ChaosRun>,
    loads: AtomicU64,
    hits: AtomicU64,
}

impl GraphPool {
    /// An empty pool; `chaos` injects load faults when scheduled.
    pub fn new(chaos: Option<ChaosRun>) -> Self {
        Self {
            graphs: Mutex::new(HashMap::new()),
            chaos,
            loads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The graph for `spec`, loading and caching it on first use.
    /// Injected and real IO failures are [`JobError::GraphLoad`]
    /// (transient); an unknown dataset name falls through to the
    /// filesystem and reports the path error.
    pub fn get(&self, spec: &str) -> Result<Arc<Graph>, JobError> {
        if let Some(g) = self
            .graphs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(spec)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(g.clone());
        }
        // Fault check outside the cache: only actual loads can fail,
        // and each (re)load rolls a fresh coordinate.
        if let Some(cr) = &self.chaos {
            let op = self.loads.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = cr.io_error(IoSite::GraphLoad, op) {
                return Err(JobError::GraphLoad(format!("cannot load {spec:?}: {e}")));
            }
        }
        let g = Arc::new(load_spec(spec)?);
        self.graphs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(spec.to_string())
            .or_insert_with(|| g.clone());
        Ok(g)
    }

    /// (resident graphs, cache hits served) — for the service summary.
    pub fn stats(&self) -> (usize, u64) {
        let resident = self.graphs.lock().unwrap_or_else(|e| e.into_inner()).len();
        (resident, self.hits.load(Ordering::Relaxed))
    }
}

/// Table I dataset names, matching the CLI's vocabulary.
fn parse_dataset(name: &str) -> Option<Dataset> {
    Some(match name.to_ascii_lowercase().as_str() {
        "portland" => Dataset::Portland,
        "enron" => Dataset::Enron,
        "gnp" => Dataset::Gnp,
        "slashdot" => Dataset::Slashdot,
        "road" | "paroad" => Dataset::PaRoad,
        "circuit" => Dataset::Circuit,
        "ecoli" => Dataset::EColi,
        "yeast" | "scerevisiae" => Dataset::SCerevisiae,
        "hpylori" => Dataset::HPylori,
        "celegans" => Dataset::CElegans,
        _ => return None,
    })
}

fn load_spec(spec: &str) -> Result<Graph, JobError> {
    if let Some(ds) = parse_dataset(spec) {
        return Ok(ds.generate(scale_from_env(), DATASET_SEED));
    }
    load_edge_list(spec)
        .map(|(g, _)| g)
        .map_err(|e| JobError::GraphLoad(format!("cannot load {spec:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp_edge_list() -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("fascia-pool-test-{}.txt", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "0 1\n1 2\n2 3\n3 0\n0 2").unwrap();
        path
    }

    #[test]
    fn caches_one_instance_per_spec() {
        let path = tmp_edge_list();
        let spec = path.to_string_lossy().to_string();
        let pool = GraphPool::new(None);
        let a = pool.get(&spec).unwrap();
        let b = pool.get(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get must share the CSR");
        assert_eq!(pool.stats(), (1, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_transient_graph_load_error() {
        let pool = GraphPool::new(None);
        let err = pool.get("/nonexistent/fascia-graph.txt").unwrap_err();
        assert_eq!(err.kind(), "graph-load");
        assert!(err.is_transient());
    }

    #[test]
    fn injected_load_faults_are_transient_across_retries() {
        use fascia_core::chaos::{Chaos, ChaosSpec};
        // io_graph=1 always fails: every get() is a fresh op coordinate,
        // all of which fire at probability 1.
        let spec: ChaosSpec = "io_graph=1".parse().unwrap();
        let chaos = Arc::new(Chaos::new(spec));
        let path = tmp_edge_list();
        let gspec = path.to_string_lossy().to_string();
        let pool = GraphPool::new(Some(chaos.begin_run()));
        assert!(pool.get(&gspec).is_err());
        assert!(pool.get(&gspec).is_err());
        // A probabilistic spec would let a later op through; prove the
        // op ordinal advances by checking the event log grew per call.
        assert_eq!(chaos.events().len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
