//! Monotonic time for supervision (DESIGN.md §16).
//!
//! Every deadline, stall-timeout, and backoff decision in the service is
//! computed from [`Clock::monotonic`] — never from the wall clock — so a
//! system-clock step (NTP correction, manual `date`, VM resume) can
//! neither extend nor prematurely expire a job. The wall clock exists in
//! this module only as [`Clock::wall_unix_ms`], a *label* stamped into
//! result documents for humans; nothing reads it back.
//!
//! The [`TestClock`] double carries both a controllable monotonic offset
//! and a controllable wall clock, so the regression test can slam the
//! wall clock hours backwards and prove deadlines do not move.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The service's notion of time. Production code uses
/// [`MonotonicClock`]; tests inject a [`TestClock`].
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// A monotonic reading: never decreases, unaffected by wall-clock
    /// steps. All supervision arithmetic uses this.
    fn monotonic(&self) -> Instant;

    /// Milliseconds since the Unix epoch — for stamping documents only.
    /// MUST NOT feed any deadline/timeout computation.
    fn wall_unix_ms(&self) -> u64;

    /// Sleeps for `d` (virtual time in test doubles).
    fn sleep(&self, d: Duration);
}

/// The real clock: `Instant` + `SystemTime` + `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn monotonic(&self) -> Instant {
        Instant::now()
    }

    fn wall_unix_ms(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A fully controllable clock for tests: monotonic time advances only
/// via [`TestClock::advance`] (and `sleep`), and the wall clock can be
/// stepped arbitrarily — including backwards — without touching the
/// monotonic reading.
#[derive(Debug)]
pub struct TestClock {
    origin: Instant,
    state: Mutex<TestClockState>,
}

#[derive(Debug)]
struct TestClockState {
    elapsed: Duration,
    wall_unix_ms: u64,
}

impl Default for TestClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TestClock {
    /// A clock at monotonic zero with an arbitrary wall time.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            state: Mutex::new(TestClockState {
                elapsed: Duration::ZERO,
                wall_unix_ms: 1_700_000_000_000,
            }),
        }
    }

    /// Advances monotonic time (wall time follows, as on a healthy host).
    pub fn advance(&self, d: Duration) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.elapsed += d;
        s.wall_unix_ms = s.wall_unix_ms.saturating_add(d.as_millis() as u64);
    }

    /// Steps the wall clock alone — the misbehavior under test. Monotonic
    /// time is untouched, exactly like a real NTP step.
    pub fn step_wall_ms(&self, delta_ms: i64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.wall_unix_ms = if delta_ms < 0 {
            s.wall_unix_ms.saturating_sub(delta_ms.unsigned_abs())
        } else {
            s.wall_unix_ms.saturating_add(delta_ms as u64)
        };
    }
}

impl Clock for TestClock {
    fn monotonic(&self) -> Instant {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.origin + s.elapsed
    }

    fn wall_unix_ms(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wall_unix_ms
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// A job's deadline, anchored to the monotonic clock at job start. The
/// anchor is fixed once: retries run under the *same* deadline (a
/// flapping job cannot extend its budget by failing), and wall-clock
/// steps are invisible by construction.
#[derive(Debug, Clone, Copy)]
pub struct JobDeadline {
    anchor: Instant,
    limit: Duration,
}

impl JobDeadline {
    /// Starts the deadline now (monotonic).
    pub fn start(clock: &dyn Clock, limit: Duration) -> Self {
        Self {
            anchor: clock.monotonic(),
            limit,
        }
    }

    /// Monotonic time left before expiry (zero once expired).
    pub fn remaining(&self, clock: &dyn Clock) -> Duration {
        self.limit
            .saturating_sub(clock.monotonic().saturating_duration_since(self.anchor))
    }

    /// Whether the deadline has passed (monotonic).
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        self.remaining(clock) == Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression test (ISSUE 8): a backdated system clock must
    /// neither extend nor expire a job deadline. The deadline is pure
    /// monotonic arithmetic; stepping the wall clock hours in either
    /// direction changes nothing, and expiry happens exactly when the
    /// monotonic clock has advanced past the limit.
    #[test]
    fn backdated_wall_clock_cannot_move_a_deadline() {
        let clock = TestClock::new();
        let dl = JobDeadline::start(&clock, Duration::from_secs(10));
        assert_eq!(dl.remaining(&clock), Duration::from_secs(10));

        // Wall clock jumps 2 hours backwards: remaining is unchanged.
        clock.step_wall_ms(-2 * 3600 * 1000);
        assert_eq!(dl.remaining(&clock), Duration::from_secs(10));
        assert!(!dl.expired(&clock));

        // Wall clock jumps a day forward: still not expired.
        clock.step_wall_ms(24 * 3600 * 1000);
        assert!(!dl.expired(&clock));

        // Only monotonic progress expires it, at exactly the limit.
        clock.advance(Duration::from_secs(9));
        assert_eq!(dl.remaining(&clock), Duration::from_secs(1));
        clock.advance(Duration::from_secs(1));
        assert!(dl.expired(&clock));
        assert_eq!(dl.remaining(&clock), Duration::ZERO);

        // And once expired, a backdated wall clock cannot resurrect it.
        clock.step_wall_ms(-48 * 3600 * 1000);
        assert!(dl.expired(&clock));
    }

    /// Satellite regression test (ISSUE 9): event-log ordering survives a
    /// backdated wall clock. The supervisor and the event log share one
    /// [`Clock`] handle, so the wall time stamped into events is whatever
    /// that clock says — but replay order is defined by `seq`, which is
    /// stamped at append time and strictly increases no matter how the
    /// wall clock steps. A log whose timestamps run backwards mid-stream
    /// still replays in exactly the emission order.
    #[test]
    fn backdated_wall_clock_cannot_reorder_the_event_log() {
        use fascia_obs::{EventLog, JobEvent, JobEventKind};

        let clock = TestClock::new();
        let dir = std::env::temp_dir().join(format!("fascia-clock-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let log = EventLog::open(&path).unwrap();

        let kinds = [
            JobEventKind::Submitted,
            JobEventKind::Dequeued,
            JobEventKind::AttemptStarted,
            JobEventKind::Retried,
            JobEventKind::Completed,
        ];
        let mut seqs = Vec::new();
        let mut stamps = Vec::new();
        for (i, kind) in kinds.into_iter().enumerate() {
            // Slam the wall clock two hours backwards mid-lifecycle.
            if i == 2 {
                clock.step_wall_ms(-2 * 3600 * 1000);
            }
            let ts = clock.wall_unix_ms();
            stamps.push(ts);
            seqs.push(
                log.append(JobEvent::new(ts, "job-x", kind, i as u32))
                    .unwrap(),
            );
            clock.advance(Duration::from_millis(5));
        }

        // The wall-clock labels really did go backwards...
        assert!(stamps[2] < stamps[1], "the step must be visible in labels");
        // ...but seq is strictly monotonic,
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        // ...and replay (seq order) reproduces the emission order exactly.
        let replayed = crate::events::read_events(&path);
        assert_eq!(replayed.len(), kinds.len());
        for (i, (ev, kind)) in replayed.iter().zip(kinds).enumerate() {
            assert_eq!(ev.kind, kind);
            assert_eq!(ev.seq, seqs[i]);
            assert_eq!(ev.ts_unix_ms, stamps[i]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn test_clock_sleep_advances_monotonic_time() {
        let clock = TestClock::new();
        let t0 = clock.monotonic();
        clock.sleep(Duration::from_millis(250));
        assert_eq!(clock.monotonic().duration_since(t0).as_millis(), 250);
    }

    #[test]
    fn retries_share_the_original_anchor() {
        let clock = TestClock::new();
        let dl = JobDeadline::start(&clock, Duration::from_millis(100));
        clock.advance(Duration::from_millis(60));
        // A retry consulting the same deadline sees the *remaining*
        // budget, not a fresh one.
        assert_eq!(dl.remaining(&clock), Duration::from_millis(40));
    }
}
