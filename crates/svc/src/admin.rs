//! Zero-dependency HTTP/1.1 admin endpoint for `fascia serve`.
//!
//! Opt-in via `--admin-addr HOST:PORT` (port 0 binds an ephemeral port;
//! the bound address is written to `<spool>/admin.addr`). The server is
//! deliberately minimal and std-only, consistent with the repo's
//! no-third-party-deps shims policy: a blocking accept loop on its own
//! thread, one short-lived thread per connection under a hard connection
//! cap, a read deadline against slow-loris clients, and a request-line
//! byte cap. GET only.
//!
//! | route                 | payload                                          |
//! |-----------------------|--------------------------------------------------|
//! | `/healthz`            | liveness JSON: uptime, queue depth, spool lag,   |
//! |                       | event-write failures, trace-ring drops           |
//! | `/metrics`            | Prometheus text 0.0.4 ([`Metrics::render_prom`]) |
//! | `/jobs`               | job table replayed from `fascia-events/1`        |
//! | `/jobs/<id>`          | the job's timeline: verbatim event-log lines     |
//! | `/jobs/<id>/estimate` | the job's live `fascia-est/1` convergence trace  |
//! | `/version`            | crate version + git sha                          |
//!
//! The server only ever *reads* the spool — it never appends events,
//! claims chaos indices, or touches supervision state — so scraping it
//! mid-soak cannot perturb a deterministic chaos replay (proved by the
//! concurrent-scrape test in `tests/admin.rs`).

use crate::events::{job_table, raw_timeline};
use crate::spool::Spool;
use fascia_obs::json::{array_of, ObjectWriter};
use fascia_obs::Metrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hardening knobs; the defaults suit a scrape-only endpoint.
#[derive(Debug, Clone)]
pub struct AdminConfig {
    /// Connections served concurrently; excess requests get 503.
    pub max_connections: usize,
    /// Read deadline per connection (slow-loris cutoff).
    pub read_timeout: Duration,
    /// Request head cap in bytes; longer requests get 400.
    pub max_request_bytes: usize,
}

impl Default for AdminConfig {
    fn default() -> Self {
        Self {
            max_connections: 8,
            read_timeout: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// What the endpoint exposes: the spool (queue + event log, read-only)
/// and the live metrics registry the serve loop records into.
#[derive(Debug, Clone)]
pub struct AdminState {
    /// The served spool.
    pub spool: Spool,
    /// The service's metrics registry (shared with the serve loop).
    pub metrics: Arc<Metrics>,
}

/// A running admin server; dropping it without [`AdminServer::shutdown`]
/// leaves the accept thread running until process exit.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop on
    /// its own thread.
    pub fn start(addr: &str, state: AdminState, cfg: AdminConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let started = Instant::now();
        let active = Arc::new(AtomicUsize::new(0));
        let accept_thread = std::thread::Builder::new()
            .name("fascia-admin".to_string())
            .spawn(move || {
                accept_loop(&listener, &accept_stop, &active, &state, &cfg, started);
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. In-flight connection
    /// threads finish on their own (bounded by the read deadline).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
    state: &AdminState,
    cfg: &AdminConfig,
    started: Instant,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Connection cap: shed load in the accept thread itself — a 503
        // is cheaper than a thread.
        if active.load(Ordering::Relaxed) >= cfg.max_connections {
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "text/plain",
                "busy\n",
            );
            continue;
        }
        active.fetch_add(1, Ordering::Relaxed);
        let conn_active = Arc::clone(active);
        let state = state.clone();
        let cfg = cfg.clone();
        let spawned = std::thread::Builder::new()
            .name("fascia-admin-conn".to_string())
            .spawn(move || {
                handle_connection(&mut stream, &state, &cfg, started);
                conn_active.fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    state: &AdminState,
    cfg: &AdminConfig,
    started: Instant,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.read_timeout));
    match read_request_head(stream, cfg.max_request_bytes) {
        Ok(head) => match parse_request_line(&head) {
            Some(("GET", path)) => {
                let (status, reason, content_type, body) = route(state, started, path);
                let _ = write_response(stream, status, reason, content_type, &body);
            }
            Some((_, _)) => {
                let _ = write_response(
                    stream,
                    405,
                    "Method Not Allowed",
                    "text/plain",
                    "GET only\n",
                );
            }
            None => {
                let _ = write_response(stream, 400, "Bad Request", "text/plain", "bad request\n");
            }
        },
        Err(status) => {
            let (reason, body) = match status {
                408 => ("Request Timeout", "read deadline exceeded\n"),
                _ => ("Bad Request", "request too large\n"),
            };
            let _ = write_response(stream, status, reason, "text/plain", body);
        }
    }
}

/// Reads until the end of the request head (`\r\n\r\n`), the byte cap,
/// or the read deadline. Returns the head text or an HTTP status.
fn read_request_head(stream: &mut TcpStream, max_bytes: usize) -> Result<String, u16> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    loop {
        if head_complete(&buf) {
            break;
        }
        if buf.len() >= max_bytes {
            return Err(400);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client closed; maybe a bare request line
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(408)
            }
            Err(_) => return Err(400),
        }
    }
    String::from_utf8(buf).map_err(|_| 400)
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// `GET /path HTTP/1.1` → `("GET", "/path")`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if !path.starts_with('/') {
        return None;
    }
    // Ignore any query string: the API takes no parameters.
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

fn route(
    state: &AdminState,
    started: Instant,
    path: &str,
) -> (u16, &'static str, &'static str, String) {
    let ok = |ct: &'static str, body: String| (200, "OK", ct, body);
    match path {
        "/healthz" => ok("application/json", healthz_json(state, started)),
        "/metrics" => ok("text/plain; version=0.0.4", state.metrics.render_prom()),
        "/jobs" => ok("application/json", jobs_json(state)),
        "/version" => ok("application/json", version_json()),
        _ => match path.strip_prefix("/jobs/") {
            // The estimator trace is spool-backed and refreshed while the
            // job runs, so this serves *live* convergence mid-run.
            Some(rest) if rest.ends_with("/estimate") => {
                let id = &rest[..rest.len() - "/estimate".len()];
                if id.is_empty() || id.contains('/') {
                    return (404, "Not Found", "text/plain", "not found\n".to_string());
                }
                match std::fs::read_to_string(state.spool.est_path(id)) {
                    Ok(body) => ok("application/json", body),
                    Err(_) => (
                        404,
                        "Not Found",
                        "text/plain",
                        format!("no estimate trace for job {id:?}\n"),
                    ),
                }
            }
            Some(id) if !id.is_empty() && !id.contains('/') => match timeline_json(state, id) {
                Some(body) => ok("application/json", body),
                None => (
                    404,
                    "Not Found",
                    "text/plain",
                    format!("no events for job {id:?}\n"),
                ),
            },
            _ => (404, "Not Found", "text/plain", "not found\n".to_string()),
        },
    }
}

fn healthz_json(state: &AdminState, started: Instant) -> String {
    let (depth, oldest_mtime_ms) = state.spool.queue_snapshot();
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut w = ObjectWriter::new();
    w.field_str("status", "ok")
        .field_u64("uptime_ms", started.elapsed().as_millis() as u64)
        .field_u64("queue_depth", depth as u64)
        .field_u64(
            "spool_lag_ms",
            oldest_mtime_ms.map_or(0, |m| now_ms.saturating_sub(m)),
        )
        .field_u64(
            "events_write_failures",
            state.metrics.counter("svc.events.write_failures").get(),
        )
        .field_u64(
            "trace_events_dropped",
            state.metrics.counter("svc.trace.events_dropped").get(),
        );
    w.finish()
}

fn jobs_json(state: &AdminState) -> String {
    let events = crate::events::read_events(&state.spool.events_path());
    let rows = job_table(&events).into_iter().map(|row| {
        let mut w = ObjectWriter::new();
        w.field_str("id", &row.id)
            .field_str("state", row.state)
            .field_u64("attempts", u64::from(row.attempts))
            .field_u64("retries", u64::from(row.retries))
            .field_u64("last_seq", row.last_seq)
            .field_u64("last_ts_unix_ms", row.last_ts_unix_ms);
        if let Some(c) = &row.cause {
            w.field_str("cause", c);
        }
        if let Some(n) = row.iterations {
            w.field_u64("iterations", n);
        }
        w.finish()
    });
    let mut w = ObjectWriter::new();
    w.field_str("schema", "fascia-jobs/1")
        .field_raw("jobs", &array_of(rows));
    w.finish()
}

/// The job's timeline as the *verbatim* event-log lines, so the response
/// body provably matches the `fascia-events/1` file. `None` = unknown id.
fn timeline_json(state: &AdminState, id: &str) -> Option<String> {
    let lines = raw_timeline(&state.spool.events_path(), id);
    if lines.is_empty() {
        return None;
    }
    let mut w = ObjectWriter::new();
    w.field_str("schema", "fascia-job-timeline/1")
        .field_str("job", id)
        .field_raw("events", &array_of(lines));
    w.finish().into()
}

fn version_json() -> String {
    let mut w = ObjectWriter::new();
    w.field_str("name", "fascia-svc")
        .field_str("version", env!("CARGO_PKG_VERSION"));
    if let Some(sha) = fascia_obs::detect_git_sha() {
        w.field_str("git_sha", &sha);
    }
    w.finish()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_and_reject_garbage() {
        assert_eq!(
            parse_request_line("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/healthz"))
        );
        assert_eq!(
            parse_request_line("POST /jobs HTTP/1.1\r\n\r\n"),
            Some(("POST", "/jobs"))
        );
        assert_eq!(
            parse_request_line("GET /jobs?limit=5 HTTP/1.1\r\n\r\n"),
            Some(("GET", "/jobs"))
        );
        assert_eq!(parse_request_line("GET\r\n\r\n"), None);
        assert_eq!(parse_request_line("GET relative HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn head_detection_handles_both_line_endings() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
    }
}
