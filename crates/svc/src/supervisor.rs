//! Per-job supervision: the state machine of DESIGN.md §16.
//!
//! ```text
//!           ┌────────── transient error / dead worker ──────────┐
//!           ▼                                                   │
//! queued ─► attempt K (worker thread) ──ok──► classify ──► terminal
//!           │    ▲                                          result
//!           │    └── backoff (capped exp + det. jitter)     (completed |
//!           │                                                partial |
//!           └── deadline expired ─► harvest checkpoint ────  failed)
//! ```
//!
//! Each attempt runs the engine on a dedicated worker thread under a
//! [`CancelToken`] carrying the job's *remaining* monotonic deadline.
//! The supervisor polls two channels: the worker's result channel and
//! the heartbeat file's `seq` counter. A worker whose sequence stops
//! advancing for `stall_timeout` is declared dead — it is cancelled,
//! granted a short grace, then *detached* (never joined), so one wedged
//! iteration cannot hang the service. Detached zombies keep writing only
//! their own per-attempt checkpoint file, which is why checkpoints are
//! attempt-suffixed.
//!
//! Graceful degradation: when the deadline (or the attempt budget, or a
//! terminal memory-budget failure) cuts a job short, the supervisor
//! harvests the most advanced valid checkpoint and reports an honest
//! reduced-iteration `partial` estimate — mean and ~95% CI over the
//! iterations that actually ran — rather than an error, annotated with
//! the error that forced the degradation.

use crate::backoff::BackoffPolicy;
use crate::clock::{Clock, JobDeadline};
use crate::job::{JobError, JobReport, JobSpec, JobStatus};
use crate::pool::GraphPool;
use crate::spool::Spool;
use fascia_core::chaos::Chaos;
use fascia_core::engine::{count_template, CountConfig, CountError, CountResult};
use fascia_core::progress::{Progress, ProgressConfig};
use fascia_core::resilience::{CancelToken, Checkpoint, CheckpointConfig, Json};
use fascia_core::stats::{EstimateStats, StopRule};
use fascia_core::EstCollector;
use fascia_obs::{EventLog, JobEvent, JobEventKind, Metrics, Tracer};
use fascia_template::{NamedTemplate, Template};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Supervision knobs (service-wide; jobs can override `max_attempts`).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Retry policy for transient failures.
    pub backoff: BackoffPolicy,
    /// How often the supervisor polls the worker + heartbeat.
    pub poll: Duration,
    /// A heartbeat sequence older than this (monotonic) marks the worker
    /// dead. Must exceed the longest expected wave, with margin.
    pub stall_timeout: Duration,
    /// After cancelling a stalled worker, how long to wait for it to
    /// surface a result before detaching it.
    pub grace: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff: BackoffPolicy::default(),
            poll: Duration::from_millis(20),
            stall_timeout: Duration::from_secs(10),
            grace: Duration::from_millis(250),
        }
    }
}

/// Watches a heartbeat's `(pid, seq)` for progress. Pure bookkeeping
/// over monotonic instants — unit-testable without files or threads.
#[derive(Debug)]
pub struct HeartbeatWatch {
    last: Option<(u64, u64)>,
    changed_at: Instant,
}

impl HeartbeatWatch {
    /// Starts watching; the attempt's spawn time is the first "change".
    pub fn new(now: Instant) -> Self {
        Self {
            last: None,
            changed_at: now,
        }
    }

    /// Feeds one reading (`None` = heartbeat file absent/unreadable).
    /// Any change — seq advance, writer pid change, file appearing —
    /// counts as life. A *stale-sequence* reading (same pid, same or
    /// lower seq) does not. Returns whether the reading counted as life
    /// (the event log records the attempt's first one).
    pub fn observe(&mut self, reading: Option<(u64, u64)>, now: Instant) -> bool {
        let advanced = match (self.last, reading) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((lp, ls)), Some((p, s))) => p != lp || s > ls,
        };
        if advanced {
            self.last = reading;
            self.changed_at = now;
        }
        advanced
    }

    /// Monotonic time since the last sign of life.
    pub fn stale_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.changed_at)
    }
}

/// Reads the supervision triple from a heartbeat file: `(pid, seq)`.
fn read_heartbeat(path: &std::path::Path) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let obj = doc.as_obj()?;
    let pid = Json::get(obj, "pid")?.as_u64()?;
    let seq = Json::get(obj, "seq")?.as_u64()?;
    Some((pid, seq))
}

/// Parses a job's template spec (Figure 2 name, `pathK`, `starK`, or a
/// template file path). Failures are terminal [`JobError::Invalid`].
pub fn parse_template(spec: &str) -> Result<Template, JobError> {
    if let Some(named) = NamedTemplate::by_name(spec) {
        return Ok(named.template());
    }
    if let Some(k) = spec.strip_prefix("path").and_then(|s| s.parse().ok()) {
        return Ok(Template::path(k));
    }
    if let Some(k) = spec.strip_prefix("star").and_then(|s| s.parse().ok()) {
        return Ok(Template::star(k));
    }
    if std::path::Path::new(spec).exists() {
        return fascia_template::io::load_template(spec)
            .map_err(|e| JobError::Invalid(format!("template file {spec:?}: {e}")));
    }
    Err(JobError::Invalid(format!(
        "unknown template {spec:?} (use U7-2, path5, star6, or a file path)"
    )))
}

/// How one worker attempt ended.
enum Attempt {
    /// The engine returned (successfully or not).
    Finished(Result<CountResult, CountError>),
    /// The worker thread died without reporting (double panic).
    Panicked(String),
    /// The heartbeat went stale; the worker was cancelled and detached.
    Dead(String),
    /// The attempt failed before a worker even started (graph load).
    Aborted(JobError),
}

/// Runs jobs under supervision. One per service; stateless across jobs
/// apart from the shared pool/spool/chaos handles.
pub struct Supervisor<'a> {
    /// Durable state tree (queue, results, checkpoints, heartbeats).
    pub spool: &'a Spool,
    /// Shared resident graphs.
    pub pool: &'a GraphPool,
    /// Monotonic time source (tests inject a double). Also the *only*
    /// source of the wall-clock labels stamped into events — one clock
    /// handle end to end, so tests and chaos replays get deterministic
    /// timestamps.
    pub clock: &'a dyn Clock,
    /// Supervision knobs.
    pub cfg: &'a SupervisorConfig,
    /// Chaos schedule handed to every engine run (each claims its own
    /// run index).
    pub chaos: Option<Arc<Chaos>>,
    /// Lifecycle event log (`fascia-events/1`); absent in bare tests.
    pub events: Option<&'a EventLog>,
    /// Service metrics registry (attempt-duration histogram, event-write
    /// failure counter); absent in bare tests.
    pub metrics: Option<&'a Metrics>,
}

impl Supervisor<'_> {
    /// Appends a lifecycle event (when a log is attached). Telemetry must
    /// never fail a job: write errors only bump a counter.
    fn emit(&self, ev: JobEvent) {
        if let Some(log) = self.events {
            if log.append(ev).is_err() {
                if let Some(m) = self.metrics {
                    m.counter("svc.events.write_failures").inc();
                }
            }
        }
    }

    /// A bare event stamped with the supervisor's clock.
    fn event(&self, job: &str, kind: JobEventKind, attempt: u32) -> JobEvent {
        JobEvent::new(self.clock.wall_unix_ms(), job, kind, attempt)
    }

    /// Drives `spec` to a terminal state and returns its report. Never
    /// panics and never blocks forever: every wait is bounded by the
    /// poll interval, the stall timeout, or the job deadline.
    pub fn run_job(&self, spec: &JobSpec) -> JobReport {
        let t0 = self.clock.monotonic();
        let elapsed_ms =
            |clock: &dyn Clock| clock.monotonic().saturating_duration_since(t0).as_millis() as u64;
        let template = match parse_template(&spec.template) {
            Ok(t) => t,
            Err(e) => return self.failed(spec, 0, e, elapsed_ms(self.clock)),
        };
        let deadline = spec
            .deadline_ms
            .map(|ms| JobDeadline::start(self.clock, Duration::from_millis(ms)));
        let max_attempts = spec
            .max_attempts
            .unwrap_or(self.cfg.backoff.max_attempts)
            .max(1);
        let salt = BackoffPolicy::job_salt(&spec.id);

        let mut attempts = 0u32;
        loop {
            if let Some(d) = &deadline {
                if d.expired(self.clock) {
                    return self.degrade(
                        spec,
                        attempts,
                        "deadline-exceeded",
                        JobError::Deadline(format!(
                            "deadline of {} ms expired",
                            spec.deadline_ms.unwrap_or(0)
                        )),
                        elapsed_ms(self.clock),
                    );
                }
            }
            attempts += 1;
            self.emit(self.event(&spec.id, JobEventKind::AttemptStarted, attempts));
            let attempt_t0 = self.clock.monotonic();
            let verdict = self.attempt(spec, &template, attempts, deadline.as_ref());
            if let Some(m) = self.metrics {
                let took = self.clock.monotonic().saturating_duration_since(attempt_t0);
                m.histogram("svc.attempt.duration_ms")
                    .record(took.as_millis() as u64);
            }
            let err = match verdict {
                Attempt::Finished(Ok(res)) => {
                    return self.report_result(spec, attempts, &res, elapsed_ms(self.clock));
                }
                Attempt::Finished(Err(e)) => classify(e),
                Attempt::Panicked(m) => JobError::WorkerPanic(m),
                Attempt::Dead(m) => JobError::WorkerDead(m),
                Attempt::Aborted(e) => e,
            };
            // A cancellation with zero finished iterations loops back to
            // the deadline check above, which harvests or fails typed.
            // (Only the deadline cancels service runs; without one this
            // must not spin.)
            if matches!(err, JobError::Engine(ref m) if m == "cancelled") {
                if deadline.is_some() {
                    continue;
                }
                return self.failed(
                    spec,
                    attempts,
                    JobError::Engine("cancelled before the first iteration".into()),
                    elapsed_ms(self.clock),
                );
            }
            if !err.is_transient() {
                if matches!(err, JobError::Budget(_)) {
                    // Budget ladder already degraded inside the engine;
                    // if even hashed tables cannot fit, salvage what any
                    // earlier attempt checkpointed.
                    return self.degrade(
                        spec,
                        attempts,
                        "budget-exceeded",
                        err,
                        elapsed_ms(self.clock),
                    );
                }
                return self.failed(spec, attempts, err, elapsed_ms(self.clock));
            }
            if attempts >= max_attempts {
                return self.degrade(
                    spec,
                    attempts,
                    "retries-exhausted",
                    JobError::RetriesExhausted {
                        attempts,
                        last: err.to_string(),
                    },
                    elapsed_ms(self.clock),
                );
            }
            // Transient: wait out the backoff (never past the deadline)
            // and go again. The next attempt resumes from the best
            // checkpoint any attempt managed to flush.
            if let Some((_, n)) = self.spool.best_checkpoint(&spec.id) {
                if n > 0 {
                    self.emit(
                        self.event(&spec.id, JobEventKind::Checkpointed, attempts)
                            .iterations(n as u64),
                    );
                }
            }
            self.emit(
                self.event(&spec.id, JobEventKind::Retried, attempts)
                    .cause(err.kind()),
            );
            let mut wait = self.cfg.backoff.delay(salt, attempts);
            if let Some(d) = &deadline {
                wait = wait.min(d.remaining(self.clock));
            }
            self.clock.sleep(wait);
        }
    }

    /// One supervised worker attempt.
    fn attempt(
        &self,
        spec: &JobSpec,
        template: &Template,
        attempt_no: u32,
        deadline: Option<&JobDeadline>,
    ) -> Attempt {
        let graph = match self.pool.get(&spec.graph) {
            Ok(g) => g,
            Err(e) => return Attempt::Aborted(e),
        };
        let hb_path = self.spool.hb_path(&spec.id);
        let rule = spec.stop_rule();
        // Resume only from a checkpoint this exact run would accept —
        // a zombie's stale-fingerprint file must not poison the attempt.
        let resume = self
            .spool
            .best_checkpoint(&spec.id)
            .map(|(ck, _)| ck)
            .filter(|ck| fingerprint_matches(ck, spec, template, &rule, &graph));
        let mut cancel = CancelToken::new();
        if let Some(d) = deadline {
            cancel = cancel.deadline(d.remaining(self.clock));
        }
        // Both rails are observe-only (bitwise-identical results, enforced
        // by the engine's differential tests): the estimator collector
        // feeds the spool's fascia-est/1 trace and the admin estimate
        // endpoint; the tracer's ring counts feed service metrics.
        let est = Arc::new(EstCollector::new());
        let tracer = Arc::new(Tracer::new());
        let mut cfg = CountConfig {
            iterations: spec.iterations,
            seed: spec.seed,
            table: spec.table,
            parallel: spec.parallel,
            memory_budget_bytes: spec.memory_budget,
            checkpoint: Some(
                CheckpointConfig::new(self.spool.ckpt_path(&spec.id, attempt_no - 1)).durable(),
            ),
            progress: Some(Arc::new(Progress::new(ProgressConfig {
                stderr_line: false,
                heartbeat: Some(hb_path.clone()),
                // Every wave must bump `seq`: liveness resolution is the
                // point, throttling is not.
                min_interval: Duration::ZERO,
                job_id: Some(spec.id.clone()),
            }))),
            resume,
            cancel: Some(cancel.clone()),
            chaos: self.chaos.clone(),
            est: Some(Arc::clone(&est)),
            tracer: Some(Arc::clone(&tracer)),
            ..CountConfig::default()
        };
        if let StopRule::RelativeError { .. } = rule {
            cfg.stop = Some(rule);
        }

        let (tx, rx) = mpsc::channel();
        let worker_template = template.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("fascia-job-{}", spec.id))
            .spawn(move || {
                let _ = tx.send(count_template(&graph, &worker_template, &cfg));
            });
        let handle = match spawned {
            Ok(h) => h,
            Err(e) => return Attempt::Panicked(format!("cannot spawn worker: {e}")),
        };

        // Seals the attempt's observe-only telemetry into the spool and
        // metrics before a verdict is returned: the final fascia-est/1
        // trace (best effort — telemetry never fails a job) and the
        // attempt's trace-ring recorded/dropped counts.
        let seal = |verdict: Attempt| {
            if est.iterations() > 0 {
                let _ = self.spool.write_est(&spec.id, &est.to_json());
            }
            if let Some(m) = self.metrics {
                m.counter("svc.trace.events_recorded")
                    .add(tracer.recorded());
                m.counter("svc.trace.events_dropped").add(tracer.dropped());
            }
            verdict
        };
        let mut watch = HeartbeatWatch::new(self.clock.monotonic());
        // One heartbeat-observed event per attempt (the first sign of
        // life) keeps the log's volume proportional to attempts, not to
        // poll frequency.
        let mut hb_reported = false;
        // Iterations already flushed into the live estimate trace.
        let mut est_flushed = 0u64;
        loop {
            match rx.recv_timeout(self.cfg.poll) {
                Ok(res) => {
                    let _ = handle.join();
                    return seal(Attempt::Finished(res));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    let msg = match handle.join() {
                        Err(payload) => panic_message(&payload),
                        Ok(()) => "worker exited without reporting".to_string(),
                    };
                    return seal(Attempt::Panicked(msg));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let now = self.clock.monotonic();
                    // Live convergence: refresh the job's estimate trace
                    // whenever new iterations landed, so the admin
                    // `GET /jobs/<id>/estimate` tracks the running job.
                    let done = est.iterations();
                    if done > est_flushed {
                        est_flushed = done;
                        let _ = self.spool.write_est(&spec.id, &est.to_json());
                    }
                    let alive = watch.observe(read_heartbeat(&hb_path), now);
                    if alive && !hb_reported {
                        hb_reported = true;
                        let mut ev =
                            self.event(&spec.id, JobEventKind::HeartbeatObserved, attempt_no);
                        if let Some((_, seq)) = watch.last {
                            ev = ev.hb_seq(seq);
                        }
                        self.emit(ev);
                    }
                    if watch.stale_for(now) >= self.cfg.stall_timeout {
                        // Stale sequence ⇒ dead worker. Cancel, grant a
                        // grace period, then detach rather than hang.
                        cancel.cancel();
                        if let Ok(res) = rx.recv_timeout(self.cfg.grace) {
                            let _ = handle.join();
                            return seal(Attempt::Finished(res));
                        }
                        drop(handle); // detach: never joined
                        return seal(Attempt::Dead(format!(
                            "heartbeat seq stale for {:?} (attempt {attempt_no})",
                            self.cfg.stall_timeout
                        )));
                    }
                }
            }
        }
    }

    /// Report for an engine run that returned a result.
    fn report_result(
        &self,
        spec: &JobSpec,
        attempts: u32,
        res: &CountResult,
        elapsed_ms: u64,
    ) -> JobReport {
        let partial = res.stop_cause.is_partial();
        self.spool.cleanup_job(&spec.id);
        let kind = if partial {
            JobEventKind::Degraded
        } else {
            JobEventKind::Completed
        };
        self.emit(
            self.event(&spec.id, kind, attempts)
                .cause(res.stop_cause.name())
                .iterations(res.iterations_run as u64),
        );
        JobReport {
            id: spec.id.clone(),
            status: if partial {
                JobStatus::Partial
            } else {
                JobStatus::Completed
            },
            stop_cause: Some(res.stop_cause.name().to_string()),
            estimate: Some(res.estimate),
            ci95: Some(res.ci95),
            iterations: res.iterations_run,
            attempts,
            error: None,
            elapsed_ms,
        }
    }

    /// Graceful degradation: harvest the best checkpoint into an honest
    /// reduced-iteration partial estimate; fall back to a typed failure
    /// when not a single iteration survives.
    fn degrade(
        &self,
        spec: &JobSpec,
        attempts: u32,
        stop_cause: &str,
        err: JobError,
        elapsed_ms: u64,
    ) -> JobReport {
        match self.spool.best_checkpoint(&spec.id) {
            Some((ck, n)) if n > 0 => {
                let stats = EstimateStats::from_series(&ck.per_iteration);
                self.spool.cleanup_job(&spec.id);
                self.emit(
                    self.event(&spec.id, JobEventKind::Checkpointed, attempts)
                        .iterations(n as u64),
                );
                self.emit(
                    self.event(&spec.id, JobEventKind::Degraded, attempts)
                        .cause(stop_cause)
                        .iterations(n as u64),
                );
                JobReport {
                    id: spec.id.clone(),
                    status: JobStatus::Partial,
                    stop_cause: Some(stop_cause.to_string()),
                    estimate: Some(stats.mean),
                    ci95: Some(stats.ci95_half_width),
                    iterations: n,
                    attempts,
                    error: Some(err),
                    elapsed_ms,
                }
            }
            _ => self.failed(spec, attempts, err, elapsed_ms),
        }
    }

    fn failed(&self, spec: &JobSpec, attempts: u32, err: JobError, elapsed_ms: u64) -> JobReport {
        self.spool.cleanup_job(&spec.id);
        self.emit(
            self.event(&spec.id, JobEventKind::Failed, attempts)
                .cause(err.kind()),
        );
        JobReport {
            id: spec.id.clone(),
            status: JobStatus::Failed,
            stop_cause: None,
            estimate: None,
            ci95: None,
            iterations: 0,
            attempts,
            error: Some(err),
            elapsed_ms,
        }
    }
}

/// Maps an engine error onto the typed job error taxonomy.
fn classify(e: CountError) -> JobError {
    match e {
        CountError::BudgetExceeded { required, budget } => JobError::Budget(format!(
            "hashed layout needs {required} bytes, budget {budget}"
        )),
        CountError::CheckpointWrite(m) => JobError::Checkpoint(m),
        CountError::Cancelled => JobError::Engine("cancelled".to_string()),
        other => JobError::Engine(other.to_string()),
    }
}

/// Whether a checkpoint would pass the engine's resume fingerprint for
/// this job (mirrors `count_impl`'s checks; colors default to template
/// size in the service, which never overrides them).
fn fingerprint_matches(
    ck: &Checkpoint,
    spec: &JobSpec,
    template: &Template,
    rule: &StopRule,
    graph: &fascia_graph::Graph,
) -> bool {
    ck.seed == spec.seed
        && ck.colors == template.size()
        && ck.template_size == template.size()
        && ck.graph_vertices == graph.num_vertices()
        && ck.graph_edges == graph.num_edges()
        && ck.rule == *rule
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_watch_treats_stale_seq_as_death_and_resets_on_pid_change() {
        let t0 = Instant::now();
        let at = |ms: u64| t0 + Duration::from_millis(ms);
        let mut w = HeartbeatWatch::new(at(0));

        // No heartbeat yet: staleness accrues from spawn.
        w.observe(None, at(50));
        assert_eq!(w.stale_for(at(50)), Duration::from_millis(50));

        // First reading is life; advancing seq keeps it alive.
        w.observe(Some((100, 1)), at(60));
        w.observe(Some((100, 2)), at(120));
        assert_eq!(w.stale_for(at(130)), Duration::from_millis(10));

        // Same pid, frozen (or regressed) seq: staleness accrues — the
        // hardened protocol never trusts a non-advancing counter.
        w.observe(Some((100, 2)), at(500));
        w.observe(Some((100, 1)), at(900));
        assert_eq!(w.stale_for(at(900)), Duration::from_millis(780));

        // A new writer pid (restarted attempt) counts as life again.
        w.observe(Some((101, 1)), at(950));
        assert_eq!(w.stale_for(at(960)), Duration::from_millis(10));
    }

    #[test]
    fn classify_maps_the_engine_taxonomy() {
        assert_eq!(
            classify(CountError::BudgetExceeded {
                required: 10,
                budget: 5
            })
            .kind(),
            "budget-exceeded"
        );
        assert!(classify(CountError::CheckpointWrite("x".into())).is_transient());
        assert!(!classify(CountError::NoIterations).is_transient());
    }
}
