//! Job and result documents (DESIGN.md §16).
//!
//! A job is one JSON object, schema `fascia-job/1`:
//!
//! ```json
//! {
//!   "schema": "fascia-job/1",
//!   "id": "job-001",                  // required, filesystem-safe
//!   "graph": "graphs/yeast.txt",      // edge-list path or Table I name
//!   "template": "U5-1",               // named template, pathK, starK
//!   "iterations": 200,                // fixed rule (default 10)
//!   "adaptive": {"epsilon": 0.05, "delta": 0.05, "max_iters": 10000},
//!   "seed": 7,                        // default engine seed
//!   "deadline_ms": 60000,             // per-job, anchored at job start
//!   "memory_budget": 268435456,       // bytes, engine degradation ladder
//!   "table": "improved",              // naive|dense / improved|lazy / hash
//!   "parallel": "serial",             // serial|inner|outer|hybrid|auto
//!   "max_attempts": 4                 // overrides the service policy
//! }
//! ```
//!
//! Unknown keys are rejected (a typo must not silently change a run).
//! The result is schema `fascia-job-result/1`, written atomically and
//! durably next to the job; its `status` is the three-way contract:
//! `completed` (full estimate), `partial` (honest reduced-iteration
//! estimate with `ci95` and a `stop_cause`), or `failed` (typed error).

use fascia_core::parallel::ParallelMode;
use fascia_core::resilience::Json;
use fascia_core::stats::StopRule;
use fascia_obs::json::ObjectWriter;
use fascia_table::TableKind;

/// Schema tag of a job document.
pub const JOB_SCHEMA: &str = "fascia-job/1";
/// Schema tag of a result document.
pub const RESULT_SCHEMA: &str = "fascia-job-result/1";

/// One parsed counting job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique id; names the result/checkpoint/heartbeat files.
    pub id: String,
    /// Graph: edge-list path or a Table I dataset name.
    pub graph: String,
    /// Template: Figure 2 name, `pathK`, `starK`, or a template file.
    pub template: String,
    /// Fixed iteration count (ignored when `adaptive` is set).
    pub iterations: usize,
    /// Adaptive stop parameters `(epsilon, delta, max_iters)`.
    pub adaptive: Option<(f64, f64, usize)>,
    /// Coloring seed (fixed-rule runs are bitwise deterministic in it).
    pub seed: u64,
    /// Per-job deadline in milliseconds, anchored at job start (retries
    /// run under the remaining budget, never a fresh one).
    pub deadline_ms: Option<u64>,
    /// DP-table memory budget in bytes (engine degradation ladder).
    pub memory_budget: Option<usize>,
    /// Preferred table layout.
    pub table: TableKind,
    /// Engine parallel mode. Defaults to serial: service throughput comes
    /// from job-level concurrency, and serial runs keep chaos event logs
    /// in deterministic order.
    pub parallel: ParallelMode,
    /// Per-job override of the service's `max_attempts`.
    pub max_attempts: Option<u32>,
}

impl JobSpec {
    /// A minimal job: everything defaulted except identity and inputs.
    pub fn new(id: &str, graph: &str, template: &str) -> Self {
        Self {
            id: id.to_string(),
            graph: graph.to_string(),
            template: template.to_string(),
            iterations: 10,
            adaptive: None,
            seed: 0x00FA_5C1A,
            deadline_ms: None,
            memory_budget: None,
            table: TableKind::Lazy,
            parallel: ParallelMode::Serial,
            max_attempts: None,
        }
    }

    /// The effective stop rule.
    pub fn stop_rule(&self) -> StopRule {
        match self.adaptive {
            Some((epsilon, delta, max_iters)) => StopRule::RelativeError {
                epsilon,
                delta,
                min_iters: self.iterations.max(2),
                max_iters,
            },
            None => StopRule::FixedIterations(self.iterations),
        }
    }

    /// Parses a `fascia-job/1` document. Every failure is a
    /// [`JobError::Invalid`] — terminal, never retried.
    pub fn from_json(text: &str) -> Result<Self, JobError> {
        let bad = |m: String| JobError::Invalid(m);
        let doc = Json::parse(text).map_err(|e| bad(format!("unparseable job: {e}")))?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| bad("job is not an object".into()))?;
        let str_field = |k: &str| Json::get(obj, k).and_then(|v| v.as_str()).map(String::from);
        let schema = str_field("schema").ok_or_else(|| bad("missing schema".into()))?;
        if schema != JOB_SCHEMA {
            return Err(bad(format!("schema {schema:?}, expected {JOB_SCHEMA:?}")));
        }
        let id = str_field("id").ok_or_else(|| bad("missing id".into()))?;
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(bad(format!(
                "id {id:?} must be non-empty [A-Za-z0-9._-] (it names files)"
            )));
        }
        let mut spec = JobSpec::new(
            &id,
            &str_field("graph").ok_or_else(|| bad("missing graph".into()))?,
            &str_field("template").ok_or_else(|| bad("missing template".into()))?,
        );
        for (k, v) in obj {
            match k.as_str() {
                "schema" | "id" | "graph" | "template" => {}
                "iterations" => {
                    spec.iterations = v
                        .as_u64()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| bad("iterations must be a positive integer".into()))?
                        as usize;
                }
                "seed" => {
                    spec.seed = v.as_u64().ok_or_else(|| bad("seed must be a u64".into()))?;
                }
                "deadline_ms" => {
                    spec.deadline_ms = Some(
                        v.as_u64()
                            .ok_or_else(|| bad("deadline_ms: not a u64".into()))?,
                    );
                }
                "memory_budget" => {
                    spec.memory_budget = Some(
                        v.as_u64()
                            .ok_or_else(|| bad("memory_budget: not a u64".into()))?
                            as usize,
                    );
                }
                "max_attempts" => {
                    spec.max_attempts = Some(
                        v.as_u64()
                            .filter(|&n| (1..=u64::from(u32::MAX)).contains(&n))
                            .ok_or_else(|| bad("max_attempts must be ≥ 1".into()))?
                            as u32,
                    );
                }
                "table" => {
                    spec.table = match v.as_str() {
                        Some("naive") | Some("dense") => TableKind::Dense,
                        Some("improved") | Some("lazy") => TableKind::Lazy,
                        Some("hash") => TableKind::Hash,
                        other => return Err(bad(format!("table: unknown layout {other:?}"))),
                    };
                }
                "parallel" => {
                    spec.parallel = match v.as_str() {
                        Some("serial") => ParallelMode::Serial,
                        Some("inner") => ParallelMode::InnerLoop,
                        Some("outer") => ParallelMode::OuterLoop,
                        Some("hybrid") => ParallelMode::Hybrid,
                        Some("auto") => ParallelMode::Auto,
                        other => return Err(bad(format!("parallel: unknown mode {other:?}"))),
                    };
                }
                "adaptive" => {
                    let a = v
                        .as_obj()
                        .ok_or_else(|| bad("adaptive must be an object".into()))?;
                    let f = |k: &str, dflt: f64| Json::get(a, k).map_or(Some(dflt), |v| v.as_f64());
                    let epsilon = f("epsilon", 0.05)
                        .filter(|e| *e > 0.0)
                        .ok_or_else(|| bad("adaptive.epsilon must be > 0".into()))?;
                    let delta = f("delta", 0.05)
                        .filter(|d| (0.0..1.0).contains(d) && *d > 0.0)
                        .ok_or_else(|| bad("adaptive.delta must be in (0, 1)".into()))?;
                    let max_iters = Json::get(a, "max_iters")
                        .map_or(Some(10_000), |v| v.as_u64().map(|n| n as usize))
                        .filter(|&n| n > 0)
                        .ok_or_else(|| bad("adaptive.max_iters must be ≥ 1".into()))?;
                    spec.adaptive = Some((epsilon, delta, max_iters));
                }
                other => {
                    return Err(bad(format!(
                        "unknown key {other:?} (typos must not silently change a run)"
                    )));
                }
            }
        }
        Ok(spec)
    }

    /// Renders the job back to its `fascia-job/1` document (used by the
    /// stdin-queue ingest to persist submitted jobs into the spool).
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("schema", JOB_SCHEMA)
            .field_str("id", &self.id)
            .field_str("graph", &self.graph)
            .field_str("template", &self.template)
            .field_u64("iterations", self.iterations as u64)
            .field_u64("seed", self.seed);
        if let Some((epsilon, delta, max_iters)) = self.adaptive {
            let mut a = ObjectWriter::new();
            a.field_f64("epsilon", epsilon)
                .field_f64("delta", delta)
                .field_u64("max_iters", max_iters as u64);
            w.field_raw("adaptive", &a.finish());
        }
        if let Some(ms) = self.deadline_ms {
            w.field_u64("deadline_ms", ms);
        }
        if let Some(b) = self.memory_budget {
            w.field_u64("memory_budget", b as u64);
        }
        if let Some(n) = self.max_attempts {
            w.field_u64("max_attempts", u64::from(n));
        }
        w.field_str(
            "table",
            match self.table {
                TableKind::Dense => "naive",
                TableKind::Lazy => "improved",
                TableKind::Hash => "hash",
            },
        );
        w.field_str(
            "parallel",
            match self.parallel {
                ParallelMode::Serial => "serial",
                ParallelMode::InnerLoop => "inner",
                ParallelMode::OuterLoop => "outer",
                ParallelMode::Hybrid => "hybrid",
                ParallelMode::Auto => "auto",
            },
        );
        w.finish()
    }
}

/// Typed job failure. [`JobError::is_transient`] decides retry vs
/// terminal; the `kind` string is stable (scripts and the soak gate
/// match on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Malformed or unsatisfiable job document — terminal.
    Invalid(String),
    /// Even the hashed layout cannot fit the memory budget — terminal
    /// (the supervisor first tries to harvest a partial estimate).
    Budget(String),
    /// Graph could not be loaded — transient (NFS flake, injected IO).
    GraphLoad(String),
    /// Checkpoint write failed mid-run — transient; the run stops rather
    /// than continue unprotected, and the retry resumes from the last
    /// durable checkpoint.
    Checkpoint(String),
    /// The worker thread died (double panic) — transient.
    WorkerPanic(String),
    /// The worker's heartbeat sequence went stale — transient; the
    /// supervisor cancelled and detached it rather than hang.
    WorkerDead(String),
    /// Any other engine rejection (bad colors, partition failure…) —
    /// terminal: the same input will fail the same way.
    Engine(String),
    /// The job's deadline expired before a single iteration finished, so
    /// not even a partial estimate exists — terminal.
    Deadline(String),
    /// Transient failures exhausted the attempt budget — terminal.
    RetriesExhausted {
        /// Attempts consumed.
        attempts: u32,
        /// The final transient error's message.
        last: String,
    },
    /// The result document could not be written — terminal, surfaced in
    /// the service summary (there is nowhere durable left to record it).
    ResultWrite(String),
}

impl JobError {
    /// Stable kind string for documents and gates.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Invalid(_) => "invalid",
            JobError::Budget(_) => "budget-exceeded",
            JobError::GraphLoad(_) => "graph-load",
            JobError::Checkpoint(_) => "checkpoint-write",
            JobError::WorkerPanic(_) => "worker-panic",
            JobError::WorkerDead(_) => "worker-dead",
            JobError::Engine(_) => "engine",
            JobError::Deadline(_) => "deadline",
            JobError::RetriesExhausted { .. } => "retries-exhausted",
            JobError::ResultWrite(_) => "result-write",
        }
    }

    /// Whether the supervisor should retry (with backoff) rather than
    /// fail the job.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            JobError::GraphLoad(_)
                | JobError::Checkpoint(_)
                | JobError::WorkerPanic(_)
                | JobError::WorkerDead(_)
        )
    }

    /// Human-readable message (the payload).
    pub fn message(&self) -> String {
        match self {
            JobError::Invalid(m)
            | JobError::Budget(m)
            | JobError::GraphLoad(m)
            | JobError::Checkpoint(m)
            | JobError::WorkerPanic(m)
            | JobError::WorkerDead(m)
            | JobError::Engine(m)
            | JobError::Deadline(m)
            | JobError::ResultWrite(m) => m.clone(),
            JobError::RetriesExhausted { attempts, last } => {
                format!("{attempts} attempts exhausted; last: {last}")
            }
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for JobError {}

/// Terminal state of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The stop rule ran to completion (or converged).
    Completed,
    /// The run ended early (deadline, budget) but ≥ 1 iteration
    /// finished: the estimate is an honest reduced-iteration mean with
    /// its own `ci95`.
    Partial,
    /// No usable estimate; `error` is the typed cause.
    Failed,
}

impl JobStatus {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Partial => "partial",
            JobStatus::Failed => "failed",
        }
    }
}

/// The terminal record of one job, rendered to `fascia-job-result/1`.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's id.
    pub id: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Why the counting stopped (`completed`, `converged`,
    /// `deadline-exceeded`, …) when an estimate exists.
    pub stop_cause: Option<String>,
    /// Point estimate (absent only for `failed`).
    pub estimate: Option<f64>,
    /// ~95% CI half-width of the estimate.
    pub ci95: Option<f64>,
    /// Iterations behind the estimate.
    pub iterations: usize,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Typed error (always present for `failed`, optionally annotating a
    /// `partial` that degraded because of one).
    pub error: Option<JobError>,
    /// Wall-clock from job start to terminal state, milliseconds
    /// (monotonic difference; stamped for humans).
    pub elapsed_ms: u64,
}

impl JobReport {
    /// Renders the `fascia-job-result/1` document.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("schema", RESULT_SCHEMA)
            .field_str("id", &self.id)
            .field_str("status", self.status.name());
        match &self.stop_cause {
            Some(c) => w.field_str("stop_cause", c),
            None => w.field_raw("stop_cause", "null"),
        };
        match self.estimate {
            Some(e) => w.field_f64("estimate", e),
            None => w.field_raw("estimate", "null"),
        };
        match self.ci95 {
            Some(c) => w.field_f64("ci95", c),
            None => w.field_raw("ci95", "null"),
        };
        w.field_u64("iterations", self.iterations as u64)
            .field_u64("attempts", u64::from(self.attempts));
        match &self.error {
            Some(e) => {
                let mut ew = ObjectWriter::new();
                ew.field_str("kind", e.kind())
                    .field_str("message", &e.message());
                w.field_raw("error", &ew.finish());
            }
            None => {
                w.field_raw("error", "null");
            }
        }
        w.field_u64("elapsed_ms", self.elapsed_ms);
        w.finish()
    }

    /// Parses a result document back (tests and the soak gate).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("unparseable result: {e}"))?;
        let obj = doc.as_obj().ok_or("result is not an object")?;
        let get_str = |k: &str| Json::get(obj, k).and_then(|v| v.as_str()).map(String::from);
        if get_str("schema").as_deref() != Some(RESULT_SCHEMA) {
            return Err(format!("not a {RESULT_SCHEMA} document"));
        }
        let status = match get_str("status").as_deref() {
            Some("completed") => JobStatus::Completed,
            Some("partial") => JobStatus::Partial,
            Some("failed") => JobStatus::Failed,
            other => return Err(format!("unknown status {other:?}")),
        };
        let error = match Json::get(obj, "error") {
            Some(Json::Obj(e)) => {
                let kind = Json::get(e, "kind").and_then(|v| v.as_str()).unwrap_or("?");
                let msg = Json::get(e, "message")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string();
                Some(match kind {
                    "invalid" => JobError::Invalid(msg),
                    "budget-exceeded" => JobError::Budget(msg),
                    "graph-load" => JobError::GraphLoad(msg),
                    "checkpoint-write" => JobError::Checkpoint(msg),
                    "worker-panic" => JobError::WorkerPanic(msg),
                    "worker-dead" => JobError::WorkerDead(msg),
                    "engine" => JobError::Engine(msg),
                    "deadline" => JobError::Deadline(msg),
                    "result-write" => JobError::ResultWrite(msg),
                    "retries-exhausted" => JobError::RetriesExhausted {
                        attempts: 0,
                        last: msg,
                    },
                    other => JobError::Engine(format!("{other}: {msg}")),
                })
            }
            _ => None,
        };
        Ok(Self {
            id: get_str("id").ok_or("missing id")?,
            status,
            stop_cause: get_str("stop_cause"),
            estimate: Json::get(obj, "estimate").and_then(|v| v.as_f64()),
            ci95: Json::get(obj, "ci95").and_then(|v| v.as_f64()),
            iterations: Json::get(obj, "iterations")
                .and_then(|v| v.as_u64())
                .unwrap_or(0) as usize,
            attempts: Json::get(obj, "attempts")
                .and_then(|v| v.as_u64())
                .unwrap_or(0) as u32,
            error,
            elapsed_ms: Json::get(obj, "elapsed_ms")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_roundtrips_through_json() {
        let mut spec = JobSpec::new("j-1", "graphs/a.txt", "U5-1");
        spec.iterations = 128;
        spec.seed = 42;
        spec.deadline_ms = Some(5000);
        spec.memory_budget = Some(1 << 20);
        spec.table = TableKind::Hash;
        spec.max_attempts = Some(2);
        let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        let mut adaptive = JobSpec::new("j-2", "yeast", "path5");
        adaptive.adaptive = Some((0.1, 0.05, 500));
        let parsed = JobSpec::from_json(&adaptive.to_json()).unwrap();
        assert_eq!(parsed, adaptive);
        assert!(matches!(parsed.stop_rule(), StopRule::RelativeError { .. }));
    }

    #[test]
    fn bad_jobs_are_terminal_invalid() {
        for bad in [
            "not json",
            "{}",
            r#"{"schema":"fascia-job/9","id":"a","graph":"g","template":"t"}"#,
            r#"{"schema":"fascia-job/1","id":"../etc","graph":"g","template":"t"}"#,
            r#"{"schema":"fascia-job/1","id":"","graph":"g","template":"t"}"#,
            r#"{"schema":"fascia-job/1","id":"a","graph":"g","template":"t","iterations":0}"#,
            r#"{"schema":"fascia-job/1","id":"a","graph":"g","template":"t","typo":1}"#,
        ] {
            let err = JobSpec::from_json(bad).unwrap_err();
            assert_eq!(err.kind(), "invalid", "for {bad:?}");
            assert!(!err.is_transient());
        }
    }

    #[test]
    fn report_roundtrips_and_keeps_estimate_bits() {
        let r = JobReport {
            id: "j".into(),
            status: JobStatus::Partial,
            stop_cause: Some("deadline-exceeded".into()),
            estimate: Some(1_234.567_890_123_4),
            ci95: Some(12.5),
            iterations: 37,
            attempts: 2,
            error: None,
            elapsed_ms: 250,
        };
        let text = r.to_json();
        let back = JobReport::from_json(&text).unwrap();
        // Shortest-roundtrip float formatting makes the JSON text a
        // faithful carrier of the exact bits — the property the bitwise
        // crash-resume acceptance test relies on.
        assert_eq!(
            back.estimate.unwrap().to_bits(),
            1_234.567_890_123_4_f64.to_bits()
        );
        assert_eq!(back.status, JobStatus::Partial);
        assert_eq!(back.stop_cause.as_deref(), Some("deadline-exceeded"));

        let failed = JobReport {
            id: "k".into(),
            status: JobStatus::Failed,
            stop_cause: None,
            estimate: None,
            ci95: None,
            iterations: 0,
            attempts: 4,
            error: Some(JobError::RetriesExhausted {
                attempts: 4,
                last: "worker-panic: chaos".into(),
            }),
            elapsed_ms: 9,
        };
        let back = JobReport::from_json(&failed.to_json()).unwrap();
        assert_eq!(back.error.as_ref().unwrap().kind(), "retries-exhausted");
        assert!(back.estimate.is_none());
    }
}
