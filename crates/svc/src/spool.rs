//! On-disk spool: the service's durable state machine.
//!
//! ```text
//! <root>/
//!   jobs/<name>.json      submitted fascia-job/1 documents (the queue)
//!   results/<id>.json     terminal fascia-job-result/1 documents
//!   ckpt/<id>.a<K>.ckpt   per-attempt fascia-ckpt/1 checkpoints
//!   hb/<id>.hb            the running attempt's fascia-heartbeat/1 file
//!   est/<id>.json         per-job fascia-est/1 estimator-convergence traces
//!   chaos.events          fired chaos schedule (when chaos is active)
//! ```
//!
//! Idempotency contract: a job whose id already has a result file is
//! *done* and is skipped on every later pass — that is the whole
//! restart-recovery story. A killed service leaves at worst a valid
//! checkpoint (writes are atomic and, in the service path, durable:
//! tmp → fsync → rename → fsync dir) plus `.tmp` staging siblings,
//! which [`Spool::sweep_tmp`] removes at startup.
//!
//! Checkpoints are *per attempt* (`<id>.a<K>.ckpt`): a detached zombie
//! worker from attempt K can keep flushing its own file without ever
//! regressing attempt K+1's, and resume picks the best valid checkpoint
//! across attempts.

use fascia_core::resilience::{atomic_write, atomic_write_durable, Checkpoint};
use std::io;
use std::path::{Path, PathBuf};

/// Handle to a spool directory tree.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Opens (creating as needed) the spool at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        for sub in ["jobs", "results", "ckpt", "hb", "events", "est"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Self { root })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Submits a job document into the queue (atomic + durable write,
    /// named by the job id so resubmission is idempotent).
    pub fn submit(&self, id: &str, job_json: &str) -> io::Result<PathBuf> {
        let path = self.root.join("jobs").join(format!("{id}.json"));
        atomic_write_durable(&path, job_json)?;
        Ok(path)
    }

    /// Queued job files in deterministic (byte-sorted filename) order —
    /// the order that makes chaos run indices replayable.
    pub fn pending_jobs(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(self.root.join("jobs"))? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Where the job's terminal result lives.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.root.join("results").join(format!("{id}.json"))
    }

    /// Whether the job already reached a terminal state.
    pub fn has_result(&self, id: &str) -> bool {
        self.result_path(id).exists()
    }

    /// Writes the terminal result durably (atomic rename + dir fsync):
    /// once this returns, a crash cannot resurrect the job.
    pub fn write_result(&self, id: &str, json: &str) -> io::Result<()> {
        atomic_write_durable(&self.result_path(id), json)
    }

    /// Attempt `k`'s checkpoint path for the job.
    pub fn ckpt_path(&self, id: &str, attempt: u32) -> PathBuf {
        self.root.join("ckpt").join(format!("{id}.a{attempt}.ckpt"))
    }

    /// The job's heartbeat path (shared across attempts; the supervision
    /// triple `pid`/`job_id`/`seq` tells writers apart).
    pub fn hb_path(&self, id: &str) -> PathBuf {
        self.root.join("hb").join(format!("{id}.hb"))
    }

    /// The most advanced *valid* checkpoint among the job's attempts,
    /// with its iteration count. Corrupt or unreadable files are skipped
    /// (a torn write cannot exist thanks to atomic renames, but a zombie
    /// writer's file might be from a stale fingerprint — the engine's
    /// resume check still guards that).
    pub fn best_checkpoint(&self, id: &str) -> Option<(Checkpoint, usize)> {
        let prefix = format!("{id}.a");
        let dir = std::fs::read_dir(self.root.join("ckpt")).ok()?;
        let mut best: Option<(Checkpoint, usize)> = None;
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(&prefix) || !name.ends_with(".ckpt") {
                continue;
            }
            if let Ok(ck) = Checkpoint::load(&entry.path()) {
                let n = ck.iterations_done();
                if best.as_ref().is_none_or(|(_, b)| n > *b) {
                    best = Some((ck, n));
                }
            }
        }
        best
    }

    /// Removes the job's working files (checkpoints, heartbeat) after a
    /// terminal result is durably recorded.
    pub fn cleanup_job(&self, id: &str) {
        let prefix = format!("{id}.a");
        if let Ok(dir) = std::fs::read_dir(self.root.join("ckpt")) {
            for entry in dir.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".ckpt"))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let _ = std::fs::remove_file(self.hb_path(id));
    }

    /// The job's estimator-convergence trace (`fascia-est/1`), written
    /// when an attempt finishes and served live by the admin plane.
    pub fn est_path(&self, id: &str) -> PathBuf {
        self.root.join("est").join(format!("{id}.json"))
    }

    /// Writes (or refreshes) the job's estimator trace. Atomic but not
    /// durable: the trace is observability, not recovery state, and it
    /// is rewritten on every live flush — a lost write costs nothing.
    pub fn write_est(&self, id: &str, json: &str) -> io::Result<()> {
        atomic_write(&self.est_path(id), json)
    }

    /// The job lifecycle event log (`fascia-events/1` JSONL).
    pub fn events_path(&self) -> PathBuf {
        self.root.join("events").join("events.jsonl")
    }

    /// Queue snapshot for gauges and `/healthz`: how many jobs still
    /// wait for a terminal result, and the oldest such job file's mtime
    /// in unix milliseconds (the spool-lag anchor).
    pub fn queue_snapshot(&self) -> (usize, Option<u64>) {
        let mut depth = 0;
        let mut oldest: Option<u64> = None;
        for path in self.pending_jobs().unwrap_or_default() {
            let id = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            if self.has_result(&id) {
                continue;
            }
            depth += 1;
            let mtime_ms = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_millis() as u64);
            if let Some(ms) = mtime_ms {
                oldest = Some(oldest.map_or(ms, |o| o.min(ms)));
            }
        }
        (depth, oldest)
    }

    /// Sweeps `.tmp` staging files left by a killed writer. Returns how
    /// many were removed. Call at service start, before any job runs.
    pub fn sweep_tmp(&self) -> usize {
        let mut removed = 0;
        for sub in ["jobs", "results", "ckpt", "hb", "events", "est"] {
            let Ok(dir) = std::fs::read_dir(self.root.join(sub)) else {
                continue;
            };
            for entry in dir.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "tmp")
                    && std::fs::remove_file(&path).is_ok()
                {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fascia_core::stats::StopRule;

    fn tmp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("fascia-spool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn ckpt(iters: usize) -> Checkpoint {
        Checkpoint {
            seed: 1,
            colors: 5,
            template_size: 5,
            graph_vertices: 10,
            graph_edges: 12,
            rule: StopRule::FixedIterations(100),
            per_iteration: (0..iters).map(|i| i as f64).collect(),
            peak_table_bytes: 64,
        }
    }

    #[test]
    fn queue_order_is_deterministic_and_results_gate_jobs() {
        let spool = Spool::open(tmp_root("order")).unwrap();
        spool.submit("b-job", "{}").unwrap();
        spool.submit("a-job", "{}").unwrap();
        let names: Vec<String> = spool
            .pending_jobs()
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a-job.json", "b-job.json"]);
        assert!(!spool.has_result("a-job"));
        spool.write_result("a-job", "{}").unwrap();
        assert!(spool.has_result("a-job"));
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn best_checkpoint_picks_most_iterations_and_skips_corrupt() {
        let spool = Spool::open(tmp_root("best")).unwrap();
        ckpt(3).save(&spool.ckpt_path("j", 0)).unwrap();
        ckpt(7).save(&spool.ckpt_path("j", 1)).unwrap();
        std::fs::write(spool.ckpt_path("j", 2), "garbage").unwrap();
        ckpt(9).save(&spool.ckpt_path("other", 0)).unwrap();
        let (best, n) = spool.best_checkpoint("j").unwrap();
        assert_eq!(n, 7);
        assert_eq!(best.iterations_done(), 7);
        assert!(spool.best_checkpoint("missing").is_none());
        spool.cleanup_job("j");
        assert!(spool.best_checkpoint("j").is_none());
        assert!(
            spool.best_checkpoint("other").is_some(),
            "cleanup is scoped"
        );
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn sweep_removes_only_tmp_files_including_events_dir() {
        let spool = Spool::open(tmp_root("sweep")).unwrap();
        std::fs::write(spool.root().join("ckpt/x.ckpt.tmp"), "half").unwrap();
        std::fs::write(spool.root().join("results/y.json.tmp"), "half").unwrap();
        // Regression (ISSUE 9 satellite): a stale staging file in the
        // events dir is swept under the same contract, while the event
        // log itself survives.
        std::fs::write(spool.root().join("events/events.jsonl.tmp"), "half").unwrap();
        std::fs::write(spool.events_path(), "{}\n").unwrap();
        // Regression (ISSUE 10 satellite): a stale staging file in the
        // estimate-trace dir is swept too, while a finished trace stays.
        std::fs::write(spool.root().join("est/z.json.tmp"), "half").unwrap();
        std::fs::write(spool.est_path("z"), "{\"schema\":\"fascia-est/1\"}").unwrap();
        spool.submit("keep", "{}").unwrap();
        assert_eq!(spool.sweep_tmp(), 4);
        assert!(spool.events_path().exists(), "the log is not staging");
        assert!(spool.est_path("z").exists(), "finished traces survive");
        assert_eq!(spool.pending_jobs().unwrap().len(), 1);
        assert_eq!(spool.sweep_tmp(), 0);
        let _ = std::fs::remove_dir_all(spool.root());
    }

    #[test]
    fn queue_snapshot_counts_only_unresolved_jobs() {
        let spool = Spool::open(tmp_root("snapshot")).unwrap();
        assert_eq!(spool.queue_snapshot(), (0, None));
        spool.submit("done", "{}").unwrap();
        spool.submit("waiting", "{}").unwrap();
        spool.write_result("done", "{}").unwrap();
        let (depth, oldest) = spool.queue_snapshot();
        assert_eq!(depth, 1);
        assert!(oldest.is_some(), "pending job carries its mtime");
        let _ = std::fs::remove_dir_all(spool.root());
    }
}
