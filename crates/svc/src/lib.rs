//! `fascia-svc` — the supervised resident counting service (DESIGN.md
//! §16; ROADMAP item 3).
//!
//! Turns the CLI-per-run model into a daemon: a [`Spool`] directory is
//! the durable job queue, a [`GraphPool`] keeps CSR graphs resident and
//! shared across jobs, and a [`Supervisor`] drives every job to exactly
//! one terminal result — `completed`, `partial` (honest reduced-iteration
//! estimate), or `failed` (typed error) — through per-job deadlines,
//! memory budgets, capped-exponential retry with deterministic jitter,
//! heartbeat-sequence liveness, and checkpoint-based crash recovery.
//!
//! Recovery contract: the service can be SIGKILLed at any instant and
//! restarted; jobs with results are skipped, in-flight jobs resume from
//! their last durable checkpoint, and a fixed-rule job's final estimate
//! is bitwise-equal to an uninterrupted run (the engine's resume is
//! bit-for-bit, and every service write is atomic-rename + fsync).
//!
//! The whole composition is proved by injected faults: a
//! [`fascia_core::chaos`] schedule (env `FASCIA_CHAOS` or
//! `--chaos`) fires worker panics, checkpoint/graph/result IO errors,
//! DP stalls, and budget squeezes at seed-scheduled coordinates, and the
//! fired-event log lands in `<spool>/chaos.events` so any failing seed
//! replays byte-for-byte.

pub mod admin;
pub mod backoff;
pub mod clock;
pub mod events;
pub mod job;
pub mod pool;
pub mod spool;
pub mod supervisor;

pub use admin::{AdminConfig, AdminServer, AdminState};
pub use backoff::BackoffPolicy;
pub use clock::{Clock, JobDeadline, MonotonicClock, TestClock};
pub use job::{JobError, JobReport, JobSpec, JobStatus, JOB_SCHEMA, RESULT_SCHEMA};
pub use pool::GraphPool;
pub use spool::Spool;
pub use supervisor::{Supervisor, SupervisorConfig};

use fascia_core::chaos::{Chaos, ChaosRun, ChaosSpec, IoSite};
use fascia_core::resilience::atomic_write;
use fascia_obs::json::ObjectWriter;
use fascia_obs::{EventLog, JobEvent, JobEventKind, Metrics};
use std::collections::HashMap;
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Service-level configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Supervision knobs (backoff, poll, stall timeout).
    pub supervisor: SupervisorConfig,
    /// Drain the queue once and exit (tests, batch runs). Off = daemon:
    /// keep rescanning the spool for new jobs.
    pub once: bool,
    /// Daemon mode: how often to rescan an empty queue.
    pub scan_interval: Duration,
    /// Chaos schedule for soak runs.
    pub chaos: Option<ChaosSpec>,
}

/// What one service run did — rendered as `fascia-svc-report/1`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Job files seen across all passes.
    pub jobs_seen: usize,
    /// Skipped because a terminal result already existed (recovery).
    pub skipped: usize,
    /// Terminal `completed` results written this run.
    pub completed: usize,
    /// Terminal `partial` results written this run.
    pub partial: usize,
    /// Terminal `failed` results written this run.
    pub failed: usize,
    /// Worker attempts consumed across all jobs.
    pub attempts: u64,
    /// Results that could not be written even with retries.
    pub result_write_failures: usize,
    /// Lifecycle-event appends that failed (the log never wedges a job).
    pub events_write_failures: u64,
    /// Trace-ring events dropped across all attempts (full rings).
    pub trace_events_dropped: u64,
    /// Stale `.tmp` staging files swept at startup.
    pub tmp_swept: usize,
    /// Chaos events fired (0 without a schedule).
    pub chaos_events: usize,
    /// Graphs resident in the pool at exit.
    pub graphs_resident: usize,
    /// Pool cache hits (jobs that reused a resident graph).
    pub pool_hits: u64,
}

impl ServiceSummary {
    /// Renders the `fascia-svc-report/1` document.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("schema", "fascia-svc-report/1")
            .field_u64("jobs_seen", self.jobs_seen as u64)
            .field_u64("skipped", self.skipped as u64)
            .field_u64("completed", self.completed as u64)
            .field_u64("partial", self.partial as u64)
            .field_u64("failed", self.failed as u64)
            .field_u64("attempts", self.attempts)
            .field_u64("result_write_failures", self.result_write_failures as u64)
            .field_u64("events_write_failures", self.events_write_failures)
            .field_u64("trace_events_dropped", self.trace_events_dropped)
            .field_u64("tmp_swept", self.tmp_swept as u64)
            .field_u64("chaos_events", self.chaos_events as u64)
            .field_u64("graphs_resident", self.graphs_resident as u64)
            .field_u64("pool_hits", self.pool_hits);
        w.finish()
    }
}

/// The resident service: owns the spool, pool, chaos schedule, and
/// supervision config; [`Service::run`] is the daemon loop.
pub struct Service {
    spool: Spool,
    pool: GraphPool,
    cfg: ServiceConfig,
    chaos: Option<Arc<Chaos>>,
    /// Service-scope chaos run (result-write faults); engine runs claim
    /// their own indices, so this is always run index 0 — deterministic.
    svc_run: Option<ChaosRun>,
    result_write_ops: std::sync::atomic::AtomicU64,
    /// Live service metrics (queue gauges, terminal-state counters,
    /// latency histograms); shared with the admin endpoint.
    metrics: Arc<Metrics>,
    /// The `fascia-events/1` lifecycle log under `<spool>/events/`.
    events: EventLog,
    /// First-sighting wall-clock label per job id — the queue-wait
    /// anchor, and the guard that emits `submitted` exactly once per
    /// process.
    submitted_at: Mutex<HashMap<String, u64>>,
}

impl Service {
    /// Opens (creating as needed) a service over the spool at `root`.
    /// Sweeps stale `.tmp` staging files before anything else runs.
    pub fn open(root: impl Into<std::path::PathBuf>, cfg: ServiceConfig) -> std::io::Result<Self> {
        let spool = Spool::open(root)?;
        let tmp_swept = spool.sweep_tmp();
        let chaos = cfg.chaos.clone().map(|s| Arc::new(Chaos::new(s)));
        let svc_run = chaos.as_ref().map(|c| c.begin_run());
        let pool = GraphPool::new(svc_run.clone());
        let events = EventLog::open(spool.events_path())?;
        let metrics = Arc::new(Metrics::new());
        // Register the service series up front so a scrape before the
        // first job already sees every gauge/counter/histogram name.
        for name in ["svc.queue.depth", "svc.oldest_job.age_ms"] {
            metrics.gauge(name);
        }
        for name in [
            "svc.jobs.completed",
            "svc.jobs.partial",
            "svc.jobs.failed",
            "svc.jobs.skipped",
            "svc.attempts.total",
            "svc.events.write_failures",
            "svc.trace.events_recorded",
            "svc.trace.events_dropped",
        ] {
            metrics.counter(name);
        }
        for name in [
            "svc.queue.wait_ms",
            "svc.attempt.duration_ms",
            "svc.job.e2e_ms",
        ] {
            metrics.histogram(name);
        }
        let mut svc = Self {
            spool,
            pool,
            cfg,
            chaos,
            svc_run,
            result_write_ops: std::sync::atomic::AtomicU64::new(0),
            metrics,
            events,
            submitted_at: Mutex::new(HashMap::new()),
        };
        svc.cfg.scan_interval = svc.cfg.scan_interval.max(Duration::from_millis(10));
        let _ = tmp_swept; // recorded in run()'s summary
        Ok(svc)
    }

    /// The spool this service serves.
    pub fn spool(&self) -> &Spool {
        &self.spool
    }

    /// The live metrics registry (shared with the admin endpoint).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The lifecycle event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Appends a lifecycle event; write failures only bump a counter
    /// (telemetry must never wedge the queue).
    fn emit(&self, ev: JobEvent) {
        if self.events.append(ev).is_err() {
            self.metrics.counter("svc.events.write_failures").inc();
        }
    }

    /// Records the job's first sighting (ingest or spool scan): emits
    /// `submitted` once per id per process and anchors its queue wait.
    fn note_submitted(&self, clock: &dyn Clock, id: &str) -> u64 {
        let mut map = self.submitted_at.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&at) = map.get(id) {
            return at;
        }
        let now = clock.wall_unix_ms();
        map.insert(id.to_string(), now);
        drop(map);
        self.emit(JobEvent::new(now, id, JobEventKind::Submitted, 0));
        now
    }

    /// Refreshes the queue gauges from a spool snapshot.
    fn update_queue_gauges(&self, clock: &dyn Clock) {
        let (depth, oldest_ms) = self.spool.queue_snapshot();
        self.metrics.gauge("svc.queue.depth").set(depth as u64);
        let age = oldest_ms.map_or(0, |m| clock.wall_unix_ms().saturating_sub(m));
        self.metrics.gauge("svc.oldest_job.age_ms").set(age);
    }

    /// Ingests a JSONL job stream (one `fascia-job/1` object per line)
    /// into the spool. Returns `(accepted, rejected)`; rejected lines
    /// are reported on stderr and dropped — a malformed submission must
    /// not wedge the queue. Each accepted job gets a `submitted` event
    /// timestamped by `clock` (the same handle that stamps the rest of
    /// its lifecycle).
    pub fn ingest_jsonl(
        &self,
        clock: &dyn Clock,
        reader: impl BufRead,
    ) -> std::io::Result<(usize, usize)> {
        let (mut accepted, mut rejected) = (0, 0);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match JobSpec::from_json(&line) {
                Ok(spec) => {
                    self.spool.submit(&spec.id, &spec.to_json())?;
                    self.note_submitted(clock, &spec.id);
                    accepted += 1;
                }
                Err(e) => {
                    eprintln!("fascia-svc: rejected job line: {e}");
                    rejected += 1;
                }
            }
        }
        Ok((accepted, rejected))
    }

    /// Runs the service until the queue drains (`once`) or `stop` is
    /// set (daemon). Every queued job reaches a terminal result exactly
    /// once; the summary says what happened.
    pub fn run(&self, clock: &dyn Clock, stop: Option<&AtomicBool>) -> ServiceSummary {
        let mut summary = ServiceSummary {
            tmp_swept: 0, // swept in open(); re-sweep below is what this run saw
            ..ServiceSummary::default()
        };
        summary.tmp_swept = self.spool.sweep_tmp();
        let sup = Supervisor {
            spool: &self.spool,
            pool: &self.pool,
            clock,
            cfg: &self.cfg.supervisor,
            chaos: self.chaos.clone(),
            events: Some(&self.events),
            metrics: Some(&self.metrics),
        };
        let stopped = || stop.is_some_and(|s| s.load(Ordering::Relaxed));
        loop {
            self.update_queue_gauges(clock);
            let pending = self.spool.pending_jobs().unwrap_or_default();
            let mut ran_any = false;
            for path in pending {
                if stopped() {
                    break;
                }
                summary.jobs_seen += 1;
                let parsed = self.job_from_file(&path);
                let id = match &parsed {
                    Ok(spec) => spec.id.clone(),
                    Err((id, _)) => id.clone(),
                };
                if self.spool.has_result(&id) {
                    summary.skipped += 1;
                    self.metrics.counter("svc.jobs.skipped").inc();
                    continue;
                }
                ran_any = true;
                let submitted_ms = self.note_submitted(clock, &id);
                let now = clock.wall_unix_ms();
                self.emit(JobEvent::new(now, &id, JobEventKind::Dequeued, 0));
                self.metrics
                    .histogram("svc.queue.wait_ms")
                    .record(now.saturating_sub(submitted_ms));
                let report = match parsed {
                    Ok(spec) => sup.run_job(&spec),
                    Err((id, e)) => {
                        // The supervisor never ran, so the terminal
                        // `failed` event is emitted here.
                        self.emit(
                            JobEvent::new(clock.wall_unix_ms(), &id, JobEventKind::Failed, 0)
                                .cause(e.kind()),
                        );
                        JobReport {
                            id,
                            status: JobStatus::Failed,
                            stop_cause: None,
                            estimate: None,
                            ci95: None,
                            iterations: 0,
                            attempts: 0,
                            error: Some(e),
                            elapsed_ms: 0,
                        }
                    }
                };
                summary.attempts += u64::from(report.attempts);
                self.metrics
                    .counter("svc.attempts.total")
                    .add(u64::from(report.attempts));
                match report.status {
                    JobStatus::Completed => {
                        summary.completed += 1;
                        self.metrics.counter("svc.jobs.completed").inc();
                    }
                    JobStatus::Partial => {
                        summary.partial += 1;
                        self.metrics.counter("svc.jobs.partial").inc();
                    }
                    JobStatus::Failed => {
                        summary.failed += 1;
                        self.metrics.counter("svc.jobs.failed").inc();
                    }
                }
                self.metrics
                    .histogram("svc.job.e2e_ms")
                    .record(report.elapsed_ms);
                if self.write_result(clock, &report).is_err() {
                    summary.result_write_failures += 1;
                    eprintln!(
                        "fascia-svc: could not record result for job {} (retries exhausted)",
                        report.id
                    );
                }
                self.update_queue_gauges(clock);
            }
            self.dump_chaos_events();
            if self.cfg.once || stopped() {
                break;
            }
            if !ran_any {
                clock.sleep(self.cfg.scan_interval);
            }
        }
        self.update_queue_gauges(clock);
        if let Some(c) = &self.chaos {
            summary.chaos_events = c.events().len();
        }
        let (resident, hits) = self.pool.stats();
        summary.graphs_resident = resident;
        summary.pool_hits = hits;
        summary.events_write_failures = self.metrics.counter("svc.events.write_failures").get();
        summary.trace_events_dropped = self.metrics.counter("svc.trace.events_dropped").get();
        summary
    }

    /// Reads and parses one queued job file. A file whose very name or
    /// contents are unusable still produces a terminal `failed` result
    /// (keyed by the filename stem) so it cannot clog the queue forever.
    fn job_from_file(&self, path: &std::path::Path) -> Result<JobSpec, (String, JobError)> {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed-job".to_string());
        let fallback_id: String = stem
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let text = std::fs::read_to_string(path).map_err(|e| {
            (
                fallback_id.clone(),
                JobError::Invalid(format!("unreadable job file: {e}")),
            )
        })?;
        let spec = JobSpec::from_json(&text).map_err(|e| (fallback_id.clone(), e))?;
        if format!("{}.json", spec.id) != path.file_name().unwrap_or_default().to_string_lossy() {
            return Err((
                fallback_id,
                JobError::Invalid(format!(
                    "job id {:?} does not match its file name (idempotency key)",
                    spec.id
                )),
            ));
        }
        Ok(spec)
    }

    /// Durably records a terminal result. Result writes are a chaos IO
    /// site; injected (and real) failures retry under the service
    /// backoff policy because losing a terminal result would rerun a
    /// finished job on restart.
    fn write_result(&self, clock: &dyn Clock, report: &JobReport) -> Result<(), JobError> {
        let json = report.to_json();
        let policy = &self.cfg.supervisor.backoff;
        let salt = BackoffPolicy::job_salt(&report.id) ^ 0x5E17;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let injected = self.svc_run.as_ref().and_then(|r| {
                let op = self.result_write_ops.fetch_add(1, Ordering::Relaxed);
                r.io_error(IoSite::ResultWrite, op)
            });
            let outcome = match injected {
                Some(e) => Err(e),
                None => self.spool.write_result(&report.id, &json),
            };
            match outcome {
                Ok(()) => return Ok(()),
                Err(e) if attempt < policy.max_attempts.max(1) => {
                    let _ = e;
                    clock.sleep(policy.delay(salt, attempt));
                }
                Err(e) => return Err(JobError::ResultWrite(e.to_string())),
            }
        }
    }

    /// Rewrites `<spool>/chaos.events` with every fault fired so far —
    /// the byte-for-byte replay artifact.
    fn dump_chaos_events(&self) {
        if let Some(c) = &self.chaos {
            let mut text = c.events().join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            let _ = atomic_write(&self.spool.root().join("chaos.events"), &text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_schema() {
        let s = ServiceSummary {
            jobs_seen: 3,
            completed: 2,
            failed: 1,
            ..ServiceSummary::default()
        };
        let text = s.to_json();
        assert!(text.contains("\"schema\":\"fascia-svc-report/1\""));
        assert!(text.contains("\"completed\":2"));
    }
}
