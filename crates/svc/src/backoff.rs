//! Capped exponential backoff with deterministic jitter (DESIGN.md §16).
//!
//! A transiently-failed attempt waits `base · 2^(attempt-1)` capped at
//! `cap`, then jittered into `[delay/2, delay)` so a burst of failing
//! jobs does not retry in lockstep. The jitter is a *hash* of
//! (seed, job salt, attempt) — not an RNG draw — so a chaos-soak replay
//! schedules byte-for-byte identical waits.

use std::time::Duration;

/// Retry policy for transient job failures.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First retry delay (before jitter).
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Total attempts per job (first run + retries). At least 1.
    pub max_attempts: u32,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            max_attempts: 4,
            jitter_seed: 0xB0FF_0FF5,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl BackoffPolicy {
    /// The wait before retry number `attempt` (1 = first retry) of the
    /// job identified by `job_salt`. Deterministic: same policy + same
    /// coordinates ⇒ same delay.
    pub fn delay(&self, job_salt: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cap)
            .max(Duration::from_nanos(1));
        let h = splitmix64(splitmix64(self.jitter_seed ^ job_salt) ^ u64::from(attempt));
        let frac = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Jitter into [raw/2, raw): bounded below so backoff still backs
        // off, bounded above so the cap still caps.
        raw.mul_f64(0.5 + 0.5 * frac)
    }

    /// A stable per-job salt from its id, feeding [`BackoffPolicy::delay`].
    pub fn job_salt(id: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in id.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_then_caps() {
        let p = BackoffPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(450),
            ..BackoffPolicy::default()
        };
        let salt = BackoffPolicy::job_salt("job-a");
        let d: Vec<Duration> = (1..=5).map(|a| p.delay(salt, a)).collect();
        // Each delay lands in [raw/2, raw) of its un-jittered schedule
        // 100, 200, 400, 450, 450.
        for (delay, raw_ms) in d.iter().zip([100u64, 200, 400, 450, 450]) {
            let raw = Duration::from_millis(raw_ms);
            assert!(*delay >= raw / 2 && *delay < raw, "{delay:?} vs {raw:?}");
        }
    }

    #[test]
    fn jitter_is_deterministic_but_desynchronizes_jobs() {
        let p = BackoffPolicy::default();
        let a = BackoffPolicy::job_salt("job-a");
        let b = BackoffPolicy::job_salt("job-b");
        assert_eq!(p.delay(a, 1), p.delay(a, 1), "replay must match");
        assert_ne!(p.delay(a, 1), p.delay(b, 1), "jobs must not sync up");
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = BackoffPolicy::default();
        assert!(p.delay(7, u32::MAX) <= p.cap);
    }
}
