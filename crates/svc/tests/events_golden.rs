//! Golden-file test for the `fascia-events/1` lifecycle log.
//!
//! The event log is a durable schema consumed by the admin endpoint,
//! `fascia report`, and external tooling, so its exact line shape —
//! field order, optional-field omission, string escaping — is a
//! compatibility surface pinned here. A deterministic lifecycle is
//! written through the real [`fascia_obs::EventLog`] (fixed timestamps
//! from a [`fascia_svc::TestClock`]-style script, seq stamped by the
//! log) and compared byte-for-byte. Regenerate with
//! `BLESS=1 cargo test -p fascia-svc --test events_golden` after an
//! intentional schema change.
//!
//! The round-trip test is the CI gate's contract: every golden line must
//! parse through the same depth-capped JSON parser that guards
//! checkpoint resume, and re-render byte-identically.

use fascia_obs::{EventLog, JobEvent, JobEventKind};
use fascia_svc::events::parse_event;
use fascia_svc::{Clock, TestClock};
use std::path::PathBuf;

/// A scripted two-job lifecycle covering every event kind and every
/// optional field, with a wall-clock step backwards mid-stream.
fn build_log(path: &PathBuf) -> EventLog {
    let _ = std::fs::remove_file(path);
    let clock = TestClock::new();
    let log = EventLog::open(path).unwrap();
    let emit = |job: &str, kind: JobEventKind, attempt: u32, f: &dyn Fn(JobEvent) -> JobEvent| {
        let ev = JobEvent::new(clock.wall_unix_ms(), job, kind, attempt);
        log.append(f(ev)).unwrap();
        clock.advance(std::time::Duration::from_millis(7));
    };
    let id = |ev: JobEvent| ev;
    emit("job-a", JobEventKind::Submitted, 0, &id);
    emit("job-b", JobEventKind::Submitted, 0, &id);
    emit("job-a", JobEventKind::Dequeued, 0, &id);
    emit("job-a", JobEventKind::AttemptStarted, 1, &id);
    emit("job-a", JobEventKind::HeartbeatObserved, 1, &|ev| {
        ev.hb_seq(3)
    });
    emit("job-a", JobEventKind::Checkpointed, 1, &|ev| {
        ev.iterations(5)
    });
    emit("job-a", JobEventKind::Retried, 1, &|ev| {
        ev.cause("worker-panic")
    });
    // The wall clock steps 1h backwards mid-lifecycle; seq keeps order.
    clock.step_wall_ms(-3_600_000);
    emit("job-a", JobEventKind::AttemptStarted, 2, &id);
    emit("job-a", JobEventKind::Completed, 2, &|ev| {
        ev.cause("completed").iterations(8)
    });
    emit("job-b", JobEventKind::Dequeued, 0, &id);
    emit("job-b", JobEventKind::AttemptStarted, 1, &id);
    emit("job-b", JobEventKind::Degraded, 1, &|ev| {
        ev.cause("deadline").iterations(2)
    });
    log
}

fn written_log() -> String {
    let path = std::env::temp_dir().join(format!(
        "fascia-events-golden-{}/events.jsonl",
        std::process::id()
    ));
    build_log(&path);
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
    text
}

#[test]
fn event_log_matches_golden_file() {
    let written = written_log();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/events.jsonl");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(golden_path).parent().unwrap())
            .expect("golden dir");
        std::fs::write(golden_path, &written).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
    assert_eq!(
        written, golden,
        "fascia-events/1 line shape drifted from the golden file; \
         if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn golden_lines_roundtrip_through_the_depth_capped_parser() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/events.jsonl"
    ))
    .expect("golden file exists");
    let mut last_seq = None;
    for line in golden.lines() {
        let ev = parse_event(line).expect("every golden line parses");
        // Re-rendering the parsed event reproduces the line byte-for-byte
        // (stable field order, optional fields omitted when absent).
        assert_eq!(ev.to_json(), line, "round-trip must be lossless");
        // seq strictly increases in file order.
        assert!(last_seq.is_none_or(|s| ev.seq > s), "seq order broken");
        last_seq = Some(ev.seq);
    }
    assert_eq!(golden.lines().count(), 12, "the scripted lifecycle");
}
