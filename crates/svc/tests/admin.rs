//! Admin endpoint integration tests: real sockets against a real spool.
//!
//! Covers the ISSUE 9 satellite hardening list — oversized request
//! lines, unknown paths, slow-loris read deadlines, non-GET methods —
//! plus the acceptance criteria: `/jobs/<id>` serving the verbatim
//! `fascia-events/1` lines, and a chaos soak whose byte-for-byte replay
//! is unaffected by concurrent scraping.

use fascia_core::chaos::ChaosSpec;
use fascia_svc::supervisor::SupervisorConfig;
use fascia_svc::{
    AdminConfig, AdminServer, AdminState, BackoffPolicy, JobSpec, MonotonicClock, Service,
    ServiceConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("fascia-admin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn graph_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "fascia-admin-graph-{tag}-{}.txt",
        std::process::id()
    ));
    let mut text = String::new();
    for v in 0..40u32 {
        text.push_str(&format!("{} {}\n", v, (v + 1) % 40));
        text.push_str(&format!("{} {}\n", v, (v + 7) % 40));
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn fast_supervision() -> SupervisorConfig {
    SupervisorConfig {
        backoff: BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(40),
            ..BackoffPolicy::default()
        },
        poll: Duration::from_millis(5),
        ..SupervisorConfig::default()
    }
}

/// Minimal HTTP client: one GET, reads to EOF (the server always sends
/// `Connection: close`), returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    parse_response(&response)
}

/// Like [`http_get`] but sends raw bytes and tolerates the server
/// resetting the connection mid-exchange (the hardening paths respond
/// and close while the client may still be writing).
fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = stream.write_all(payload);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    parse_response(&String::from_utf8_lossy(&buf))
}

fn parse_response(response: &str) -> (u16, String) {
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn endpoints_serve_health_metrics_jobs_and_timelines() {
    let graph = graph_file("routes");
    let root = tmp_dir("routes");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    for i in 0..2 {
        let mut spec = JobSpec::new(&format!("adm-{i}"), &graph.to_string_lossy(), "path4");
        spec.iterations = 4;
        svc.spool().submit(&spec.id, &spec.to_json()).unwrap();
    }
    let summary = svc.run(&MonotonicClock, None);
    assert_eq!(summary.completed, 2, "{summary:?}");

    let server = AdminServer::start(
        "127.0.0.1:0",
        AdminState {
            spool: svc.spool().clone(),
            metrics: svc.metrics(),
        },
        AdminConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // /healthz: liveness plus queue stats (drained queue = depth 0) and
    // telemetry-loss counters (no failures or drops in a clean run).
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"queue_depth\":0"), "{body}");
    assert!(body.contains("\"spool_lag_ms\""), "{body}");
    assert!(body.contains("\"events_write_failures\":0"), "{body}");
    assert!(body.contains("\"trace_events_dropped\":0"), "{body}");

    // /metrics: Prometheus text with the service series, parseable shape
    // (every non-comment line is `name{...} value` or `name value`).
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "svc_queue_depth",
        "svc_oldest_job_age_ms",
        "svc_jobs_completed",
        "svc_queue_wait_ms",
        "svc_job_e2e_ms",
        "svc_attempt_duration_ms",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("prom line has a value");
        assert!(!name.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable prom value in {line:?}"
        );
    }

    // /jobs: the folded job table.
    let (status, body) = http_get(addr, "/jobs");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"fascia-jobs/1\""), "{body}");
    assert!(body.contains("\"id\":\"adm-0\""), "{body}");
    assert!(body.contains("\"state\":\"completed\""), "{body}");

    // /jobs/<id>: the timeline must carry the job's event-log lines
    // *verbatim* — exactly those whose job field matches, in file order.
    let log = std::fs::read_to_string(svc.spool().events_path()).unwrap();
    let expected: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"job\":\"adm-1\""))
        .collect();
    assert!(expected.len() >= 4, "submitted/dequeued/attempt/completed");
    let (status, body) = http_get(addr, "/jobs/adm-1");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"fascia-job-timeline/1\""));
    for line in &expected {
        assert!(body.contains(*line), "timeline must embed {line:?}");
    }
    assert_eq!(
        body.matches("\"schema\":\"fascia-events/1\"").count(),
        expected.len(),
        "timeline carries exactly the job's events"
    );

    // /jobs/<id>/estimate: the spool-backed fascia-est/1 trace the
    // supervisor persisted for the finished job, served verbatim.
    let (status, body) = http_get(addr, "/jobs/adm-0/estimate");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"schema\":\"fascia-est/1\""), "{body}");
    assert!(body.contains("\"iterations\":4"), "{body}");
    assert!(body.contains("\"ledger\""), "{body}");
    assert!(body.contains("\"strata\""), "{body}");
    assert_eq!(http_get(addr, "/jobs/no-such-job/estimate").0, 404);
    assert_eq!(http_get(addr, "/jobs//estimate").0, 404);

    // /version names the crate.
    let (status, body) = http_get(addr, "/version");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"fascia-svc\""), "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn hardening_rejects_oversized_slow_and_unknown_requests() {
    let root = tmp_dir("hardening");
    let svc = Service::open(&root, ServiceConfig::default()).unwrap();
    let server = AdminServer::start(
        "127.0.0.1:0",
        AdminState {
            spool: svc.spool().clone(),
            metrics: svc.metrics(),
        },
        AdminConfig {
            max_connections: 4,
            read_timeout: Duration::from_millis(200),
            max_request_bytes: 512,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Unknown paths and unknown job ids are 404.
    assert_eq!(http_get(addr, "/nope").0, 404);
    assert_eq!(http_get(addr, "/jobs/no-such-job").0, 404);
    assert_eq!(http_get(addr, "/jobs/a/b").0, 404);

    // Non-GET methods are 405.
    assert_eq!(
        raw_exchange(addr, b"POST /jobs HTTP/1.1\r\nHost: t\r\n\r\n").0,
        405
    );

    // An oversized request head is cut off with 400 at the byte cap.
    let huge = format!("GET /{} HTTP/1.1\r\n", "x".repeat(4096));
    assert_eq!(raw_exchange(addr, huge.as_bytes()).0, 400);

    // A slow-loris client that never finishes its head hits the read
    // deadline and gets 408 instead of pinning the connection thread.
    assert_eq!(raw_exchange(addr, b"GET /healthz HT").0, 408);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Acceptance criterion: a chaos soak replays byte-for-byte even while
/// the admin endpoint is being scraped concurrently — the server only
/// reads, so it cannot claim chaos indices or reorder supervision.
#[test]
fn concurrent_scraping_does_not_perturb_chaos_replay() {
    let graph = graph_file("scrape");
    let gspec = graph.to_string_lossy().to_string();
    let chaos: ChaosSpec = "seed=41,panic=0.1,io_ckpt=0.15,io_result=0.1"
        .parse()
        .unwrap();

    let run_soak = |tag: &str, scrape: bool| -> (String, String) {
        let root = tmp_dir(&format!("scrape-{tag}"));
        let svc = Service::open(
            &root,
            ServiceConfig {
                supervisor: fast_supervision(),
                once: true,
                chaos: Some(chaos.clone()),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for i in 0..6 {
            let mut spec = JobSpec::new(&format!("soak-{i}"), &gspec, "path4");
            spec.iterations = 4;
            spec.seed = 100 + i;
            svc.spool().submit(&spec.id, &spec.to_json()).unwrap();
        }
        let (server, scraper, stop) = if scrape {
            let server = AdminServer::start(
                "127.0.0.1:0",
                AdminState {
                    spool: svc.spool().clone(),
                    metrics: svc.metrics(),
                },
                AdminConfig::default(),
            )
            .unwrap();
            let addr = server.local_addr();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let scraper_stop = std::sync::Arc::clone(&stop);
            let scraper = std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !scraper_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for path in ["/metrics", "/jobs", "/healthz", "/jobs/soak-0"] {
                        let _ = std::panic::catch_unwind(|| http_get(addr, path));
                    }
                    scrapes += 1;
                }
                scrapes
            });
            (Some(server), Some(scraper), Some(stop))
        } else {
            (None, None, None)
        };
        let summary = svc.run(&MonotonicClock, None);
        assert_eq!(
            summary.completed + summary.partial + summary.failed,
            6,
            "{tag}: every job terminal"
        );
        if let (Some(server), Some(scraper), Some(stop)) = (server, scraper, stop) {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let scrapes = scraper.join().unwrap();
            assert!(scrapes > 0, "the scraper must actually have scraped");
            server.shutdown();
        }
        let chaos_events = std::fs::read_to_string(root.join("chaos.events")).unwrap_or_default();
        // Summarize outcomes by their deterministic fields (elapsed_ms
        // and timestamps legitimately differ between runs).
        let mut results = String::new();
        for i in 0..6 {
            let id = format!("soak-{i}");
            let text = std::fs::read_to_string(svc.spool().result_path(&id)).unwrap();
            let report = fascia_svc::JobReport::from_json(&text).unwrap();
            results.push_str(&format!(
                "{id} {:?} attempts={} iters={} cause={:?} err={:?}\n",
                report.status,
                report.attempts,
                report.iterations,
                report.stop_cause,
                report.error.map(|e| e.kind()),
            ));
        }
        let _ = std::fs::remove_dir_all(&root);
        (chaos_events, results)
    };

    let (events_quiet, results_quiet) = run_soak("quiet", false);
    let (events_scraped, results_scraped) = run_soak("scraped", true);
    assert!(!events_quiet.is_empty(), "the schedule must actually fire");
    assert_eq!(
        events_quiet, events_scraped,
        "chaos replay must be byte-identical under concurrent scraping"
    );
    assert_eq!(
        results_quiet, results_scraped,
        "job outcomes must be identical under concurrent scraping"
    );
    let _ = std::fs::remove_file(&graph);
}
