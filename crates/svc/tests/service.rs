//! End-to-end service tests: clean runs, checkpoint crash-resume
//! bitwise equality, deterministic chaos soak + replay, and the
//! stale-heartbeat dead-worker path.

use fascia_core::chaos::ChaosSpec;
use fascia_core::engine::{count_template, CountConfig};
use fascia_core::resilience::Checkpoint;
use fascia_core::stats::StopRule;
use fascia_graph::io::load_edge_list;
use fascia_svc::supervisor::SupervisorConfig;
use fascia_svc::{
    BackoffPolicy, JobReport, JobSpec, JobStatus, MonotonicClock, Service, ServiceConfig,
};
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("fascia-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small but non-trivial graph file shared by the tests.
fn graph_file(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("fascia-svc-graph-{tag}-{}.txt", std::process::id()));
    let mut text = String::new();
    // A 40-vertex ring with chords: enough structure for path/star counts.
    for v in 0..40u32 {
        text.push_str(&format!("{} {}\n", v, (v + 1) % 40));
        text.push_str(&format!("{} {}\n", v, (v + 7) % 40));
    }
    std::fs::write(&path, text).unwrap();
    path
}

fn fast_supervision() -> SupervisorConfig {
    SupervisorConfig {
        backoff: BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(40),
            ..BackoffPolicy::default()
        },
        poll: Duration::from_millis(5),
        ..SupervisorConfig::default()
    }
}

fn read_report(svc: &Service, id: &str) -> JobReport {
    let text = std::fs::read_to_string(svc.spool().result_path(id)).unwrap();
    JobReport::from_json(&text).unwrap()
}

#[test]
fn clean_job_completes_end_to_end() {
    let graph = graph_file("clean");
    let root = tmp_dir("clean");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let mut spec = JobSpec::new("clean-1", &graph.to_string_lossy(), "path4");
    spec.iterations = 8;
    let line = spec.to_json();
    let (accepted, rejected) = svc.ingest_jsonl(&MonotonicClock, line.as_bytes()).unwrap();
    assert_eq!((accepted, rejected), (1, 0));

    let summary = svc.run(&MonotonicClock, None);
    assert_eq!(summary.completed, 1, "{summary:?}");
    assert_eq!(summary.failed, 0);

    let report = read_report(&svc, "clean-1");
    assert_eq!(report.status, JobStatus::Completed);
    assert_eq!(report.stop_cause.as_deref(), Some("completed"));
    assert_eq!(report.iterations, 8);
    assert_eq!(report.attempts, 1);
    assert!(report.estimate.unwrap() >= 0.0);
    // Working files are gone once the terminal result is durable.
    assert!(!svc.spool().hb_path("clean-1").exists());
    assert!(svc.spool().best_checkpoint("clean-1").is_none());

    // A second pass skips the finished job (restart idempotency).
    let again = svc.run(&MonotonicClock, None);
    assert_eq!(again.skipped, 1);
    assert_eq!(again.completed, 0);

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&graph);
}

#[test]
fn malformed_and_unloadable_jobs_reach_typed_terminal_results() {
    let root = tmp_dir("bad");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    // Unknown key: terminal invalid, no retries.
    svc.spool()
        .submit(
            "bad-key",
            r#"{"schema":"fascia-job/1","id":"bad-key","graph":"g","template":"path3","typo":1}"#,
        )
        .unwrap();
    // Missing graph file: transient, retried, then terminal.
    svc.spool()
        .submit(
            "no-graph",
            &JobSpec::new("no-graph", "/nonexistent/fascia.txt", "path3").to_json(),
        )
        .unwrap();
    // Unknown template: terminal invalid.
    svc.spool()
        .submit(
            "bad-template",
            &JobSpec::new("bad-template", "/nonexistent/fascia.txt", "wedge99").to_json(),
        )
        .unwrap();

    let summary = svc.run(&MonotonicClock, None);
    assert_eq!(summary.failed, 3, "{summary:?}");
    assert_eq!(summary.completed + summary.partial, 0);

    let bad = read_report(&svc, "bad-key");
    assert_eq!(bad.error.as_ref().unwrap().kind(), "invalid");
    assert_eq!(bad.attempts, 0);

    let nog = read_report(&svc, "no-graph");
    assert_eq!(nog.error.as_ref().unwrap().kind(), "retries-exhausted");
    assert_eq!(nog.attempts, 4, "transient load failures use the budget");

    let badt = read_report(&svc, "bad-template");
    assert_eq!(badt.error.as_ref().unwrap().kind(), "invalid");

    let _ = std::fs::remove_dir_all(&root);
}

/// The acceptance property: a job resumed from a mid-run checkpoint
/// (exactly what a SIGKILLed service leaves behind) produces a final
/// estimate bitwise-equal to the uninterrupted run.
#[test]
fn resume_from_checkpoint_is_bitwise_equal_to_uninterrupted() {
    let graph_path = graph_file("bitwise");
    let gspec = graph_path.to_string_lossy().to_string();
    let iterations = 24usize;
    let seed = 0xFEED_u64;

    let job = |id: &str| {
        let mut s = JobSpec::new(id, &gspec, "path5");
        s.iterations = iterations;
        s.seed = seed;
        s
    };

    // Reference: uninterrupted service run.
    let root_a = tmp_dir("bitwise-a");
    let svc_a = Service::open(
        &root_a,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    svc_a.spool().submit("bw", &job("bw").to_json()).unwrap();
    let summary = svc_a.run(&MonotonicClock, None);
    assert_eq!(summary.completed, 1, "{summary:?}");
    let reference = read_report(&svc_a, "bw");

    // Fabricate the crash artifact: a durable checkpoint holding the
    // true prefix of the per-iteration series (what a killed worker's
    // last flush would contain), with the matching fingerprint.
    let (graph, _) = load_edge_list(&gspec).unwrap();
    let cfg = CountConfig {
        iterations,
        seed,
        ..CountConfig::default()
    };
    let full = count_template(&graph, &fascia_template::Template::path(5), &cfg).unwrap();
    assert_eq!(full.per_iteration.len(), iterations);

    for cut in [1usize, 9, 23] {
        let root_b = tmp_dir(&format!("bitwise-b{cut}"));
        let svc_b = Service::open(
            &root_b,
            ServiceConfig {
                supervisor: fast_supervision(),
                once: true,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        svc_b.spool().submit("bw", &job("bw").to_json()).unwrap();
        let ck = Checkpoint {
            seed,
            colors: 5,
            template_size: 5,
            graph_vertices: graph.num_vertices(),
            graph_edges: graph.num_edges(),
            rule: StopRule::FixedIterations(iterations),
            per_iteration: full.per_iteration[..cut].to_vec(),
            peak_table_bytes: 0,
        };
        ck.save(&svc_b.spool().ckpt_path("bw", 0)).unwrap();

        let summary = svc_b.run(&MonotonicClock, None);
        assert_eq!(summary.completed, 1, "cut={cut}: {summary:?}");
        let resumed = read_report(&svc_b, "bw");
        assert_eq!(
            resumed.estimate.unwrap().to_bits(),
            reference.estimate.unwrap().to_bits(),
            "cut={cut}: resumed estimate must be bitwise-equal"
        );
        assert_eq!(resumed.iterations, iterations);
        let _ = std::fs::remove_dir_all(&root_b);
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_file(&graph_path);
}

/// A mismatched checkpoint (different seed) must be ignored, not
/// resumed into a corrupted estimate.
#[test]
fn stale_fingerprint_checkpoints_are_ignored() {
    let graph_path = graph_file("stale");
    let gspec = graph_path.to_string_lossy().to_string();
    let root = tmp_dir("stale-fp");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut spec = JobSpec::new("sf", &gspec, "path3");
    spec.iterations = 6;
    svc.spool().submit("sf", &spec.to_json()).unwrap();

    let (graph, _) = load_edge_list(&gspec).unwrap();
    let poison = Checkpoint {
        seed: spec.seed ^ 1, // wrong seed: must not be resumed
        colors: 3,
        template_size: 3,
        graph_vertices: graph.num_vertices(),
        graph_edges: graph.num_edges(),
        rule: StopRule::FixedIterations(6),
        per_iteration: vec![1e300; 3],
        peak_table_bytes: 0,
    };
    poison.save(&svc.spool().ckpt_path("sf", 0)).unwrap();

    let summary = svc.run(&MonotonicClock, None);
    assert_eq!(summary.completed, 1, "{summary:?}");
    let report = read_report(&svc, "sf");
    assert_eq!(report.iterations, 6);
    assert!(
        report.estimate.unwrap() < 1e100,
        "poison series must not leak into the estimate"
    );
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&graph_path);
}

/// Every checkpoint flush failing is a transient error each attempt;
/// the supervisor burns the retry budget and fails typed — no hang, no
/// panic escape.
#[test]
fn persistent_checkpoint_faults_exhaust_retries_with_typed_error() {
    let graph_path = graph_file("ckfault");
    let root = tmp_dir("ckfault");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: fast_supervision(),
            once: true,
            chaos: Some("seed=3,io_ckpt=1".parse::<ChaosSpec>().unwrap()),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut spec = JobSpec::new("ck", &graph_path.to_string_lossy(), "path3");
    spec.iterations = 4;
    svc.spool().submit("ck", &spec.to_json()).unwrap();

    let summary = svc.run(&MonotonicClock, None);
    assert_eq!(summary.failed, 1, "{summary:?}");
    let report = read_report(&svc, "ck");
    assert_eq!(report.error.as_ref().unwrap().kind(), "retries-exhausted");
    assert_eq!(report.attempts, 4);
    assert!(summary.chaos_events >= 4, "one io fault per attempt");
    assert!(root.join("chaos.events").exists());

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&graph_path);
}

/// A worker wedged in the DP (chaos stall ≫ stall timeout) is detected
/// through its frozen heartbeat sequence, cancelled, detached, and the
/// job reaches a terminal state instead of hanging the service.
#[test]
fn stalled_worker_is_declared_dead_via_heartbeat_sequence() {
    let graph_path = graph_file("stall");
    let root = tmp_dir("stall");
    let svc = Service::open(
        &root,
        ServiceConfig {
            supervisor: SupervisorConfig {
                backoff: BackoffPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(10),
                    max_attempts: 2,
                    ..BackoffPolicy::default()
                },
                poll: Duration::from_millis(5),
                stall_timeout: Duration::from_millis(120),
                grace: Duration::from_millis(30),
            },
            once: true,
            // Every iteration stalls for 3s — far beyond the 120ms
            // stall timeout, so the heartbeat seq never advances.
            chaos: Some("seed=5,stall=1,stall_ms=3000".parse::<ChaosSpec>().unwrap()),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut spec = JobSpec::new("wedge", &graph_path.to_string_lossy(), "path3");
    spec.iterations = 4;
    svc.spool().submit("wedge", &spec.to_json()).unwrap();

    let t0 = std::time::Instant::now();
    let summary = svc.run(&MonotonicClock, None);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "supervisor must detach, not wait out the stall"
    );
    assert_eq!(summary.failed, 1, "{summary:?}");
    let report = read_report(&svc, "wedge");
    assert_eq!(report.error.as_ref().unwrap().kind(), "retries-exhausted");
    assert!(
        report
            .error
            .as_ref()
            .unwrap()
            .message()
            .contains("worker-dead"),
        "last transient cause is the dead worker: {report:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&graph_path);
}

/// The tentpole soak: a mixed job batch under a probabilistic chaos
/// schedule. Every job must reach a terminal result; a replay under the
/// same seed must fire the identical event sequence and produce
/// identical outcomes.
#[test]
fn chaos_soak_terminates_every_job_and_replays_byte_for_byte() {
    let graph_path = graph_file("soak");
    let gspec = graph_path.to_string_lossy().to_string();
    let chaos: ChaosSpec = "seed=77,panic=0.08,io_ckpt=0.15,io_result=0.1,stall=0.05,stall_ms=2"
        .parse()
        .unwrap();

    let run_soak = |tag: &str| -> (Vec<(String, JobReport)>, String, fascia_svc::ServiceSummary) {
        let root = tmp_dir(tag);
        let svc = Service::open(
            &root,
            ServiceConfig {
                supervisor: fast_supervision(),
                once: true,
                chaos: Some(chaos.clone()),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for i in 0..6 {
            let mut spec = JobSpec::new(&format!("soak-{i:02}"), &gspec, "path4");
            spec.iterations = 10;
            spec.seed = 0x5_0A_0C + i;
            svc.spool().submit(&spec.id, &spec.to_json()).unwrap();
        }
        let summary = svc.run(&MonotonicClock, None);
        let mut reports = Vec::new();
        for i in 0..6 {
            let id = format!("soak-{i:02}");
            assert!(
                svc.spool().has_result(&id),
                "{tag}: job {id} must reach a terminal result"
            );
            reports.push((id.clone(), read_report(&svc, &id)));
        }
        let events = std::fs::read_to_string(root.join("chaos.events")).unwrap_or_default();
        // No torn files anywhere in the tree.
        assert_eq!(svc.spool().sweep_tmp(), 0, "{tag}: no staging litter");
        let _ = std::fs::remove_dir_all(&root);
        (reports, events, summary)
    };

    let (reports_a, events_a, summary_a) = run_soak("soak-a");
    let (reports_b, events_b, summary_b) = run_soak("soak-b");

    // Terminal-state contract: completed, partial, or typed failure.
    for (id, r) in &reports_a {
        match r.status {
            JobStatus::Completed | JobStatus::Partial => {
                assert!(r.estimate.is_some(), "{id}: estimate required")
            }
            JobStatus::Failed => assert!(r.error.is_some(), "{id}: typed error required"),
        }
        assert!(r.attempts >= 1 || r.status == JobStatus::Failed);
    }

    // Replay: identical fired-event log, byte for byte.
    assert!(!events_a.is_empty(), "soak schedule must actually fire");
    assert_eq!(events_a, events_b, "chaos replay must be byte-identical");
    assert_eq!(summary_a.chaos_events, summary_b.chaos_events);
    assert_eq!(
        (summary_a.completed, summary_a.partial, summary_a.failed),
        (summary_b.completed, summary_b.partial, summary_b.failed)
    );

    // Replay: identical terminal outcomes, bit for bit where numeric.
    for ((id_a, a), (id_b, b)) in reports_a.iter().zip(&reports_b) {
        assert_eq!(id_a, id_b);
        assert_eq!(a.status, b.status, "{id_a}");
        assert_eq!(a.attempts, b.attempts, "{id_a}");
        assert_eq!(
            a.estimate.map(f64::to_bits),
            b.estimate.map(f64::to_bits),
            "{id_a}"
        );
        assert_eq!(
            a.error.as_ref().map(|e| e.kind()),
            b.error.as_ref().map(|e| e.kind()),
            "{id_a}"
        );
    }

    let _ = std::fs::remove_file(&graph_path);
}
