//! A minimal JSON writer — just enough to emit metric reports and bench
//! rows without any third-party serialization crate.
//!
//! Output is compact (no whitespace), keys are written in the order the
//! caller supplies them, and floats render via Rust's shortest-roundtrip
//! `Display` (non-finite floats become `null`, as JSON requires).

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal, with escaping.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` if non-finite.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Builder for one JSON object; tracks comma placement.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Opens `{`.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds `"k":"v"`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds `"k":v` for an unsigned integer.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds `"k":v` for a float (`null` if non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Adds `"k":true` / `"k":false`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds `"k":<raw>` where `raw` is already-valid JSON.
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Closes `}` and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Joins already-serialized JSON values into an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn object_builder_places_commas() {
        let mut o = ObjectWriter::new();
        o.field_str("s", "x").field_u64("n", 7).field_f64("f", 1.5);
        assert_eq!(o.finish(), r#"{"s":"x","n":7,"f":1.5}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = ObjectWriter::new();
        o.field_f64("nan", f64::NAN).field_f64("inf", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn arrays_join() {
        assert_eq!(array_of(vec!["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array_of(Vec::<String>::new()), "[]");
    }

    #[test]
    fn empty_object() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }
}
