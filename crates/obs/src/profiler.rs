//! Signal-free in-process sampling profiler.
//!
//! The metrics registry answers *how much*, the flight recorder *when* —
//! this module answers **where the nanoseconds went** without either the
//! cost of tracing every event or the platform baggage of signal-based
//! profilers (`SIGPROF` handlers, unwinders, frame pointers). The design
//! is split in two halves with very different performance budgets:
//!
//! * **Publication (hot path)**: each instrumented thread keeps a small
//!   fixed-depth stack of *current phase* frames in a per-thread
//!   `PhaseSlot`. Entering a phase is one relaxed store plus one
//!   release `fetch_add`; leaving is one release `fetch_sub`. No locks,
//!   no allocation, ever — the same discipline as the sharded counters
//!   and the trace rings. Phase names are interned up front (a short
//!   mutex, once per run) so the hot path carries a `u32` [`PhaseId`].
//! * **Sampling (watcher thread)**: [`Profiler::start`] spawns one
//!   watcher thread that wakes at a configurable period, reads every
//!   slot's published stack, and aggregates identical stacks into a
//!   sample count. All maps and locks live on the watcher side; the
//!   profiled threads never see them.
//!
//! Because samples are statistical, the occasional torn read (a frame
//! store racing the watcher's load) merely misattributes one sample —
//! it can never corrupt memory or a counting result. Threads beyond
//! [`PROFILE_SHARDS`] wrap onto shared slots, which coarsens (but never
//! breaks) attribution, exactly like the sharded counters.
//!
//! # Output
//!
//! [`Profiler::collapsed`] renders the classic collapsed-stack text
//! (`frame;frame;frame value` per line) loadable directly by
//! `inferno-flamegraph` and speedscope; values are nanoseconds
//! apportioned from the measured sampling window. [`Profiler::report`]
//! aggregates self/total time per phase and [`Profiler::render_top`]
//! formats the top table embedded in `--metrics pretty`.
//!
//! ```
//! use fascia_obs::Profiler;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let p = Arc::new(Profiler::with_period(Duration::from_micros(200)));
//! let work = p.intern("work");
//! p.start();
//! {
//!     let _g = p.enter(work);
//!     std::thread::sleep(Duration::from_millis(30));
//! }
//! p.stop();
//! assert!(p.samples() > 0);
//! assert!(p.collapsed().contains("work "));
//! ```

use crate::counter::{thread_slot, Counter, SHARDS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of per-thread phase slots. Matches [`SHARDS`] so a profile
/// sample, a trace event, and a counter shard produced by the same thread
/// all land at the same index; more threads than this wrap around and
/// share slots (coarser attribution, never an error).
pub const PROFILE_SHARDS: usize = SHARDS;

/// Maximum published stack depth per thread. Deeper nesting keeps the
/// depth bookkeeping balanced but drops the frame (counted by
/// [`Profiler::truncated`]); the engine's phase nesting is ≤ 4 deep, so
/// truncation only occurs under deliberate abuse.
pub const MAX_PHASE_DEPTH: usize = 8;

/// Default sampling period of [`Profiler::new`] (≈ 1 kHz).
pub const DEFAULT_SAMPLE_PERIOD: Duration = Duration::from_millis(1);

/// Interned phase-name handle; obtained from [`Profiler::intern`] once
/// per run and carried through hot loops instead of the string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseId(u32);

/// One thread's published phase stack: a depth cursor plus a fixed frame
/// array. Writers (the owning thread, or several threads after slot
/// wrap-around) store a frame then bump the depth with release ordering;
/// the watcher loads the depth with acquire ordering and reads only the
/// frames below it. Every race this admits misattributes at most one
/// sample.
#[derive(Debug)]
struct PhaseSlot {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_PHASE_DEPTH],
}

impl PhaseSlot {
    fn new() -> Self {
        Self {
            depth: AtomicUsize::new(0),
            frames: Default::default(),
        }
    }
}

/// The sampling profiler. Cheap to share (`Arc<Profiler>`); publication
/// methods take `&self` and are lock- and allocation-free.
#[derive(Debug)]
pub struct Profiler {
    slots: Box<[PhaseSlot]>,
    names: Mutex<Vec<String>>,
    period: Duration,
    running: AtomicBool,
    watcher: Mutex<Option<JoinHandle<()>>>,
    window_start: Mutex<Option<Instant>>,
    /// Wall nanoseconds covered by completed sampling windows.
    window_ns: AtomicU64,
    /// Aggregated samples: published stack (raw frame ids) → tick count.
    /// Touched only by the watcher while sampling and by readers after
    /// [`Profiler::stop`].
    samples: Mutex<BTreeMap<Vec<u32>, u64>>,
    /// Total watcher ticks.
    ticks: AtomicU64,
    /// Ticks during which no slot published any phase.
    idle_ticks: AtomicU64,
    /// Frames dropped because a stack exceeded [`MAX_PHASE_DEPTH`].
    truncated: Counter,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler sampling at [`DEFAULT_SAMPLE_PERIOD`] (≈ 1 kHz).
    pub fn new() -> Profiler {
        Profiler::with_period(DEFAULT_SAMPLE_PERIOD)
    }

    /// A profiler sampling every `period` (floored at 50 µs so a
    /// misconfigured rate cannot melt a core).
    pub fn with_period(period: Duration) -> Profiler {
        let mut slots = Vec::with_capacity(PROFILE_SHARDS);
        slots.resize_with(PROFILE_SHARDS, PhaseSlot::new);
        Profiler {
            slots: slots.into_boxed_slice(),
            names: Mutex::new(Vec::new()),
            period: period.max(Duration::from_micros(50)),
            running: AtomicBool::new(false),
            watcher: Mutex::new(None),
            window_start: Mutex::new(None),
            window_ns: AtomicU64::new(0),
            samples: Mutex::new(BTreeMap::new()),
            ticks: AtomicU64::new(0),
            idle_ticks: AtomicU64::new(0),
            truncated: Counter::new(),
        }
    }

    /// A profiler sampling `hz` times per second (clamped to a sane
    /// range; `hz ≤ 0` falls back to the default rate).
    pub fn with_hz(hz: f64) -> Profiler {
        if hz > 0.0 {
            Profiler::with_period(Duration::from_secs_f64((1.0 / hz).clamp(5e-5, 1.0)))
        } else {
            Profiler::new()
        }
    }

    /// The configured sampling period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Interns `name`, returning its stable id. Takes a short mutex —
    /// call once per run outside hot loops, like trace-name interning.
    pub fn intern(&self, name: &str) -> PhaseId {
        let mut names = self.names.lock().unwrap();
        if let Some(i) = names.iter().position(|n| n == name) {
            return PhaseId(i as u32);
        }
        names.push(name.to_string());
        PhaseId((names.len() - 1) as u32)
    }

    /// Publishes `id` as the current thread's innermost phase until the
    /// returned guard drops. One relaxed store + one release `fetch_add`;
    /// never a lock or allocation.
    #[inline]
    pub fn enter(&self, id: PhaseId) -> PhaseGuard<'_> {
        let slot = &self.slots[thread_slot() % PROFILE_SHARDS];
        let d = slot.depth.load(Ordering::Relaxed);
        if d < MAX_PHASE_DEPTH {
            slot.frames[d].store(id.0, Ordering::Relaxed);
        } else {
            self.truncated.inc();
        }
        slot.depth.fetch_add(1, Ordering::Release);
        PhaseGuard { slot }
    }

    /// Starts the watcher thread. Idempotent: a running profiler ignores
    /// further `start` calls. Sampling windows accumulate across
    /// start/stop pairs.
    pub fn start(self: &Arc<Self>) {
        if self.running.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.window_start.lock().unwrap() = Some(Instant::now());
        let p = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("fascia-profiler".into())
            .spawn(move || {
                while p.running.load(Ordering::Relaxed) {
                    p.tick();
                    std::thread::sleep(p.period);
                }
            });
        match handle {
            Ok(h) => *self.watcher.lock().unwrap() = Some(h),
            // Thread spawn failure degrades to "no samples", never a panic.
            Err(_) => self.running.store(false, Ordering::SeqCst),
        }
    }

    /// Stops the watcher thread and closes the current sampling window.
    /// Idempotent; call before reading reports.
    pub fn stop(&self) {
        if !self.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(h) = self.watcher.lock().unwrap().take() {
            let _ = h.join();
        }
        if let Some(t0) = self.window_start.lock().unwrap().take() {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.window_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// One watcher wake-up: read every slot's published stack and fold it
    /// into the aggregation map.
    fn tick(&self) {
        let mut agg = self.samples.lock().unwrap();
        let mut any = false;
        for slot in self.slots.iter() {
            let d = slot.depth.load(Ordering::Acquire);
            if d == 0 {
                continue;
            }
            any = true;
            let d = d.min(MAX_PHASE_DEPTH);
            let stack: Vec<u32> = slot.frames[..d]
                .iter()
                .map(|f| f.load(Ordering::Relaxed))
                .collect();
            *agg.entry(stack).or_insert(0) += 1;
        }
        drop(agg);
        if !any {
            self.idle_ticks.fetch_add(1, Ordering::Relaxed);
        }
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Stack samples recorded so far (one per active slot per tick).
    pub fn samples(&self) -> u64 {
        self.samples.lock().unwrap().values().sum()
    }

    /// Total watcher ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Ticks that found no published phase anywhere.
    pub fn idle_ticks(&self) -> u64 {
        self.idle_ticks.load(Ordering::Relaxed)
    }

    /// Frames dropped to [`MAX_PHASE_DEPTH`] truncation.
    pub fn truncated(&self) -> u64 {
        self.truncated.get()
    }

    /// Wall nanoseconds covered by completed sampling windows (plus the
    /// live window, if sampling is still running).
    pub fn window_ns(&self) -> u64 {
        let live = self
            .window_start
            .lock()
            .unwrap()
            .map_or(0, |t0| t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        self.window_ns.load(Ordering::Relaxed) + live
    }

    /// Nanoseconds one tick represents: the measured window apportioned
    /// evenly over the ticks that actually fired (robust to an
    /// oversleeping watcher under load).
    fn ns_per_tick(&self) -> f64 {
        let ticks = self.ticks().max(1);
        self.window_ns() as f64 / ticks as f64
    }

    /// Renders collapsed-stack text: one `frame;frame;frame value` line
    /// per distinct stack, values in nanoseconds apportioned from the
    /// measured sampling window, lines sorted. Idle ticks render as a
    /// single `(idle)` line so the values of all lines sum to the wall
    /// time of the window (for serial workloads; concurrently active
    /// threads each contribute their own samples, so parallel profiles
    /// sum to CPU time instead, as sampling profilers usually do).
    /// Loadable directly by `inferno-flamegraph` and speedscope.
    pub fn collapsed(&self) -> String {
        let names = self.names.lock().unwrap().clone();
        let agg = self.samples.lock().unwrap();
        let per_tick = self.ns_per_tick();
        let mut lines: BTreeMap<String, u64> = BTreeMap::new();
        for (stack, count) in agg.iter() {
            let key = stack
                .iter()
                .map(|&f| name_of_raw(&names, f))
                .collect::<Vec<_>>()
                .join(";");
            *lines.entry(key).or_insert(0) += count;
        }
        drop(agg);
        let idle = self.idle_ticks();
        if idle > 0 {
            *lines.entry("(idle)".to_string()).or_insert(0) += idle;
        }
        let mut out = String::new();
        for (key, count) in &lines {
            let ns = (*count as f64 * per_tick).round() as u64;
            out.push_str(key);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-phase self/total attribution, sorted by self time descending.
    /// *Self* counts samples where the phase was the innermost frame;
    /// *total* counts samples where it appeared anywhere in the stack
    /// (once per sample, so totals of nested phases overlap by design).
    pub fn report(&self) -> Vec<PhaseStat> {
        let names = self.names.lock().unwrap().clone();
        let agg = self.samples.lock().unwrap();
        let per_tick = self.ns_per_tick();
        let mut stats: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (stack, count) in agg.iter() {
            if let Some(&leaf) = stack.last() {
                stats.entry(name_of_raw(&names, leaf)).or_insert((0, 0)).0 += count;
            }
            let mut seen: Vec<u32> = Vec::with_capacity(stack.len());
            for &f in stack {
                if !seen.contains(&f) {
                    seen.push(f);
                    stats.entry(name_of_raw(&names, f)).or_insert((0, 0)).1 += count;
                }
            }
        }
        let mut out: Vec<PhaseStat> = stats
            .into_iter()
            .map(|(name, (self_samples, total_samples))| PhaseStat {
                name: name.to_string(),
                self_ns: (self_samples as f64 * per_tick).round() as u64,
                total_ns: (total_samples as f64 * per_tick).round() as u64,
                self_samples,
                total_samples,
            })
            .collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// Renders the top-phases table shown under `--metrics pretty`:
    /// sampling header plus up to twelve phases by self time.
    pub fn render_top(&self) -> String {
        use std::fmt::Write as _;
        let ticks = self.ticks();
        let window_ms = self.window_ns() as f64 / 1e6;
        let hz = if self.period.as_secs_f64() > 0.0 {
            1.0 / self.period.as_secs_f64()
        } else {
            0.0
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {ticks} samples @ {hz:.0} Hz over {window_ms:.1} ms \
             (idle {}, truncated {})",
            self.idle_ticks(),
            self.truncated()
        );
        let report = self.report();
        if report.is_empty() {
            return out;
        }
        let total = self.samples().max(1);
        let _ = writeln!(
            out,
            "  {:<36} {:>12} {:>12} {:>7}",
            "phase", "self_ms", "total_ms", "self%"
        );
        for stat in report.iter().take(12) {
            let _ = writeln!(
                out,
                "  {:<36} {:>12.2} {:>12.2} {:>6.1}%",
                stat.name,
                stat.self_ns as f64 / 1e6,
                stat.total_ns as f64 / 1e6,
                100.0 * stat.self_samples as f64 / total as f64,
            );
        }
        out
    }
}

/// Resolves a raw frame id defensively: a torn read may surface an id the
/// intern table does not (yet) know.
fn name_of_raw(names: &[String], raw: u32) -> &str {
    names.get(raw as usize).map(String::as_str).unwrap_or("?")
}

/// One phase's aggregated attribution from [`Profiler::report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Interned phase name.
    pub name: String,
    /// Nanoseconds sampled with this phase innermost.
    pub self_ns: u64,
    /// Nanoseconds sampled with this phase anywhere on the stack.
    pub total_ns: u64,
    /// Raw sample count behind [`PhaseStat::self_ns`].
    pub self_samples: u64,
    /// Raw sample count behind [`PhaseStat::total_ns`].
    pub total_samples: u64,
}

/// RAII guard from [`Profiler::enter`]: pops the published phase when
/// dropped (one release `fetch_sub`).
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    slot: &'a PhaseSlot,
}

impl Drop for PhaseGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.slot.depth.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let p = Profiler::new();
        let a = p.intern("alpha");
        let b = p.intern("beta");
        assert_ne!(a, b);
        assert_eq!(p.intern("alpha"), a);
    }

    #[test]
    fn enter_publishes_and_drop_pops() {
        let p = Profiler::new();
        let a = p.intern("a");
        let b = p.intern("b");
        let slot = &p.slots[thread_slot() % PROFILE_SHARDS];
        assert_eq!(slot.depth.load(Ordering::Relaxed), 0);
        {
            let _ga = p.enter(a);
            assert_eq!(slot.depth.load(Ordering::Relaxed), 1);
            assert_eq!(slot.frames[0].load(Ordering::Relaxed), 0);
            {
                let _gb = p.enter(b);
                assert_eq!(slot.depth.load(Ordering::Relaxed), 2);
                assert_eq!(slot.frames[1].load(Ordering::Relaxed), 1);
            }
            assert_eq!(slot.depth.load(Ordering::Relaxed), 1);
        }
        assert_eq!(slot.depth.load(Ordering::Relaxed), 0);
        assert_eq!(p.truncated(), 0);
    }

    #[test]
    fn overflow_truncates_counts_and_rebalances() {
        let p = Profiler::new();
        let id = p.intern("deep");
        let mut guards = Vec::new();
        for _ in 0..(MAX_PHASE_DEPTH + 5) {
            guards.push(p.enter(id));
        }
        assert_eq!(p.truncated(), 5);
        let slot = &p.slots[thread_slot() % PROFILE_SHARDS];
        assert_eq!(slot.depth.load(Ordering::Relaxed), MAX_PHASE_DEPTH + 5);
        drop(guards);
        assert_eq!(slot.depth.load(Ordering::Relaxed), 0);
        // A fresh push after the overflow lands correctly again.
        let _g = p.enter(id);
        assert_eq!(slot.depth.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sampler_attributes_work_and_idle() {
        let p = Arc::new(Profiler::with_period(Duration::from_micros(100)));
        let work = p.intern("work");
        p.start();
        p.start(); // idempotent
        {
            let _g = p.enter(work);
            std::thread::sleep(Duration::from_millis(40));
        }
        std::thread::sleep(Duration::from_millis(10));
        p.stop();
        p.stop(); // idempotent
        assert!(p.ticks() > 0, "watcher never ticked");
        assert!(p.samples() > 0, "no work samples collected");
        let collapsed = p.collapsed();
        assert!(collapsed.contains("work "), "collapsed: {collapsed}");
        // The trailing sleep shows up as idle.
        assert!(p.idle_ticks() > 0);
        assert!(collapsed.contains("(idle) "), "collapsed: {collapsed}");
        // Values sum to ~the sampling window by construction.
        let sum: u64 = collapsed
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        let window = p.window_ns();
        let drift = (sum as f64 - window as f64).abs() / window as f64;
        assert!(drift < 0.01, "sum {sum} vs window {window}");
    }

    #[test]
    fn report_splits_self_and_total() {
        let p = Arc::new(Profiler::with_period(Duration::from_micros(100)));
        let outer = p.intern("outer");
        let inner = p.intern("inner");
        p.start();
        {
            let _o = p.enter(outer);
            std::thread::sleep(Duration::from_millis(15));
            {
                let _i = p.enter(inner);
                std::thread::sleep(Duration::from_millis(15));
            }
        }
        p.stop();
        let report = p.report();
        let o = report.iter().find(|s| s.name == "outer").unwrap();
        let i = report.iter().find(|s| s.name == "inner").unwrap();
        assert!(o.total_samples >= o.self_samples);
        assert!(
            o.total_samples >= i.total_samples,
            "outer encloses inner: {report:?}"
        );
        assert!(i.self_samples == i.total_samples, "inner is always a leaf");
        let top = p.render_top();
        assert!(top.contains("profile:"));
        assert!(top.contains("outer"));
    }

    #[test]
    fn stop_without_start_is_a_noop() {
        let p = Profiler::new();
        p.stop();
        assert_eq!(p.ticks(), 0);
        assert_eq!(p.window_ns(), 0);
        assert!(p.collapsed().is_empty());
        assert!(p.report().is_empty());
    }

    #[test]
    fn render_top_with_zero_samples_has_no_nan() {
        // A profiler that never ticked (0 samples, 0 ns window) must render
        // a well-formed header: every division is behind a max(1) or an
        // explicit zero guard. NaN/inf here would poison `--metrics pretty`.
        let p = Profiler::new();
        let top = p.render_top();
        assert!(top.contains("profile: 0 samples"), "{top}");
        assert!(!top.contains("NaN") && !top.contains("inf"), "{top}");
        // Interned-but-never-sampled phases must not divide by the zero
        // sample count either.
        let p = Profiler::new();
        let _ = p.intern("never-sampled");
        let top = p.render_top();
        assert!(!top.contains("NaN") && !top.contains("inf"), "{top}");
    }

    #[test]
    fn with_hz_clamps_garbage() {
        assert_eq!(Profiler::with_hz(0.0).period(), DEFAULT_SAMPLE_PERIOD);
        assert_eq!(Profiler::with_hz(-3.0).period(), DEFAULT_SAMPLE_PERIOD);
        assert!(Profiler::with_hz(1e9).period() >= Duration::from_micros(50));
        assert_eq!(Profiler::with_hz(100.0).period(), Duration::from_millis(10));
    }
}
