//! Sharded atomic counters and gauges.
//!
//! A [`Counter`] spreads increments over [`SHARDS`] cache-line-padded cells
//! indexed by a per-thread slot, so the engine's inner loops never serialize
//! on one atomic. The per-shard values double as per-thread work counts:
//! the imbalance between inner- and outer-loop parallel modes (paper Fig. 9)
//! is visible directly in [`Counter::shard_values`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards per counter. Increments from more threads than this wrap
/// around and share slots, which keeps totals exact and only coarsens the
/// per-thread breakdown.
pub const SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) as usize;
}

/// Stable small integer identifying the current thread for shard selection.
///
/// Assigned on first use per thread, monotonically; short-lived worker
/// threads (one scoped pool per parallel operation) therefore rotate through
/// shard slots rather than piling onto slot 0.
#[inline]
pub fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// One cache line worth of counter cell, to prevent false sharing between
/// shards that live in the same allocation.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// A monotone event counter with per-thread-slot shards.
///
/// `add`/`inc` are relaxed atomic adds on the caller's shard; `get` sums all
/// shards. Exactness: every increment lands in exactly one shard, so the sum
/// over shards equals the number of increments regardless of interleaving.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the current thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = thread_slot() % SHARDS;
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard (≈ per-thread) values, in slot order.
    pub fn shard_values(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .collect()
    }

    /// Adds every shard of `other` into the matching shard of `self`.
    pub fn merge(&self, other: &Counter) {
        for (dst, src) in self.shards.iter().zip(other.shards.iter()) {
            let v = src.0.load(Ordering::Relaxed);
            if v != 0 {
                dst.0.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

/// A last-value / high-watermark cell for sizes and levels (table bytes,
/// rows materialized, thread counts). Unsharded: gauges are written at
/// phase boundaries, not in inner loops.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark semantics).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` to the value.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Merges by high-watermark: peaks stay peaks across worker registries.
    pub fn merge(&self, other: &Gauge) {
        self.set_max(other.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        let c = Counter::new();
        let threads = 8;
        let per = 25_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per);
        assert_eq!(c.shard_values().iter().sum::<u64>(), threads * per);
    }

    #[test]
    fn counter_merge_adds_shardwise() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(5);
        b.add(7);
        a.merge(&b);
        assert_eq!(a.get(), 12);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn thread_slots_differ_across_threads() {
        let here = thread_slot();
        let there = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(here, there);
        // Stable within a thread.
        assert_eq!(here, thread_slot());
    }

    #[test]
    fn gauge_set_max_and_merge() {
        let g = Gauge::new();
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
        g.set_max(20);
        assert_eq!(g.get(), 20);
        let h = Gauge::new();
        h.set(15);
        g.merge(&h);
        assert_eq!(g.get(), 20);
        let i = Gauge::new();
        i.set(99);
        g.merge(&i);
        assert_eq!(g.get(), 99);
        g.add(1);
        assert_eq!(g.get(), 100);
    }
}
