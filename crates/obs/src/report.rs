//! Presentation layer for the unified run report.
//!
//! `fascia report` (in the CLI) ingests a run directory of observability
//! artifacts and builds a [`Report`] — a schema-agnostic tree of sections,
//! text lines, and tables — which this module renders either as aligned
//! terminal text or as one self-contained HTML document (inline CSS, no
//! external assets, safe to open from a results archive years later).
//! Keeping ingestion in the CLI and presentation here preserves
//! `fascia-obs`'s zero-dependency, engine-agnostic role.

use std::fmt::Write as _;

/// A complete report: a title plus ordered sections.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Top-level heading.
    pub title: String,
    /// Ordered sections.
    pub sections: Vec<Section>,
}

/// One titled section of prose lines and tables.
#[derive(Debug, Clone, Default)]
pub struct Section {
    /// Section heading.
    pub title: String,
    /// Free-form text lines shown before the tables.
    pub lines: Vec<String>,
    /// Tabular content.
    pub tables: Vec<TableView>,
}

/// A rendered table: header row plus data rows (ragged rows are padded).
#[derive(Debug, Clone, Default)]
pub struct TableView {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; cells render verbatim (escaped in HTML).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a section and returns `self` for chaining.
    pub fn push_section(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Renders aligned plain text for the terminal.
    pub fn render_terminal(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.chars().count()));
        for s in &self.sections {
            let _ = writeln!(out, "\n## {}", s.title);
            for line in &s.lines {
                let _ = writeln!(out, "{line}");
            }
            for t in &s.tables {
                out.push('\n');
                render_table_text(&mut out, t);
            }
        }
        out
    }

    /// Renders one self-contained HTML document.
    pub fn render_html(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>");
        push_escaped(&mut out, &self.title);
        out.push_str("</title><style>");
        out.push_str(CSS);
        out.push_str("</style></head><body>\n<h1>");
        push_escaped(&mut out, &self.title);
        out.push_str("</h1>\n");
        for s in &self.sections {
            out.push_str("<section><h2>");
            push_escaped(&mut out, &s.title);
            out.push_str("</h2>\n");
            for line in &s.lines {
                out.push_str("<p>");
                push_escaped(&mut out, line);
                out.push_str("</p>\n");
            }
            for t in &s.tables {
                render_table_html(&mut out, t);
            }
            out.push_str("</section>\n");
        }
        out.push_str("</body></html>\n");
        out
    }
}

impl Section {
    /// Creates an empty section with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            lines: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a prose line.
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.lines.push(text.into());
        self
    }

    /// Appends a table.
    pub fn table(&mut self, table: TableView) -> &mut Self {
        self.tables.push(table);
        self
    }
}

impl TableView {
    /// Creates a table from headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }
}

const CSS: &str = "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;\
padding:0 1em;color:#1a1a1a}h1{border-bottom:2px solid #444;padding-bottom:.2em}\
h2{margin-top:1.6em;color:#333}table{border-collapse:collapse;margin:.8em 0}\
th,td{border:1px solid #bbb;padding:.25em .6em;text-align:left}\
td.num{text-align:right;font-variant-numeric:tabular-nums}\
th{background:#eee}tr:nth-child(even) td{background:#f7f7f7}p{margin:.3em 0}";

fn looks_numeric(cell: &str) -> bool {
    let t = cell
        .trim_end_matches('%')
        .trim_end_matches('x')
        .trim_start_matches(['+', '-']);
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == ',')
}

fn render_table_text(out: &mut String, t: &TableView) {
    let cols = t
        .rows
        .iter()
        .map(Vec::len)
        .chain([t.headers.len()])
        .max()
        .unwrap_or(0);
    if cols == 0 {
        return;
    }
    let mut widths = vec![0usize; cols];
    let cell_of = |row: &[String], i: usize| row.get(i).map_or("", String::as_str).to_string();
    for row in std::iter::once(&t.headers).chain(t.rows.iter()) {
        for (i, w) in widths.iter_mut().enumerate() {
            *w = (*w).max(cell_of(row, i).chars().count());
        }
    }
    let emit = |out: &mut String, row: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            let cell = cell_of(row, i);
            if i > 0 {
                out.push_str("  ");
            }
            if i + 1 < cols && looks_numeric(&cell) {
                let _ = write!(out, "{cell:>w$}");
            } else {
                let _ = write!(out, "{cell:<w$}");
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(out, &t.headers);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    let _ = writeln!(out, "{}", "-".repeat(rule));
    for row in &t.rows {
        emit(out, row);
    }
}

fn render_table_html(out: &mut String, t: &TableView) {
    out.push_str("<table><thead><tr>");
    for h in &t.headers {
        out.push_str("<th>");
        push_escaped(out, h);
        out.push_str("</th>");
    }
    out.push_str("</tr></thead><tbody>\n");
    for row in &t.rows {
        out.push_str("<tr>");
        for cell in row {
            out.push_str(if looks_numeric(cell) {
                "<td class=\"num\">"
            } else {
                "<td>"
            });
            push_escaped(out, cell);
            out.push_str("</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody></table>\n");
}

/// HTML-escapes `text` into `out`.
fn push_escaped(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fascia run report");
        let mut s = Section::new("Memory");
        s.line("2 tables, 1 phase");
        let mut t = TableView::new(["phase", "bytes", "share"]);
        t.row(["dp.n00.vertex1", "1024", "50.0%"]);
        t.row(["<script>", "1024", "50.0%"]);
        s.table(t);
        r.push_section(s);
        r
    }

    #[test]
    fn terminal_rendering_aligns_columns() {
        let text = sample().render_terminal();
        assert!(text.starts_with("fascia run report\n====="));
        assert!(text.contains("## Memory"));
        assert!(text.contains("phase"));
        assert!(text.contains("dp.n00.vertex1"));
        // Numeric columns right-align: bytes under its header width.
        assert!(text.contains(" 1024"));
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let html = sample().render_html();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<style>"));
        assert!(html.contains("&lt;script&gt;"), "cells must be escaped");
        assert!(!html.contains("<script>"));
        assert!(html.contains("td.num"));
        assert!(html.ends_with("</body></html>\n"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new("empty");
        assert!(r.render_terminal().contains("empty"));
        assert!(r.render_html().contains("<h1>empty</h1>"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TableView::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let mut s = Section::new("s");
        s.table(t);
        let mut r = Report::new("t");
        r.push_section(s);
        let text = r.render_terminal();
        assert!(text.contains("only-one"));
        let html = r.render_html();
        assert!(html.contains("only-one"));
    }
}
