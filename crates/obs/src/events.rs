//! Structured job-lifecycle event log (`fascia-events/1`).
//!
//! The service's flight recorder for *jobs* rather than iterations: one
//! JSONL line per lifecycle transition — submitted, dequeued,
//! attempt-started, heartbeat-observed, checkpointed, retried (with its
//! typed cause), degraded, completed, failed — appended durably enough
//! to replay into a per-job timeline after any crash.
//!
//! Design contract (DESIGN.md §17):
//!
//! * **Append-only.** Lines are never rewritten; each append is one
//!   `write_all` of a complete line on an `O_APPEND` descriptor, so
//!   concurrent readers see either the whole line or nothing (a torn
//!   final line from a SIGKILL mid-write is possible and readers must
//!   skip it — the replay helpers in `fascia-svc` do).
//! * **Monotonic sequence numbers.** `seq` increases strictly within a
//!   process, and [`EventLog::open`] resumes from the highest `seq`
//!   already on disk, so a restarted service continues the sequence
//!   instead of reusing numbers. Replay orders by `seq`, never by
//!   timestamp: the wall clock is a label (it can step backwards under
//!   NTP), the sequence is the truth.
//! * **Hand-rolled JSON**, like every other schema in the repo: written
//!   with [`ObjectWriter`], readable by the depth-capped parser in
//!   `fascia-core`. The schema is additive-only; optional fields are
//!   omitted, not `null`.

use crate::json::ObjectWriter;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag of one event line.
pub const EVENTS_SCHEMA: &str = "fascia-events/1";

/// A job lifecycle transition. The names are stable: scripts, the admin
/// endpoint, and the soak gate match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEventKind {
    /// The job entered the queue (ingested or first seen in the spool).
    Submitted,
    /// The serve loop picked the job up to run it.
    Dequeued,
    /// A supervised worker attempt began.
    AttemptStarted,
    /// The supervisor saw the attempt's first heartbeat advance.
    HeartbeatObserved,
    /// A durable checkpoint with ≥ 1 iteration exists for the job.
    Checkpointed,
    /// A transient failure triggered a retry; `cause` is the
    /// `JobError::kind` string.
    Retried,
    /// The job ended `partial` (honest reduced-iteration estimate);
    /// `cause` is the stop cause.
    Degraded,
    /// The job ended `completed`.
    Completed,
    /// The job ended `failed`; `cause` is the `JobError::kind` string.
    Failed,
}

impl JobEventKind {
    /// Stable lower-case name written into the document.
    pub fn name(&self) -> &'static str {
        match self {
            JobEventKind::Submitted => "submitted",
            JobEventKind::Dequeued => "dequeued",
            JobEventKind::AttemptStarted => "attempt-started",
            JobEventKind::HeartbeatObserved => "heartbeat-observed",
            JobEventKind::Checkpointed => "checkpointed",
            JobEventKind::Retried => "retried",
            JobEventKind::Degraded => "degraded",
            JobEventKind::Completed => "completed",
            JobEventKind::Failed => "failed",
        }
    }

    /// Parses a stable name back (replay).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "submitted" => JobEventKind::Submitted,
            "dequeued" => JobEventKind::Dequeued,
            "attempt-started" => JobEventKind::AttemptStarted,
            "heartbeat-observed" => JobEventKind::HeartbeatObserved,
            "checkpointed" => JobEventKind::Checkpointed,
            "retried" => JobEventKind::Retried,
            "degraded" => JobEventKind::Degraded,
            "completed" => JobEventKind::Completed,
            "failed" => JobEventKind::Failed,
            _ => return None,
        })
    }

    /// Whether this kind ends the job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEventKind::Degraded | JobEventKind::Completed | JobEventKind::Failed
        )
    }
}

/// One event line. Build with [`JobEvent::new`] plus the optional-field
/// builders; [`EventLog::append`] stamps `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Monotonic per-log sequence number (0 until appended).
    pub seq: u64,
    /// Wall-clock label in milliseconds since the Unix epoch. Comes from
    /// the service's single `Clock` handle; never used for ordering.
    pub ts_unix_ms: u64,
    /// The job id this transition belongs to.
    pub job: String,
    /// The transition.
    pub kind: JobEventKind,
    /// Attempt index (1-based; 0 for queue-level events).
    pub attempt: u32,
    /// Typed cause: a `JobError::kind` string for retried/failed, the
    /// stop cause for degraded.
    pub cause: Option<String>,
    /// Iterations backing the event (checkpointed/terminal events).
    pub iterations: Option<u64>,
    /// Observed heartbeat sequence (heartbeat-observed events).
    pub hb_seq: Option<u64>,
}

impl JobEvent {
    /// A bare event; chain the builders for the optional fields.
    pub fn new(ts_unix_ms: u64, job: &str, kind: JobEventKind, attempt: u32) -> Self {
        Self {
            seq: 0,
            ts_unix_ms,
            job: job.to_string(),
            kind,
            attempt,
            cause: None,
            iterations: None,
            hb_seq: None,
        }
    }

    /// Sets the typed cause string.
    pub fn cause(mut self, cause: &str) -> Self {
        self.cause = Some(cause.to_string());
        self
    }

    /// Sets the backing iteration count.
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Sets the observed heartbeat sequence.
    pub fn hb_seq(mut self, seq: u64) -> Self {
        self.hb_seq = Some(seq);
        self
    }

    /// Renders the one-line `fascia-events/1` document (no trailing
    /// newline; the log adds it). Optional fields are omitted when
    /// absent — the schema is additive-only.
    pub fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("schema", EVENTS_SCHEMA)
            .field_u64("seq", self.seq)
            .field_u64("ts_unix_ms", self.ts_unix_ms)
            .field_str("job", &self.job)
            .field_str("kind", self.kind.name())
            .field_u64("attempt", u64::from(self.attempt));
        if let Some(c) = &self.cause {
            w.field_str("cause", c);
        }
        if let Some(n) = self.iterations {
            w.field_u64("iterations", n);
        }
        if let Some(s) = self.hb_seq {
            w.field_u64("hb_seq", s);
        }
        w.finish()
    }
}

/// The append-only event log: one open `O_APPEND` file plus the process's
/// sequence counter. Cheap to share behind the service; appends take a
/// short mutex (one per lifecycle transition, nowhere near a hot loop).
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    next_seq: AtomicU64,
}

impl EventLog {
    /// Opens (creating as needed) the log at `path` and resumes the
    /// sequence after the highest `seq` already recorded, so restarts
    /// keep the log strictly ordered.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let next_seq = match std::fs::read_to_string(&path) {
            Ok(text) => text.lines().filter_map(scan_seq).max().map_or(0, |s| s + 1),
            Err(_) => 0,
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            next_seq: AtomicU64::new(next_seq),
        })
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Stamps `seq`, appends the event as one line, and returns the
    /// sequence it got. The line is written with a single `write_all` on
    /// an append-mode descriptor: concurrent tail readers never see an
    /// interleaved line (a crash can still tear the final one — readers
    /// skip unparseable lines).
    pub fn append(&self, mut ev: JobEvent) -> std::io::Result<u64> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Stamp under the lock so seq order and file order are identical.
        ev.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut line = ev.to_json();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        Ok(ev.seq)
    }
}

/// Extracts the `"seq"` value from a raw event line without a full JSON
/// parse (this crate is write-only; the read half lives in `fascia-core`).
/// Returns `None` for torn or foreign lines — exactly the lines a resumed
/// sequence must not be derailed by.
fn scan_seq(line: &str) -> Option<u64> {
    let rest = &line[line.find("\"seq\":")? + "\"seq\":".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    // A torn line may cut the number itself short; only a line that still
    // terminates properly after the digits counts.
    if digits.is_empty() || !line.ends_with('}') {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fascia-events-{tag}-{}/events.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn append_stamps_monotonic_seq_and_one_line_per_event() {
        let path = tmp_log("basic");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path).unwrap();
        assert_eq!(log.next_seq(), 0);
        let s0 = log
            .append(JobEvent::new(1000, "j1", JobEventKind::Submitted, 0))
            .unwrap();
        let s1 = log
            .append(
                JobEvent::new(1001, "j1", JobEventKind::Retried, 1)
                    .cause("worker-panic")
                    .iterations(3),
            )
            .unwrap();
        assert_eq!((s0, s1), (0, 1));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"schema\":\"fascia-events/1\""));
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"cause\":\"worker-panic\""));
        assert!(lines[1].contains("\"iterations\":3"));
        assert!(!lines[0].contains("cause"), "absent fields are omitted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_resumes_after_the_highest_seq_even_past_a_torn_line() {
        let path = tmp_log("resume");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::open(&path).unwrap();
            for _ in 0..3 {
                log.append(JobEvent::new(1, "j", JobEventKind::Submitted, 0))
                    .unwrap();
            }
        }
        // Simulate a SIGKILL mid-append: a torn final line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"schema\":\"fascia-events/1\",\"seq\":99")
                .unwrap();
        }
        let log = EventLog::open(&path).unwrap();
        assert_eq!(log.next_seq(), 3, "torn line must not derail the seq");
        let s = log
            .append(JobEvent::new(2, "j", JobEventKind::Completed, 1))
            .unwrap();
        assert_eq!(s, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_kinds_roundtrip_their_names() {
        for kind in [
            JobEventKind::Submitted,
            JobEventKind::Dequeued,
            JobEventKind::AttemptStarted,
            JobEventKind::HeartbeatObserved,
            JobEventKind::Checkpointed,
            JobEventKind::Retried,
            JobEventKind::Degraded,
            JobEventKind::Completed,
            JobEventKind::Failed,
        ] {
            assert_eq!(JobEventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(JobEventKind::parse("bogus"), None);
        assert!(JobEventKind::Completed.is_terminal());
        assert!(!JobEventKind::Retried.is_terminal());
    }
}
