//! `fascia-obs` — zero-dependency observability for the counting engine.
//!
//! The paper's whole evaluation is about *where time and memory go*:
//! per-subtemplate DP cost (Fig. 8), table footprint by layout (Figs. 6–7),
//! inner- vs outer-loop scaling (Fig. 9). This crate gives the engine a way
//! to measure those quantities instead of estimating them, with strictly
//! `std`-only building blocks (the build environment may have no network,
//! so the layer is self-contained):
//!
//! * [`Counter`] — a monotone event counter, sharded across per-thread
//!   slots so concurrent increments never contend on one cache line; the
//!   shard values themselves are the per-thread work counts that make
//!   inner- vs outer-loop imbalance visible,
//! * [`Gauge`] — a last-value / high-watermark cell (table bytes, rows),
//! * [`Histogram`] — a lock-free log2-bucketed value distribution with
//!   approximate quantiles (span durations, row sizes),
//! * [`EventLog`] — the service's append-only `fascia-events/1` job
//!   lifecycle log: one JSONL line per transition, monotonic sequence
//!   numbers, replayable into per-job timelines,
//! * [`SpanTimer`] — an RAII scope timer recording into a histogram,
//! * [`Metrics`] — the registry that owns all of the above, explicitly
//!   threaded through the engine (no globals), with [`Metrics::merge`] for
//!   combining per-worker registries and stable pretty/JSON/Prometheus
//!   reports,
//! * [`Tracer`] — the flight recorder: per-thread lock-free rings of
//!   fixed-size trace events (spans, instants, counter samples) with
//!   Chrome trace-event JSON export and a stable `fascia-trace/1`
//!   summary — the *when and in what order* companion to the registry's
//!   *how much*,
//! * [`Profiler`] — a signal-free sampling profiler: threads publish
//!   their current phase stack into lock-free slots, a watcher thread
//!   samples them at a configurable Hz and aggregates self/total time
//!   per phase with flamegraph-compatible collapsed-stack export,
//! * [`CountingAlloc`] — an opt-in counting `#[global_allocator]` wrapper
//!   attributing allocation volume and live watermarks to the same phase
//!   taxonomy the tracer and profiler publish,
//! * [`Report`] — the presentation layer of the unified `fascia report`
//!   tool: schema-agnostic sections/tables rendered as aligned terminal
//!   text or one self-contained HTML document,
//! * [`IterLedger`] — the bounded, deterministically-downsampling
//!   per-iteration estimate ledger behind the `fascia-est/1`
//!   estimator-convergence document (the statistics half lives next to
//!   the engine, which owns the stratified accumulators).
//!
//! # Overhead discipline
//!
//! A `Metrics` handle is optional everywhere it appears. The engine
//! resolves metric handles *once* per run, outside all loops; with metrics
//! absent or disabled the hot loops see a `None` and skip with a single
//! pointer check. Enabled metrics cost one relaxed atomic add per event.

#![warn(missing_docs)]

pub mod alloc;
pub mod counter;
pub mod est;
pub mod events;
pub mod histogram;
pub mod json;
pub mod profiler;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use alloc::{CountingAlloc, MemPhaseGuard, MemPhaseId, MemSnapshot, MAX_MEM_PHASES};
pub use counter::{thread_slot, Counter, Gauge, SHARDS};
pub use est::{sparkline, IterLedger, LedgerEntry, EST_SCHEMA};
pub use events::{EventLog, JobEvent, JobEventKind, EVENTS_SCHEMA};
pub use histogram::Histogram;
pub use profiler::{PhaseGuard, PhaseId, PhaseStat, Profiler, MAX_PHASE_DEPTH, PROFILE_SHARDS};
pub use registry::{
    detect_cpu_model, detect_git_sha, detect_kernel, Metrics, MetricsReport, RunInfo,
};
pub use report::{Report, Section, TableView};
pub use span::SpanTimer;
pub use trace::{EventKind, NameId, TraceEvent, TraceSpan, Tracer, TRACE_SHARDS};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn end_to_end_report_contains_all_metric_kinds() {
        let m = Metrics::new();
        m.counter("engine.events").add(3);
        m.gauge("table.bytes").set_max(4096);
        m.histogram("engine.span_ns").record(1500);
        let json = m.to_json();
        assert!(json.contains("\"engine.events\""));
        assert!(json.contains("\"table.bytes\""));
        assert!(json.contains("\"engine.span_ns\""));
        assert!(json.contains("\"schema\":\"fascia-obs/1\""));
        let pretty = m.render_pretty();
        assert!(pretty.contains("engine.events"));
    }

    #[test]
    fn disabled_registry_reports_disabled() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let e = Metrics::new();
        assert!(e.is_enabled());
    }

    #[test]
    fn merge_across_threads_sums_exactly() {
        let total = Arc::new(Metrics::new());
        let workers = 8;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let local = Metrics::new();
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..per {
                        local.counter("work").inc();
                    }
                    local.histogram("h").record(7);
                    total.merge(&local);
                });
            }
        });
        assert_eq!(total.counter("work").get(), workers * per);
        assert_eq!(total.histogram("h").count(), workers);
    }
}
