//! Lock-free log2-bucketed histogram.
//!
//! Bucket `i` (for `i >= 1`) covers values in `[2^(i-1), 2^i)`; bucket 0
//! holds exactly the value 0. With `u64` values this needs 65 buckets.
//! Recording is a handful of relaxed atomic ops; quantiles are recovered
//! from bucket counts and reported as the *upper bound* of the bucket the
//! quantile falls in, i.e. within a factor of 2 of the true value — plenty
//! for span timings whose interesting differences are orders of magnitude.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket covering `v`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Exclusive upper bound of bucket `i` (inclusive bound is `this - 1`;
/// bucket 0's sole member is 0). Saturates at `u64::MAX` for the top bucket.
#[inline]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A fixed-size, lock-free value distribution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observed value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Largest observed value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean of observed values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Within a factor of 2 of the exact order statistic; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(if i == 0 { 0 } else { bucket_upper_bound(i) - 1 });
            }
        }
        self.max()
    }

    /// The p50/p95/p99 quantile triple the service exports everywhere
    /// (latency gauges, admin metrics, report tables); `None` if empty.
    /// Each value is a log2-bucket upper bound, within 2x of exact.
    pub fn quantile_summary(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then(|| (bucket_upper_bound(i), c))
            })
            .collect()
    }

    /// Adds every bucket and the sum/min/max of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Each power of two opens a new bucket; its predecessor closes one.
        for i in 0..64 {
            let p = 1u64 << i;
            assert_eq!(bucket_index(p), i + 1, "2^{i} must open bucket {}", i + 1);
            if p > 1 {
                assert_eq!(bucket_index(p - 1), i, "2^{i}-1 must stay in bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(3), 8);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_recovered_within_bucket_resolution() {
        let h = Histogram::new();
        // 100 observations of 1000 and 1 outlier of 1_000_000.
        for _ in 0..100 {
            h.record(1000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 101);
        assert_eq!(h.sum(), 100 * 1000 + 1_000_000);
        assert_eq!(h.min(), Some(1000));
        assert_eq!(h.max(), Some(1_000_000));
        // p50 and p90 land in the bucket containing 1000: [512, 1024).
        let p50 = h.quantile(0.5).unwrap();
        assert!((1000..1024).contains(&(p50 as usize)), "p50 = {p50}");
        assert_eq!(h.quantile(0.5), h.quantile(0.9));
        // p100 lands in the outlier's bucket [2^19, 2^20).
        let p100 = h.quantile(1.0).unwrap();
        assert!(
            (1_000_000..(1 << 20)).contains(&(p100 as usize)),
            "p100 = {p100}"
        );
        // The quantile never undershoots the true order statistic by more
        // than its bucket width: upper bound >= true value.
        assert!(p50 >= 1000);
        assert!(p100 >= 1_000_000);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn zero_values_are_tracked() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.nonzero_buckets(), vec![(1, 2)]);
    }

    #[test]
    fn merge_combines_distributions() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1013);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + (i % 7));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
