//! The flight recorder: per-thread lock-free rings of fixed-size trace
//! events with Chrome-trace export.
//!
//! Where [`crate::Metrics`] answers *how much* (counters, distributions),
//! the [`Tracer`] answers *when and in what order*: a bounded, allocation-
//! free timeline of span, instant, and counter-sample events that can be
//! dumped to Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) or summarized into a stable `fascia-trace/1`
//! document.
//!
//! # Hot-path discipline
//!
//! Recording an event is: one `thread_local` slot read, one relaxed
//! `fetch_add` to claim a ring index, and four relaxed stores — never a
//! lock, never an allocation. Names are interned up front (a short mutex,
//! once per run, mirroring how the engine resolves metric handles), so the
//! hot path carries a `u32` [`NameId`]. Memory is bounded by construction:
//! each per-thread ring holds a fixed number of fixed-size slots, and an
//! event that arrives after its ring is full is *dropped and counted*
//! (see [`Tracer::dropped`]) rather than allocated or overwritten —
//! keeping the recorded prefix of every thread's timeline intact.
//!
//! As with `Metrics`, a `Tracer` is optional everywhere it appears: the
//! engine resolves `Option<Tracer>` once per run, and an absent tracer
//! costs a single pointer check per site.

use crate::counter::{thread_slot, Counter};
use crate::json::{array_of, ObjectWriter};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of per-thread event rings. Matches [`crate::SHARDS`] so a trace
/// event's `tid` and a sharded counter's slot index identify the same
/// thread: more threads than this wrap around and share rings.
pub const TRACE_SHARDS: usize = crate::SHARDS;

/// Default ring capacity (events per thread slot) of [`Tracer::new`].
/// 16 Ki events × 32 bytes × [`TRACE_SHARDS`] rings ≈ 8 MiB per tracer.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// Interned event-name handle; obtained from [`Tracer::intern`] once per
/// run and carried through hot loops instead of the string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(u32);

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed scope: `ts_ns` is the start, `dur_ns` the length
    /// (Chrome phase `X`, a "complete" event).
    Span,
    /// A point in time (Chrome phase `i`).
    Instant,
    /// A sampled value at a point in time (Chrome phase `C`); the sample
    /// is in `arg`.
    CounterSample,
}

impl EventKind {
    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::Span,
            1 => EventKind::Instant,
            _ => EventKind::CounterSample,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            EventKind::Span => 0,
            EventKind::Instant => 1,
            EventKind::CounterSample => 2,
        }
    }

    /// Chrome trace-event phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::Span => "X",
            EventKind::Instant => "i",
            EventKind::CounterSample => "C",
        }
    }
}

/// One drained trace event (the export-side view of a ring slot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Interned name; resolve through [`Tracer::name_of`].
    pub name: NameId,
    /// Event flavor.
    pub kind: EventKind,
    /// Recording thread's stable slot id (see [`thread_slot`]); matches
    /// the shard index of [`Counter::shard_values`] for the same thread.
    pub tid: u32,
    /// Nanoseconds since the tracer's epoch (span start for spans).
    pub ts_ns: u64,
    /// Span length in nanoseconds (0 for instants and counter samples).
    pub dur_ns: u64,
    /// Free-form payload: iteration index, byte count, sampled value, ...
    pub arg: u64,
}

/// One fixed-size ring slot. Fields are atomics so concurrent writers that
/// wrapped onto the same ring, and the export-side reader, are race-free
/// without a lock; events are only drained after writers quiesce, so the
/// relaxed stores of one event are never read mid-write.
#[derive(Debug)]
struct EventSlot {
    /// `name (32 bits) | kind (8) | tid (16)`, packed.
    head: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    arg: AtomicU64,
}

#[derive(Debug)]
struct Ring {
    slots: Box<[EventSlot]>,
    /// Monotone claim cursor; values past `slots.len()` are drops.
    cursor: AtomicUsize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || EventSlot {
            head: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        });
        Ring {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn recorded(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }
}

/// The flight recorder. Cheap to share (`&Tracer` / `Arc<Tracer>`); all
/// recording methods take `&self` and are lock-free.
///
/// ```
/// use fascia_obs::{EventKind, Tracer};
///
/// let tr = Tracer::new();
/// let work = tr.intern("work");
/// {
///     let _s = tr.span(work); // records a Span event on drop
/// }
/// tr.instant(tr.intern("milestone"), 7);
/// let events = tr.events();
/// assert_eq!(events.len(), 2);
/// assert!(events.iter().any(|e| e.kind == EventKind::Span));
/// assert_eq!(tr.dropped(), 0);
/// ```
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    rings: Box<[Ring]>,
    dropped: Counter,
    names: Mutex<Vec<String>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the default per-thread ring capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracer whose per-thread rings hold `ring_capacity` events each.
    /// Memory is `ring_capacity × 32 bytes × TRACE_SHARDS`, fixed at
    /// construction; events beyond a full ring are dropped and counted.
    pub fn with_capacity(ring_capacity: usize) -> Tracer {
        let capacity = ring_capacity.max(1);
        let mut rings = Vec::with_capacity(TRACE_SHARDS);
        rings.resize_with(TRACE_SHARDS, || Ring::with_capacity(capacity));
        Tracer {
            epoch: Instant::now(),
            rings: rings.into_boxed_slice(),
            dropped: Counter::new(),
            names: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread ring capacity in events.
    pub fn ring_capacity(&self) -> usize {
        self.rings[0].slots.len()
    }

    /// Interns `name`, returning its stable id. Takes a short mutex —
    /// call once per run outside hot loops, like metric-handle resolution.
    pub fn intern(&self, name: &str) -> NameId {
        let mut names = self.names.lock().unwrap();
        if let Some(i) = names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        names.push(name.to_string());
        NameId((names.len() - 1) as u32)
    }

    /// The string interned as `id` (empty if unknown).
    pub fn name_of(&self, id: NameId) -> String {
        self.names
            .lock()
            .unwrap()
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records one event. Lock- and allocation-free: claim a slot index
    /// with one relaxed `fetch_add`, then four relaxed stores; a claim past
    /// the ring's end only bumps the drop counter.
    #[inline]
    fn push(&self, kind: EventKind, name: NameId, ts_ns: u64, dur_ns: u64, arg: u64) {
        let tid = thread_slot();
        let ring = &self.rings[tid % TRACE_SHARDS];
        let i = ring.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = ring.slots.get(i) else {
            self.dropped.inc();
            return;
        };
        let head = (name.0 as u64) << 32 | (kind.as_u8() as u64) << 16 | (tid as u64 & 0xFFFF);
        slot.head.store(head, Ordering::Relaxed);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
    }

    /// Starts a span; the event records when the guard drops.
    #[inline]
    pub fn span(&self, name: NameId) -> TraceSpan<'_> {
        self.span_arg(name, 0)
    }

    /// Starts a span carrying a payload (iteration index, node id, ...).
    #[inline]
    pub fn span_arg(&self, name: NameId, arg: u64) -> TraceSpan<'_> {
        TraceSpan {
            tracer: self,
            name,
            start_ns: self.now_ns(),
            arg,
        }
    }

    /// Records an instant event with a payload.
    #[inline]
    pub fn instant(&self, name: NameId, arg: u64) {
        self.push(EventKind::Instant, name, self.now_ns(), 0, arg);
    }

    /// Records a counter sample: `value` at the current time.
    #[inline]
    pub fn sample(&self, name: NameId, value: u64) {
        self.push(EventKind::CounterSample, name, self.now_ns(), 0, value);
    }

    /// Events recorded (committed to a ring) so far.
    pub fn recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded() as u64).sum()
    }

    /// Events dropped because their thread's ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Drains a snapshot of every recorded event, sorted by `(tid, ts)` so
    /// each thread's timeline reads in order. Call after recording threads
    /// quiesce (end of run); a concurrent snapshot is memory-safe but may
    /// observe half-written trailing events.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.recorded() as usize);
        for ring in self.rings.iter() {
            for slot in &ring.slots[..ring.recorded()] {
                let head = slot.head.load(Ordering::Relaxed);
                out.push(TraceEvent {
                    name: NameId((head >> 32) as u32),
                    kind: EventKind::from_u8((head >> 16) as u8),
                    tid: (head & 0xFFFF) as u32,
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                    arg: slot.arg.load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by_key(|e| (e.tid, e.ts_ns, e.dur_ns));
        out
    }

    /// Renders the Chrome trace-event JSON array: one object per event
    /// with `name`/`cat`/`ph`/`pid`/`tid`/`ts` (and `dur` for spans), `ts`
    /// and `dur` in microseconds with nanosecond precision. Loadable
    /// directly in Perfetto or `chrome://tracing`; events are sorted so
    /// timestamps are monotone per `tid`.
    pub fn to_chrome_json(&self) -> String {
        let names = self.names.lock().unwrap().clone();
        array_of(self.events().into_iter().map(|e| {
            let name = names
                .get(e.name.0 as usize)
                .map(String::as_str)
                .unwrap_or("?");
            let mut o = ObjectWriter::new();
            o.field_str("name", name)
                .field_str("cat", "fascia")
                .field_str("ph", e.kind.phase())
                .field_u64("pid", 1)
                .field_u64("tid", e.tid as u64)
                .field_f64("ts", e.ts_ns as f64 / 1000.0);
            if e.kind == EventKind::Span {
                o.field_f64("dur", e.dur_ns as f64 / 1000.0);
            }
            if e.kind == EventKind::Instant {
                // Thread-scoped instant marker.
                o.field_str("s", "t");
            }
            let mut args = ObjectWriter::new();
            match e.kind {
                EventKind::CounterSample => args.field_u64("value", e.arg),
                _ => args.field_u64("arg", e.arg),
            };
            o.field_raw("args", &args.finish());
            o.finish()
        }))
    }

    /// Renders the stable `fascia-trace/1` summary document: event totals
    /// by kind, drop accounting, ring capacity, and the per-span-name
    /// wall-clock breakdown (`count` and `total_ns` per name, keys
    /// sorted). Additive-only, like `fascia-obs/1`.
    pub fn summary_json(&self) -> String {
        let names = self.names.lock().unwrap().clone();
        let events = self.events();
        let (mut spans, mut instants, mut samples) = (0u64, 0u64, 0u64);
        let mut phases: std::collections::BTreeMap<&str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for e in &events {
            match e.kind {
                EventKind::Span => {
                    spans += 1;
                    let name = names
                        .get(e.name.0 as usize)
                        .map(String::as_str)
                        .unwrap_or("?");
                    let entry = phases.entry(name).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += e.dur_ns;
                }
                EventKind::Instant => instants += 1,
                EventKind::CounterSample => samples += 1,
            }
        }
        let mut ev = ObjectWriter::new();
        ev.field_u64("recorded", events.len() as u64)
            .field_u64("dropped", self.dropped())
            .field_u64("spans", spans)
            .field_u64("instants", instants)
            .field_u64("counter_samples", samples);
        let mut ph = ObjectWriter::new();
        for (name, (count, total_ns)) in &phases {
            let mut o = ObjectWriter::new();
            o.field_u64("count", *count)
                .field_u64("total_ns", *total_ns);
            ph.field_raw(name, &o.finish());
        }
        let mut root = ObjectWriter::new();
        root.field_str("schema", "fascia-trace/1")
            .field_raw("events", &ev.finish())
            .field_u64("ring_capacity", self.ring_capacity() as u64)
            .field_raw("phases", &ph.finish());
        root.finish()
    }
}

/// RAII guard from [`Tracer::span`]: records a [`EventKind::Span`] event
/// covering its lifetime when dropped.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    tracer: &'a Tracer,
    name: NameId,
    start_ns: u64,
    arg: u64,
}

impl TraceSpan<'_> {
    /// Ends the span now instead of at scope exit.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for TraceSpan<'_> {
    #[inline]
    fn drop(&mut self) {
        let end = self.tracer.now_ns();
        self.tracer.push(
            EventKind::Span,
            self.name,
            self.start_ns,
            end.saturating_sub(self.start_ns),
            self.arg,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let tr = Tracer::new();
        let a = tr.intern("alpha");
        let b = tr.intern("beta");
        assert_ne!(a, b);
        assert_eq!(tr.intern("alpha"), a);
        assert_eq!(tr.name_of(a), "alpha");
        assert_eq!(tr.name_of(b), "beta");
    }

    #[test]
    fn span_instant_and_sample_are_recorded() {
        let tr = Tracer::new();
        let s = tr.intern("work");
        let i = tr.intern("mark");
        let c = tr.intern("ci");
        {
            let _g = tr.span_arg(s, 42);
        }
        tr.instant(i, 7);
        tr.sample(c, 123);
        let events = tr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(tr.recorded(), 3);
        let span = events.iter().find(|e| e.kind == EventKind::Span).unwrap();
        assert_eq!(span.name, s);
        assert_eq!(span.arg, 42);
        let sample = events
            .iter()
            .find(|e| e.kind == EventKind::CounterSample)
            .unwrap();
        assert_eq!(sample.arg, 123);
        assert_eq!(sample.dur_ns, 0);
    }

    #[test]
    fn full_ring_drops_and_counts_never_overwrites() {
        let tr = Tracer::with_capacity(4);
        let n = tr.intern("e");
        for i in 0..10 {
            tr.instant(n, i);
        }
        assert_eq!(tr.recorded(), 4);
        assert_eq!(tr.dropped(), 6);
        // The *first* four events survive (prefix intact, no overwrite).
        let args: Vec<u64> = tr.events().iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![0, 1, 2, 3]);
    }

    #[test]
    fn events_are_sorted_monotone_per_tid() {
        let tr = Tracer::new();
        let n = tr.intern("t");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        tr.instant(n, i);
                    }
                });
            }
        });
        let events = tr.events();
        assert_eq!(events.len(), 400);
        for pair in events.windows(2) {
            if pair[0].tid == pair[1].tid {
                assert!(
                    pair[0].ts_ns <= pair[1].ts_ns,
                    "per-tid ts must be monotone"
                );
            }
        }
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let tr = Tracer::new();
        let s = tr.intern("dp.n00.vertex1");
        {
            let _g = tr.span(s);
        }
        tr.sample(tr.intern("ci"), 55);
        let json = tr.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"dp.n00.vertex1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":"));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"value\":55"));
    }

    #[test]
    fn summary_counts_by_kind_and_phase() {
        let tr = Tracer::with_capacity(8);
        let a = tr.intern("phase.a");
        let b = tr.intern("phase.b");
        tr.span(a).finish();
        tr.span(a).finish();
        tr.span(b).finish();
        tr.instant(b, 0);
        for _ in 0..10 {
            tr.sample(a, 1); // overflows the ring: 8 slots, 14 events
        }
        let s = tr.summary_json();
        assert!(s.contains("\"schema\":\"fascia-trace/1\""));
        assert!(s.contains("\"dropped\":6"));
        assert!(s.contains("\"spans\":3"));
        assert!(s.contains("\"phase.a\":{\"count\":2"));
        assert!(s.contains("\"ring_capacity\":8"));
    }

    #[test]
    fn span_nesting_keeps_start_timestamps() {
        let tr = Tracer::new();
        let outer = tr.intern("outer");
        let inner = tr.intern("inner");
        {
            let _o = tr.span(outer);
            let _i = tr.span(inner);
        }
        let events = tr.events();
        let o = events.iter().find(|e| e.name == outer).unwrap();
        let i = events.iter().find(|e| e.name == inner).unwrap();
        assert!(o.ts_ns <= i.ts_ns, "outer starts first");
        assert!(
            o.ts_ns + o.dur_ns >= i.ts_ns + i.dur_ns,
            "outer encloses inner"
        );
    }
}
