//! The metrics registry: named counters/gauges/histograms plus stable
//! pretty and JSON reports.
//!
//! A [`Metrics`] value is created by whoever owns a run (the CLI, a bench
//! binary, a test) and threaded explicitly through the engine — there is no
//! global registry. Registration takes a short mutex; hot paths never touch
//! the maps because callers resolve `Arc` handles once up front.
//!
//! # JSON schema (`fascia-obs/1`)
//!
//! The schema is **stable and additive-only**: existing keys keep their
//! meaning and type forever; new keys may appear in any release.
//!
//! ```json
//! {
//!   "schema": "fascia-obs/1",
//!   "counters":   { "<name>": { "total": u64, "per_thread": [u64, ...] } },
//!   "gauges":     { "<name>": u64 },
//!   "histograms": { "<name>": {
//!       "count": u64, "sum": u64, "min": u64, "max": u64, "mean": f64,
//!       "p50": u64, "p90": u64, "p95": u64, "p99": u64,
//!       "buckets": [ { "le": u64, "count": u64 }, ... ]
//!   } }
//! }
//! ```
//!
//! Counter `per_thread` lists per-shard (≈ per-thread) increments with
//! trailing zero shards trimmed; histogram quantiles are log2-bucket upper
//! bounds (within 2x of exact); `buckets[].le` is the bucket's inclusive
//! upper value bound.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::json::{array_of, ObjectWriter};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Registry of named metrics. Cheap to share via `Arc`; all methods take
/// `&self`.
#[derive(Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// Creates an enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Default::default()
        }
    }

    /// Creates a registry that instrumented code should treat as off: it
    /// still hands out working handles (so code needs no special cases),
    /// but [`Metrics::is_enabled`] is `false` and the engine skips
    /// resolving handles against it. Used to measure the cost of the
    /// disabled path vs. no metrics at all.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }

    /// Whether instrumented code should record into this registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Folds every metric of `other` into `self`: counters and histograms
    /// add, gauges take the maximum (peaks survive). Metrics absent from
    /// `self` are created.
    pub fn merge(&self, other: &Metrics) {
        for (name, src) in other.counters.lock().unwrap().iter() {
            self.counter(name).merge(src);
        }
        for (name, src) in other.gauges.lock().unwrap().iter() {
            self.gauge(name).merge(src);
        }
        for (name, src) in other.histograms.lock().unwrap().iter() {
            self.histogram(name).merge(src);
        }
    }

    /// Renders the `fascia-obs/1` JSON document (compact, keys sorted).
    pub fn to_json(&self) -> String {
        self.to_json_full(None, None)
    }

    /// Renders the `fascia-obs/1` JSON document with optional additive
    /// sections: a `"run"` object of self-describing run metadata (so a
    /// saved report says when and how it was produced) and a `"trace"`
    /// object holding an already-rendered `fascia-trace/1` summary from
    /// [`crate::Tracer::summary_json`]. Both are additive-only schema
    /// extensions; absent sections are simply omitted.
    pub fn to_json_full(&self, run: Option<&RunInfo>, trace_summary: Option<&str>) -> String {
        let mut counters = ObjectWriter::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            let mut shards = c.shard_values();
            while shards.last() == Some(&0) {
                shards.pop();
            }
            let mut o = ObjectWriter::new();
            o.field_u64("total", c.get()).field_raw(
                "per_thread",
                &array_of(shards.iter().map(|v| v.to_string())),
            );
            counters.field_raw(name, &o.finish());
        }
        let mut gauges = ObjectWriter::new();
        for (name, g) in self.gauges.lock().unwrap().iter() {
            gauges.field_u64(name, g.get());
        }
        let mut histograms = ObjectWriter::new();
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let mut o = ObjectWriter::new();
            o.field_u64("count", h.count())
                .field_u64("sum", h.sum())
                .field_u64("min", h.min().unwrap_or(0))
                .field_u64("max", h.max().unwrap_or(0))
                .field_f64("mean", h.mean().unwrap_or(0.0))
                .field_u64("p50", h.quantile(0.50).unwrap_or(0))
                .field_u64("p90", h.quantile(0.90).unwrap_or(0))
                .field_u64("p95", h.quantile(0.95).unwrap_or(0))
                .field_u64("p99", h.quantile(0.99).unwrap_or(0))
                .field_raw(
                    "buckets",
                    &array_of(h.nonzero_buckets().into_iter().map(|(le, count)| {
                        let mut b = ObjectWriter::new();
                        // `le` is exclusive internally; report inclusive.
                        b.field_u64("le", le.saturating_sub(1))
                            .field_u64("count", count);
                        b.finish()
                    })),
                );
            histograms.field_raw(name, &o.finish());
        }
        let mut root = ObjectWriter::new();
        root.field_str("schema", "fascia-obs/1");
        if let Some(info) = run {
            root.field_raw("run", &info.to_json());
        }
        root.field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        if let Some(ts) = trace_summary {
            root.field_raw("trace", ts);
        }
        root.finish()
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as cumulative `_bucket{le="..."}` series (log2 bucket upper bounds)
    /// plus `_sum` and `_count`. Metric names are sanitized to the
    /// Prometheus alphabet (`.` and other separators become `_`).
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {}", c.get());
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", g.get());
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cum = 0u64;
            for (le, count) in h.nonzero_buckets() {
                cum += count;
                // `le` is the exclusive internal bound; expose inclusive.
                let _ = writeln!(out, "{p}_bucket{{le=\"{}\"}} {cum}", le.saturating_sub(1));
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{p}_sum {}", h.sum());
            let _ = writeln!(out, "{p}_count {}", h.count());
        }
        out
    }

    /// Renders a human-readable table of every metric.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock().unwrap();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in counters.iter() {
                let shards: Vec<u64> = c.shard_values().into_iter().filter(|&v| v != 0).collect();
                let _ = write!(out, "  {name:<44} {:>14}", c.get());
                if shards.len() > 1 {
                    let _ = write!(out, "  per-thread {shards:?}");
                }
                out.push('\n');
            }
        }
        drop(counters);
        let gauges = self.gauges.lock().unwrap();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in gauges.iter() {
                let _ = writeln!(out, "  {name:<44} {:>14}", g.get());
            }
        }
        drop(gauges);
        let histograms = self.histograms.lock().unwrap();
        if !histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in histograms.iter() {
                let _ = writeln!(
                    out,
                    "  {name:<44} n={} mean={} p50<={} p99<={} max={}",
                    h.count(),
                    h.mean().map_or_else(|| "-".into(), |m| format!("{m:.1}")),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                );
            }
        }
        out
    }
}

/// Sanitizes a metric name into the Prometheus alphabet: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Self-describing run metadata embedded in the `fascia-obs/1` report via
/// [`Metrics::to_json_full`], so a saved `results/metrics/*.json` file
/// records when and under what execution shape it was produced.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Run start as milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Worker thread count available to the run.
    pub threads: u64,
    /// Parallel mode name as configured (e.g. `auto`, `outer`).
    pub parallel: String,
    /// CPU model string (from `/proc/cpuinfo`), when detectable.
    pub cpu_model: Option<String>,
    /// Kernel release (from `/proc/sys/kernel/osrelease`), when detectable.
    pub kernel: Option<String>,
    /// Git commit of the working tree that produced the run, when inside a
    /// repository with a resolvable `HEAD`.
    pub git_sha: Option<String>,
}

impl RunInfo {
    /// Renders the `"run"` JSON object. Provenance fields are emitted only
    /// when present (additive-only schema: absent ≠ empty string).
    pub fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.field_u64("started_unix_ms", self.started_unix_ms)
            .field_u64("wall_ms", self.wall_ms)
            .field_u64("threads", self.threads)
            .field_str("parallel", &self.parallel);
        if let Some(cpu) = &self.cpu_model {
            o.field_str("cpu_model", cpu);
        }
        if let Some(k) = &self.kernel {
            o.field_str("kernel", k);
        }
        if let Some(sha) = &self.git_sha {
            o.field_str("git_sha", sha);
        }
        o.finish()
    }

    /// Fills the provenance fields from the host (best effort; fields stay
    /// `None` wherever the host does not expose the information), so BENCH
    /// archives carry enough context to be compared across machines.
    pub fn probe_host(&mut self) {
        self.cpu_model = detect_cpu_model();
        self.kernel = detect_kernel();
        self.git_sha = detect_git_sha();
    }
}

/// First `model name` value from `/proc/cpuinfo` (Linux; `None` elsewhere).
pub fn detect_cpu_model() -> Option<String> {
    let info = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in info.lines() {
        let (key, value) = line.split_once(':')?;
        if key.trim() == "model name" {
            let v = value.trim();
            if !v.is_empty() {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Kernel release string (Linux; `None` elsewhere).
pub fn detect_kernel() -> Option<String> {
    let v = std::fs::read_to_string("/proc/sys/kernel/osrelease").ok()?;
    let v = v.trim();
    if v.is_empty() {
        None
    } else {
        Some(v.to_string())
    }
}

/// Commit hash of `HEAD`, walking up from the current directory to find a
/// `.git` directory and resolving one level of `ref:` indirection. Purely
/// file-based — no `git` binary is spawned.
pub fn detect_git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if head.is_file() {
            let contents = std::fs::read_to_string(&head).ok()?;
            let contents = contents.trim();
            let sha = if let Some(reference) = contents.strip_prefix("ref: ") {
                std::fs::read_to_string(dir.join(".git").join(reference.trim()))
                    .ok()?
                    .trim()
                    .to_string()
            } else {
                contents.to_string()
            };
            return if sha.len() >= 7 && sha.chars().all(|c| c.is_ascii_hexdigit()) {
                Some(sha)
            } else {
                None
            };
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Convenience wrapper bundling a registry with how it should be reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsReport {
    /// No collection, no output.
    Off,
    /// Human-readable table on stderr.
    Pretty,
    /// One-line `fascia-obs/1` JSON document on stdout.
    Json,
    /// Prometheus text exposition format on stdout.
    Prom,
}

impl MetricsReport {
    /// Parses a `--metrics` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "pretty" => Some(Self::Pretty),
            "json" => Some(Self::Json),
            "prom" => Some(Self::Prom),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.counter("x").get(), 5);
    }

    #[test]
    fn merge_creates_missing_metrics() {
        let a = Metrics::new();
        let b = Metrics::new();
        b.counter("only_in_b").add(4);
        b.gauge("g").set(10);
        b.histogram("h").record(100);
        a.gauge("g").set(3);
        a.merge(&b);
        assert_eq!(a.counter("only_in_b").get(), 4);
        assert_eq!(a.gauge("g").get(), 10, "gauge merge takes the max");
        assert_eq!(a.histogram("h").count(), 1);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let m = Metrics::new();
        m.counter("b.second").inc();
        m.counter("a.first").add(2);
        m.gauge("bytes").set(77);
        m.histogram("ns").record(5);
        let j = m.to_json();
        assert!(j.starts_with("{\"schema\":\"fascia-obs/1\""));
        let a = j.find("a.first").unwrap();
        let b = j.find("b.second").unwrap();
        assert!(a < b, "keys must be sorted");
        assert!(j.contains("\"bytes\":77"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"buckets\":[{\"le\":"));
    }

    #[test]
    fn metrics_report_parses() {
        assert_eq!(MetricsReport::parse("off"), Some(MetricsReport::Off));
        assert_eq!(MetricsReport::parse("pretty"), Some(MetricsReport::Pretty));
        assert_eq!(MetricsReport::parse("json"), Some(MetricsReport::Json));
        assert_eq!(MetricsReport::parse("prom"), Some(MetricsReport::Prom));
        assert_eq!(MetricsReport::parse("bogus"), None);
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("engine.iterations.total"),
            "engine_iterations_total"
        );
        assert_eq!(prom_name("table.bytes-peak"), "table_bytes_peak");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn prom_rendering_exposes_cumulative_buckets() {
        let m = Metrics::new();
        m.counter("engine.iterations.total").add(7);
        m.gauge("table.bytes.peak").set(4096);
        let h = m.histogram("engine.span_ns");
        h.record(3); // bucket le=3 (internal bound 4)
        h.record(3);
        h.record(100); // bucket le=127
        let p = m.render_prom();
        assert!(p.contains("# TYPE engine_iterations_total counter\nengine_iterations_total 7\n"));
        assert!(p.contains("# TYPE table_bytes_peak gauge\ntable_bytes_peak 4096\n"));
        assert!(p.contains("# TYPE engine_span_ns histogram"));
        assert!(p.contains("engine_span_ns_bucket{le=\"3\"} 2"));
        assert!(
            p.contains("engine_span_ns_bucket{le=\"127\"} 3"),
            "buckets are cumulative:\n{p}"
        );
        assert!(p.contains("engine_span_ns_bucket{le=\"+Inf\"} 3"));
        assert!(p.contains("engine_span_ns_sum 106"));
        assert!(p.contains("engine_span_ns_count 3"));
    }

    #[test]
    fn json_full_embeds_run_info_and_trace_summary() {
        let m = Metrics::new();
        m.counter("c").inc();
        let info = RunInfo {
            started_unix_ms: 1_700_000_000_000,
            wall_ms: 1234,
            threads: 8,
            parallel: "outer".to_string(),
            ..RunInfo::default()
        };
        let j = m.to_json_full(Some(&info), Some("{\"schema\":\"fascia-trace/1\"}"));
        assert!(j.contains("\"run\":{\"started_unix_ms\":1700000000000"));
        assert!(j.contains("\"parallel\":\"outer\""));
        assert!(j.contains("\"trace\":{\"schema\":\"fascia-trace/1\"}"));
        // The plain document stays unchanged (additive-only schema).
        assert!(!m.to_json().contains("\"run\""));
    }

    #[test]
    fn run_info_provenance_is_emitted_only_when_present() {
        let mut info = RunInfo {
            threads: 2,
            parallel: "serial".to_string(),
            ..RunInfo::default()
        };
        let bare = info.to_json();
        assert!(!bare.contains("cpu_model"));
        assert!(!bare.contains("kernel"));
        assert!(!bare.contains("git_sha"));
        info.cpu_model = Some("Engine 9000 \"Turbo\"".to_string());
        info.kernel = Some("6.1.0".to_string());
        info.git_sha = Some("abc123f".to_string());
        let full = info.to_json();
        assert!(full.contains("\"cpu_model\":\"Engine 9000 \\\"Turbo\\\"\""));
        assert!(full.contains("\"kernel\":\"6.1.0\""));
        assert!(full.contains("\"git_sha\":\"abc123f\""));
    }

    #[test]
    fn host_probe_is_best_effort() {
        // Must never panic; on Linux CI the proc files exist and parse.
        let mut info = RunInfo::default();
        info.probe_host();
        if cfg!(target_os = "linux") {
            assert!(info.kernel.is_some());
        }
        if let Some(sha) = &info.git_sha {
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn pretty_lists_every_kind() {
        let m = Metrics::new();
        m.counter("c").inc();
        m.gauge("g").set(1);
        m.histogram("h").record(1);
        let p = m.render_pretty();
        assert!(p.contains("counters:"));
        assert!(p.contains("gauges:"));
        assert!(p.contains("histograms:"));
    }
}
