//! The metrics registry: named counters/gauges/histograms plus stable
//! pretty and JSON reports.
//!
//! A [`Metrics`] value is created by whoever owns a run (the CLI, a bench
//! binary, a test) and threaded explicitly through the engine — there is no
//! global registry. Registration takes a short mutex; hot paths never touch
//! the maps because callers resolve `Arc` handles once up front.
//!
//! # JSON schema (`fascia-obs/1`)
//!
//! The schema is **stable and additive-only**: existing keys keep their
//! meaning and type forever; new keys may appear in any release.
//!
//! ```json
//! {
//!   "schema": "fascia-obs/1",
//!   "counters":   { "<name>": { "total": u64, "per_thread": [u64, ...] } },
//!   "gauges":     { "<name>": u64 },
//!   "histograms": { "<name>": {
//!       "count": u64, "sum": u64, "min": u64, "max": u64, "mean": f64,
//!       "p50": u64, "p90": u64, "p99": u64,
//!       "buckets": [ { "le": u64, "count": u64 }, ... ]
//!   } }
//! }
//! ```
//!
//! Counter `per_thread` lists per-shard (≈ per-thread) increments with
//! trailing zero shards trimmed; histogram quantiles are log2-bucket upper
//! bounds (within 2x of exact); `buckets[].le` is the bucket's inclusive
//! upper value bound.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::json::{array_of, ObjectWriter};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Registry of named metrics. Cheap to share via `Arc`; all methods take
/// `&self`.
#[derive(Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// Creates an enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Default::default()
        }
    }

    /// Creates a registry that instrumented code should treat as off: it
    /// still hands out working handles (so code needs no special cases),
    /// but [`Metrics::is_enabled`] is `false` and the engine skips
    /// resolving handles against it. Used to measure the cost of the
    /// disabled path vs. no metrics at all.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }

    /// Whether instrumented code should record into this registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Folds every metric of `other` into `self`: counters and histograms
    /// add, gauges take the maximum (peaks survive). Metrics absent from
    /// `self` are created.
    pub fn merge(&self, other: &Metrics) {
        for (name, src) in other.counters.lock().unwrap().iter() {
            self.counter(name).merge(src);
        }
        for (name, src) in other.gauges.lock().unwrap().iter() {
            self.gauge(name).merge(src);
        }
        for (name, src) in other.histograms.lock().unwrap().iter() {
            self.histogram(name).merge(src);
        }
    }

    /// Renders the `fascia-obs/1` JSON document (compact, keys sorted).
    pub fn to_json(&self) -> String {
        let mut counters = ObjectWriter::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            let mut shards = c.shard_values();
            while shards.last() == Some(&0) {
                shards.pop();
            }
            let mut o = ObjectWriter::new();
            o.field_u64("total", c.get()).field_raw(
                "per_thread",
                &array_of(shards.iter().map(|v| v.to_string())),
            );
            counters.field_raw(name, &o.finish());
        }
        let mut gauges = ObjectWriter::new();
        for (name, g) in self.gauges.lock().unwrap().iter() {
            gauges.field_u64(name, g.get());
        }
        let mut histograms = ObjectWriter::new();
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let mut o = ObjectWriter::new();
            o.field_u64("count", h.count())
                .field_u64("sum", h.sum())
                .field_u64("min", h.min().unwrap_or(0))
                .field_u64("max", h.max().unwrap_or(0))
                .field_f64("mean", h.mean().unwrap_or(0.0))
                .field_u64("p50", h.quantile(0.50).unwrap_or(0))
                .field_u64("p90", h.quantile(0.90).unwrap_or(0))
                .field_u64("p99", h.quantile(0.99).unwrap_or(0))
                .field_raw(
                    "buckets",
                    &array_of(h.nonzero_buckets().into_iter().map(|(le, count)| {
                        let mut b = ObjectWriter::new();
                        // `le` is exclusive internally; report inclusive.
                        b.field_u64("le", le.saturating_sub(1))
                            .field_u64("count", count);
                        b.finish()
                    })),
                );
            histograms.field_raw(name, &o.finish());
        }
        let mut root = ObjectWriter::new();
        root.field_str("schema", "fascia-obs/1")
            .field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        root.finish()
    }

    /// Renders a human-readable table of every metric.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock().unwrap();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in counters.iter() {
                let shards: Vec<u64> = c.shard_values().into_iter().filter(|&v| v != 0).collect();
                let _ = write!(out, "  {name:<44} {:>14}", c.get());
                if shards.len() > 1 {
                    let _ = write!(out, "  per-thread {shards:?}");
                }
                out.push('\n');
            }
        }
        drop(counters);
        let gauges = self.gauges.lock().unwrap();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in gauges.iter() {
                let _ = writeln!(out, "  {name:<44} {:>14}", g.get());
            }
        }
        drop(gauges);
        let histograms = self.histograms.lock().unwrap();
        if !histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in histograms.iter() {
                let _ = writeln!(
                    out,
                    "  {name:<44} n={} mean={} p50<={} p99<={} max={}",
                    h.count(),
                    h.mean().map_or_else(|| "-".into(), |m| format!("{m:.1}")),
                    h.quantile(0.5).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                );
            }
        }
        out
    }
}

/// Convenience wrapper bundling a registry with how it should be reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsReport {
    /// No collection, no output.
    Off,
    /// Human-readable table on stderr.
    Pretty,
    /// One-line `fascia-obs/1` JSON document on stdout.
    Json,
}

impl MetricsReport {
    /// Parses a `--metrics` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Self::Off),
            "pretty" => Some(Self::Pretty),
            "json" => Some(Self::Json),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.counter("x").get(), 5);
    }

    #[test]
    fn merge_creates_missing_metrics() {
        let a = Metrics::new();
        let b = Metrics::new();
        b.counter("only_in_b").add(4);
        b.gauge("g").set(10);
        b.histogram("h").record(100);
        a.gauge("g").set(3);
        a.merge(&b);
        assert_eq!(a.counter("only_in_b").get(), 4);
        assert_eq!(a.gauge("g").get(), 10, "gauge merge takes the max");
        assert_eq!(a.histogram("h").count(), 1);
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let m = Metrics::new();
        m.counter("b.second").inc();
        m.counter("a.first").add(2);
        m.gauge("bytes").set(77);
        m.histogram("ns").record(5);
        let j = m.to_json();
        assert!(j.starts_with("{\"schema\":\"fascia-obs/1\""));
        let a = j.find("a.first").unwrap();
        let b = j.find("b.second").unwrap();
        assert!(a < b, "keys must be sorted");
        assert!(j.contains("\"bytes\":77"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"buckets\":[{\"le\":"));
    }

    #[test]
    fn metrics_report_parses() {
        assert_eq!(MetricsReport::parse("off"), Some(MetricsReport::Off));
        assert_eq!(MetricsReport::parse("pretty"), Some(MetricsReport::Pretty));
        assert_eq!(MetricsReport::parse("json"), Some(MetricsReport::Json));
        assert_eq!(MetricsReport::parse("bogus"), None);
    }

    #[test]
    fn pretty_lists_every_kind() {
        let m = Metrics::new();
        m.counter("c").inc();
        m.gauge("g").set(1);
        m.histogram("h").record(1);
        let p = m.render_pretty();
        assert!(p.contains("counters:"));
        assert!(p.contains("gauges:"));
        assert!(p.contains("histograms:"));
    }
}
