//! Estimator-convergence primitives: a bounded per-iteration estimate
//! ledger and a textual sparkline for CI trajectories.
//!
//! The ledger is the storage half of the `fascia-est/1` observability
//! plane (the statistics half lives next to the engine, which owns the
//! Welford accumulators). It captures one entry per color-coding
//! iteration as a stream and keeps memory `O(cap)` no matter how many
//! iterations a run executes: once more than `cap` entries are retained
//! the ledger doubles its sampling stride and drops every entry whose
//! iteration index no longer lies on the coarser grid. The rule is
//! deterministic — which entries survive depends only on the iteration
//! indices offered, never on timing — so two runs of the same schedule
//! produce byte-identical ledgers.

/// Schema tag of the estimator-convergence document.
pub const EST_SCHEMA: &str = "fascia-est/1";

/// One captured iteration: the estimate it contributed and the running
/// aggregate right after it was folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Zero-based iteration index within the run.
    pub iteration: u64,
    /// This iteration's (scaled) estimate contribution.
    pub estimate: f64,
    /// Running mean after this iteration.
    pub running_mean: f64,
    /// Running relative CI half-width after this iteration (`NaN` while
    /// undefined, i.e. fewer than two samples or a zero mean).
    pub relative_ci: f64,
}

/// Bounded-memory iteration ledger with deterministic power-of-two
/// downsampling (see module docs).
#[derive(Debug, Clone)]
pub struct IterLedger {
    cap: usize,
    stride: u64,
    offered: u64,
    entries: Vec<LedgerEntry>,
}

impl IterLedger {
    /// Creates a ledger retaining at most `cap` entries (`cap` is clamped
    /// to at least 2 so decimation always makes progress).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(2),
            stride: 1,
            offered: 0,
            entries: Vec::new(),
        }
    }

    /// Offers the next iteration's entry. Entries must arrive in
    /// ascending iteration order; off-stride entries are dropped without
    /// being stored.
    pub fn offer(&mut self, e: LedgerEntry) {
        self.offered += 1;
        if !e.iteration.is_multiple_of(self.stride) {
            return;
        }
        self.entries.push(e);
        if self.entries.len() > self.cap {
            self.stride *= 2;
            let stride = self.stride;
            self.entries.retain(|e| e.iteration.is_multiple_of(stride));
        }
    }

    /// Entries currently retained, in iteration order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Current sampling stride (1 until the cap is first exceeded).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The retention cap this ledger was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total entries offered (the run's iteration count as the ledger
    /// saw it), independent of how many survived decimation.
    pub fn offered(&self) -> u64 {
        self.offered
    }
}

/// Block-character levels from lowest to highest.
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a fixed-width Unicode sparkline (▁▂▃▄▅▆▇█),
/// bucket-averaging when there are more values than columns. Non-finite
/// values are skipped; an empty or all-non-finite series renders empty.
/// Plain characters, no markup — safe for both terminal and HTML-escaped
/// report cells.
pub fn sparkline(values: &[f64], width: usize) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(finite.len());
    // Mean of each of `cols` contiguous buckets.
    let mut bucketed = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * finite.len() / cols;
        let hi = ((c + 1) * finite.len() / cols).max(lo + 1);
        let slice = &finite[lo..hi];
        bucketed.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    let min = bucketed.iter().copied().fold(f64::INFINITY, f64::min);
    let max = bucketed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    bucketed
        .iter()
        .map(|&v| {
            let level = if span <= 0.0 {
                0
            } else {
                (((v - min) / span) * (SPARK_LEVELS.len() - 1) as f64).round() as usize
            };
            SPARK_LEVELS[level.min(SPARK_LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> LedgerEntry {
        LedgerEntry {
            iteration: i,
            estimate: i as f64,
            running_mean: i as f64 / 2.0,
            relative_ci: 1.0 / (i + 1) as f64,
        }
    }

    #[test]
    fn ledger_keeps_everything_under_cap() {
        let mut l = IterLedger::new(8);
        for i in 0..8 {
            l.offer(entry(i));
        }
        assert_eq!(l.stride(), 1);
        assert_eq!(l.entries().len(), 8);
        assert_eq!(l.offered(), 8);
    }

    #[test]
    fn ledger_decimates_by_powers_of_two_and_stays_bounded() {
        let cap = 8;
        let mut l = IterLedger::new(cap);
        for i in 0..10_000 {
            l.offer(entry(i));
            assert!(l.entries().len() <= cap + 1);
        }
        assert!(l.stride().is_power_of_two());
        assert!(l.stride() > 1);
        // Every survivor lies on the final stride grid, in order.
        let s = l.stride();
        let iters: Vec<u64> = l.entries().iter().map(|e| e.iteration).collect();
        assert!(iters.iter().all(|i| i % s == 0));
        assert!(iters.windows(2).all(|w| w[0] < w[1]));
        // Iteration 0 always survives: it lies on every power-of-two grid.
        assert_eq!(iters[0], 0);
        assert_eq!(l.offered(), 10_000);
    }

    #[test]
    fn ledger_is_deterministic() {
        let run = |n: u64| {
            let mut l = IterLedger::new(16);
            for i in 0..n {
                l.offer(entry(i));
            }
            l.entries().to_vec()
        };
        assert_eq!(run(5000), run(5000));
    }

    #[test]
    fn tiny_cap_is_clamped() {
        let mut l = IterLedger::new(0);
        for i in 0..100 {
            l.offer(entry(i));
        }
        assert_eq!(l.cap(), 2);
        assert!(l.entries().len() <= 3);
    }

    #[test]
    fn sparkline_monotone_series_uses_full_range() {
        let vals: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let s = sparkline(&vals, 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_handles_flat_empty_and_nonfinite() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY], 8), "");
        assert_eq!(sparkline(&[1.0; 4], 8), "▁▁▁▁");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0], 8), "▁█");
    }
}
