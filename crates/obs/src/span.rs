//! RAII span timing.

use crate::Histogram;
use std::time::Instant;

/// Times a scope and records the elapsed nanoseconds into a [`Histogram`]
/// when dropped.
///
/// ```
/// use fascia_obs::{Histogram, SpanTimer};
/// let spans = Histogram::new();
/// {
///     let _t = SpanTimer::start(&spans);
///     // ... work ...
/// }
/// assert_eq!(spans.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing; the span ends (and records) on drop.
    #[inline]
    pub fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }

    /// Starts timing only if a histogram is present — the engine's idiom
    /// for optional instrumentation (`None` costs one branch).
    #[inline]
    pub fn start_opt(hist: Option<&'a Histogram>) -> Option<Self> {
        hist.map(Self::start)
    }

    /// Ends the span early, recording now instead of at scope exit.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(ns.min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = SpanTimer::start(&h);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.min().unwrap() >= 1_000_000, "slept 2ms, recorded <1ms");
    }

    #[test]
    fn start_opt_none_records_nothing() {
        let h = Histogram::new();
        {
            let _t = SpanTimer::start_opt(None);
        }
        assert_eq!(h.count(), 0);
        {
            let _t = SpanTimer::start_opt(Some(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_immediately() {
        let h = Histogram::new();
        let t = SpanTimer::start(&h);
        t.finish();
        assert_eq!(h.count(), 1);
    }
}
