//! An opt-in counting global allocator with per-phase attribution.
//!
//! The Figs. 6–7 memory comparisons and the engine's budget ladder reason
//! about *table* bytes; this module measures what the process actually
//! asks of the allocator, attributed to the same phase taxonomy the tracer
//! and profiler publish (`iteration`, `coloring`, `dp.n<idx>.<kind><size>`,
//! ...). A binary opts in by installing [`CountingAlloc`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fascia_obs::alloc::CountingAlloc = fascia_obs::alloc::CountingAlloc;
//! ```
//!
//! and enabling it around the region of interest with [`set_enabled`].
//! Instrumented code marks phases with [`intern_phase`] (once, outside hot
//! loops) and [`enter_phase`] (an RAII guard setting a thread-local phase
//! index). Attribution is by the phase current *on the allocating thread at
//! allocation time*; frees are charged to the phase current at free time,
//! so a phase's `live` can dip negative when memory flows across phase
//! boundaries — per-phase `allocated_bytes` is the robust axis, and the
//! process-wide live/peak watermark is tracked separately and exactly.
//!
//! # Discipline inside the hooks
//!
//! The `alloc`/`dealloc` hooks must never allocate, panic, or take locks.
//! Everything they touch is a fixed-size static table of relaxed atomics
//! plus a const-initialized `thread_local!` `Cell` (no destructor, so it is
//! safe to read during TLS teardown via `try_with`). Phase *names* live in
//! a mutex-guarded `Vec` touched only by [`intern_phase`] and
//! [`snapshot`], never by the hooks. When disabled (the default) every
//! hook is a single relaxed load on top of the system allocator.

use crate::json::ObjectWriter;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fixed capacity of the phase-attribution table (slot 0 is the implicit
/// "(unattributed)" phase; [`intern_phase`] falls back to it when full).
pub const MAX_MEM_PHASES: usize = 64;

/// Name reported for slot 0: allocations made while no phase was entered.
pub const UNATTRIBUTED: &str = "(unattributed)";

struct PhaseCell {
    allocated: AtomicU64,
    freed: AtomicU64,
    allocs: AtomicU64,
    frees: AtomicU64,
    live: AtomicI64,
    peak: AtomicI64,
}

impl PhaseCell {
    const fn new() -> Self {
        Self {
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            live: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    fn reset(&self) {
        self.allocated.store(0, Ordering::Relaxed);
        self.freed.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.live.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASES: [PhaseCell; MAX_MEM_PHASES] = [const { PhaseCell::new() }; MAX_MEM_PHASES];
/// Interned phase count including slot 0.
static NUM_PHASES: AtomicUsize = AtomicUsize::new(1);
/// Names for slots 1.. — only touched by `intern_phase` and `snapshot`.
static NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());
static TOTAL_LIVE: AtomicI64 = AtomicI64::new(0);
static TOTAL_PEAK: AtomicI64 = AtomicI64::new(0);

thread_local! {
    // `const` init + no destructor: reachable from the alloc hook even
    // during thread teardown.
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(0) };
}

#[inline]
fn current_phase() -> usize {
    CURRENT_PHASE.try_with(Cell::get).unwrap_or(0)
}

#[inline]
fn record_alloc(size: usize) {
    let cell = &PHASES[current_phase().min(MAX_MEM_PHASES - 1)];
    cell.allocated.fetch_add(size as u64, Ordering::Relaxed);
    cell.allocs.fetch_add(1, Ordering::Relaxed);
    let live = cell.live.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    cell.peak.fetch_max(live, Ordering::Relaxed);
    let total = TOTAL_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    TOTAL_PEAK.fetch_max(total, Ordering::Relaxed);
}

#[inline]
fn record_free(size: usize) {
    let cell = &PHASES[current_phase().min(MAX_MEM_PHASES - 1)];
    cell.freed.fetch_add(size as u64, Ordering::Relaxed);
    cell.frees.fetch_add(1, Ordering::Relaxed);
    cell.live.fetch_sub(size as i64, Ordering::Relaxed);
    TOTAL_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
}

/// The counting allocator. Wraps [`std::alloc::System`]; when not
/// [enabled](set_enabled) it forwards with one extra relaxed load.
pub struct CountingAlloc;

// SAFETY: forwards every operation to `System` unchanged; the bookkeeping
// is lock-free, allocation-free, and panic-free (see module docs).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Ordering::Relaxed) {
            record_free(layout.size());
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_free(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// Turns recording on or off process-wide. Counters are *not* cleared —
/// pair with [`reset`] to measure a fresh region.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the counting hooks are currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every counter (per-phase and process-wide). Interned phase
/// names and outstanding [`MemPhaseId`]s stay valid.
pub fn reset() {
    for cell in PHASES.iter() {
        cell.reset();
    }
    TOTAL_LIVE.store(0, Ordering::Relaxed);
    TOTAL_PEAK.store(0, Ordering::Relaxed);
}

/// A handle to an interned attribution phase. Copyable; valid for the
/// process lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPhaseId(usize);

impl MemPhaseId {
    /// The implicit slot-0 "(unattributed)" phase.
    pub const fn unattributed() -> Self {
        MemPhaseId(0)
    }
}

/// Interns `name` into the fixed phase table, returning the existing id on
/// repeat calls. When the table is full the unattributed phase is returned
/// (attribution degrades, never fails). Takes a mutex — call once per
/// phase outside hot loops, like the other resolve-once handles.
pub fn intern_phase(name: &str) -> MemPhaseId {
    let mut names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = names.iter().position(|n| n == name) {
        return MemPhaseId(i + 1);
    }
    let slot = names.len() + 1;
    if slot >= MAX_MEM_PHASES {
        return MemPhaseId::unattributed();
    }
    names.push(name.to_string());
    NUM_PHASES.store(slot + 1, Ordering::Release);
    MemPhaseId(slot)
}

/// RAII guard: allocations on this thread are attributed to `id` until the
/// guard drops, which restores the previously-current phase (guards nest).
#[must_use = "the phase lasts only while the guard is alive"]
pub struct MemPhaseGuard {
    prev: usize,
    // Restoring on another thread would corrupt that thread's phase.
    _not_send: PhantomData<*const ()>,
}

/// Enters phase `id` on the current thread. Cheap (one TLS write); safe to
/// call whether or not the counting allocator is installed or enabled.
pub fn enter_phase(id: MemPhaseId) -> MemPhaseGuard {
    let prev = CURRENT_PHASE
        .try_with(|c| c.replace(id.0))
        .unwrap_or_default();
    MemPhaseGuard {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for MemPhaseGuard {
    fn drop(&mut self) {
        let _ = CURRENT_PHASE.try_with(|c| c.set(self.prev));
    }
}

/// Counters of one phase at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemPhaseSnapshot {
    /// Phase name (slot 0 reports [`UNATTRIBUTED`]).
    pub name: String,
    /// Bytes requested by allocations attributed to this phase.
    pub allocated_bytes: u64,
    /// Bytes released by frees attributed to this phase.
    pub freed_bytes: u64,
    /// Allocation calls.
    pub allocs: u64,
    /// Free calls.
    pub frees: u64,
    /// High watermark of this phase's (alloc − free) balance, clamped at 0
    /// (a phase freeing memory allocated elsewhere never reports negative).
    pub live_peak_bytes: u64,
}

/// Point-in-time view of every allocator counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemSnapshot {
    /// Whether recording was on when the snapshot was taken.
    pub enabled: bool,
    /// Per-phase counters; phase 0 is the unattributed remainder. Phases
    /// with no activity are omitted.
    pub phases: Vec<MemPhaseSnapshot>,
    /// Process-wide bytes requested while enabled.
    pub total_allocated_bytes: u64,
    /// Process-wide bytes freed while enabled.
    pub total_freed_bytes: u64,
    /// Process-wide allocation calls.
    pub total_allocs: u64,
    /// Process-wide free calls.
    pub total_frees: u64,
    /// Exact process-wide live high watermark (bytes).
    pub live_peak_bytes: u64,
}

impl MemSnapshot {
    /// Bytes attributed to a *named* phase (everything except slot 0).
    pub fn attributed_bytes(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name != UNATTRIBUTED)
            .map(|p| p.allocated_bytes)
            .sum()
    }

    /// Fraction of allocated bytes attributed to a named phase
    /// (`None` when nothing was allocated).
    pub fn attributed_fraction(&self) -> Option<f64> {
        if self.total_allocated_bytes == 0 {
            None
        } else {
            Some(self.attributed_bytes() as f64 / self.total_allocated_bytes as f64)
        }
    }

    /// Renders the `"allocator"` JSON object of the `fascia-mem/1`
    /// document (stable, additive-only).
    pub fn to_json(&self) -> String {
        let mut phases = ObjectWriter::new();
        for p in &self.phases {
            let mut o = ObjectWriter::new();
            o.field_u64("allocated_bytes", p.allocated_bytes)
                .field_u64("freed_bytes", p.freed_bytes)
                .field_u64("allocs", p.allocs)
                .field_u64("frees", p.frees)
                .field_u64("live_peak_bytes", p.live_peak_bytes);
            phases.field_raw(&p.name, &o.finish());
        }
        let mut o = ObjectWriter::new();
        o.field_bool("enabled", self.enabled)
            .field_u64("total_allocated_bytes", self.total_allocated_bytes)
            .field_u64("total_freed_bytes", self.total_freed_bytes)
            .field_u64("total_allocs", self.total_allocs)
            .field_u64("total_frees", self.total_frees)
            .field_u64("live_peak_bytes", self.live_peak_bytes)
            .field_u64("attributed_bytes", self.attributed_bytes())
            .field_f64(
                "attributed_fraction",
                self.attributed_fraction().unwrap_or(0.0),
            )
            .field_raw("phases", &phases.finish());
        o.finish()
    }
}

/// Reads every counter. Totals are summed across phases, so
/// "attribution sums to total" holds by construction; the process-wide
/// live peak is tracked separately and exactly.
pub fn snapshot() -> MemSnapshot {
    let names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    let num = NUM_PHASES.load(Ordering::Acquire).min(MAX_MEM_PHASES);
    let mut snap = MemSnapshot {
        enabled: is_enabled(),
        live_peak_bytes: TOTAL_PEAK.load(Ordering::Relaxed).max(0) as u64,
        ..MemSnapshot::default()
    };
    for (i, cell) in PHASES.iter().enumerate().take(num) {
        let allocated = cell.allocated.load(Ordering::Relaxed);
        let freed = cell.freed.load(Ordering::Relaxed);
        let allocs = cell.allocs.load(Ordering::Relaxed);
        let frees = cell.frees.load(Ordering::Relaxed);
        snap.total_allocated_bytes += allocated;
        snap.total_freed_bytes += freed;
        snap.total_allocs += allocs;
        snap.total_frees += frees;
        if allocated == 0 && freed == 0 && allocs == 0 && frees == 0 {
            continue;
        }
        let name = if i == 0 {
            UNATTRIBUTED.to_string()
        } else {
            names
                .get(i - 1)
                .cloned()
                .unwrap_or_else(|| UNATTRIBUTED.to_string())
        };
        snap.phases.push(MemPhaseSnapshot {
            name,
            allocated_bytes: allocated,
            freed_bytes: freed,
            allocs,
            frees,
            live_peak_bytes: cell.peak.load(Ordering::Relaxed).max(0) as u64,
        });
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    // The real end-to-end test installs the allocator in its own binary
    // (`tests/alloc_attribution.rs`); here the hooks are not installed, so
    // these cover interning, guards, and snapshot math only.

    #[test]
    fn interning_is_idempotent_and_bounded() {
        let a = intern_phase("unit.alloc.phase_a");
        let b = intern_phase("unit.alloc.phase_a");
        assert_eq!(a, b);
        let c = intern_phase("unit.alloc.phase_b");
        assert_ne!(a, c);
        for i in 0..2 * MAX_MEM_PHASES {
            // Overflowing the table degrades to unattributed, never panics.
            let _ = intern_phase(&format!("unit.alloc.spam_{i}"));
        }
        assert_eq!(intern_phase("unit.alloc.overflow"), MemPhaseId(0));
    }

    #[test]
    fn guards_nest_and_restore() {
        let a = intern_phase("unit.alloc.phase_a");
        let outer = enter_phase(a);
        assert_eq!(current_phase(), a.0);
        {
            let _inner = enter_phase(MemPhaseId::unattributed());
            assert_eq!(current_phase(), 0);
        }
        assert_eq!(current_phase(), a.0);
        drop(outer);
        assert_eq!(current_phase(), 0);
    }

    #[test]
    fn snapshot_json_shape_is_stable() {
        let snap = MemSnapshot {
            enabled: true,
            phases: vec![MemPhaseSnapshot {
                name: "dp.n00.vertex1".to_string(),
                allocated_bytes: 1024,
                freed_bytes: 512,
                allocs: 2,
                frees: 1,
                live_peak_bytes: 1024,
            }],
            total_allocated_bytes: 2048,
            total_freed_bytes: 512,
            total_allocs: 3,
            total_frees: 1,
            live_peak_bytes: 1536,
        };
        let j = snap.to_json();
        assert!(j.starts_with("{\"enabled\":true"));
        assert!(j.contains("\"attributed_bytes\":1024"));
        assert!(j.contains("\"attributed_fraction\":0.5"));
        assert!(j.contains("\"phases\":{\"dp.n00.vertex1\":{\"allocated_bytes\":1024"));
        assert_eq!(snap.attributed_fraction(), Some(0.5));
        assert_eq!(MemSnapshot::default().attributed_fraction(), None);
    }
}
