//! End-to-end test of the counting allocator with the hooks *installed*:
//! this binary opts in via `#[global_allocator]`, so every heap operation
//! in the process flows through `CountingAlloc`.
//!
//! One test function on purpose: the counters, the enabled flag, and the
//! thread-local phase are process-global, so concurrently running test
//! functions (the harness default) would race on the attribution the
//! assertions below pin down.

use fascia_obs::alloc::{self, CountingAlloc, UNATTRIBUTED};

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn attribution_sums_to_total_with_hooks_installed() {
    // Intern BEFORE enabling: interning allocates (name storage), and the
    // resolve-once discipline keeps that out of the measured region.
    let phase_a = alloc::intern_phase("test.phase_a");
    let phase_b = alloc::intern_phase("test.phase_b");
    alloc::reset();
    alloc::set_enabled(true);

    // Phase-attributed work: exact allocation sizes under each guard.
    let a_buf = {
        let _g = alloc::enter_phase(phase_a);
        vec![0u8; 10_000]
    };
    {
        let _g = alloc::enter_phase(phase_b);
        let transient = vec![0u64; 2_048]; // 16 KiB allocated AND freed here
        assert_eq!(transient.len(), 2_048);
    }
    // Unattributed work: no guard on this thread.
    let stray = vec![0u8; 512];

    let snap = alloc::snapshot();
    alloc::set_enabled(false);
    drop(a_buf);
    drop(stray);

    assert!(snap.enabled, "snapshot taken while recording was live");

    // The headline invariant: per-phase counters sum exactly to the
    // process totals (snapshot() derives totals from the same cells, and
    // nothing may fall outside the fixed slot table).
    let phase_alloc: u64 = snap.phases.iter().map(|p| p.allocated_bytes).sum();
    let phase_freed: u64 = snap.phases.iter().map(|p| p.freed_bytes).sum();
    let phase_allocs: u64 = snap.phases.iter().map(|p| p.allocs).sum();
    let phase_frees: u64 = snap.phases.iter().map(|p| p.frees).sum();
    assert_eq!(phase_alloc, snap.total_allocated_bytes);
    assert_eq!(phase_freed, snap.total_freed_bytes);
    assert_eq!(phase_allocs, snap.total_allocs);
    assert_eq!(phase_frees, snap.total_frees);

    // The hooks really fired and attributed to the right phases.
    let by_name = |n: &str| snap.phases.iter().find(|p| p.name == n);
    let a = by_name("test.phase_a").expect("phase_a recorded");
    assert!(a.allocated_bytes >= 10_000, "phase_a: {a:?}");
    let b = by_name("test.phase_b").expect("phase_b recorded");
    assert!(b.allocated_bytes >= 16_384, "phase_b: {b:?}");
    assert!(b.freed_bytes >= 16_384, "transient freed inside phase_b");
    assert!(b.live_peak_bytes >= 16_384, "phase_b watermark saw the vec");
    let u = by_name(UNATTRIBUTED).expect("stray allocation recorded");
    assert!(u.allocated_bytes >= 512, "unattributed: {u:?}");

    // Process watermark covers the largest concurrent footprint we built.
    assert!(snap.live_peak_bytes >= 16_384);
    // Everything except the stray vec was attributed.
    let frac = snap.attributed_fraction().expect("bytes were allocated");
    assert!(frac > 0.0 && frac <= 1.0, "fraction {frac}");
    assert_eq!(
        snap.attributed_bytes(),
        snap.total_allocated_bytes - u.allocated_bytes
    );

    // The JSON document carries the same numbers under the stable names.
    let json = snap.to_json();
    assert!(json.contains("\"enabled\":true"), "{json}");
    assert!(json.contains("\"test.phase_a\""), "{json}");
    assert!(
        json.contains(&format!(
            "\"total_allocated_bytes\":{}",
            snap.total_allocated_bytes
        )),
        "{json}"
    );

    // Disabled again: new traffic must not move the counters.
    let before = alloc::snapshot().total_allocs;
    let quiet = vec![0u8; 4_096];
    assert_eq!(quiet.len(), 4_096);
    assert_eq!(alloc::snapshot().total_allocs, before, "disabled = inert");
}
