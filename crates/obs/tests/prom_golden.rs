//! Golden-file test for the Prometheus text-exposition rendering.
//!
//! The exposition format is consumed by external scrapers, so its exact
//! shape is a compatibility surface: metric ordering (BTreeMap name
//! order), `# TYPE` lines, cumulative `_bucket{le="..."}` series ending in
//! `+Inf`, `_sum`/`_count`, and name sanitization are all pinned here.
//! Regenerate with `BLESS=1 cargo test -p fascia-obs --test prom_golden`
//! after an intentional format change.

use fascia_obs::Metrics;

fn build_registry() -> Metrics {
    let m = Metrics::new();
    m.counter("engine.iterations.total").add(42);
    m.counter("table.fallbacks").add(3);
    // A name needing sanitization: dots and a dash become underscores.
    m.counter("weird-name.with.dots").add(1);
    m.gauge("table.bytes_peak").set_max(4096);
    m.gauge("engine.threads").set_max(8);
    let h = m.histogram("dp.span_ns");
    for v in [1, 1, 2, 3, 100, 1000, 65_000] {
        h.record(v);
    }
    m
}

#[test]
fn prom_rendering_matches_golden_file() {
    let rendered = build_registry().render_prom();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
    assert_eq!(
        rendered, golden,
        "Prometheus rendering drifted from the golden file; \
         if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn golden_file_is_valid_exposition_format() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics.prom"
    ))
    .expect("golden file exists");
    let mut cum_ok = true;
    let mut last_cum = 0u64;
    for line in golden.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE "), "bad comment line: {line}");
            last_cum = 0;
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value pairs");
        // Metric names (minus the {le=...} selector) use only [a-zA-Z0-9_:].
        let bare = name.split('{').next().unwrap_or(name);
        assert!(
            bare.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "unsanitized name: {bare}"
        );
        if name.contains("_bucket{") {
            // Cumulative buckets never decrease.
            let v: u64 = value.parse().expect("bucket count");
            cum_ok &= v >= last_cum;
            last_cum = v;
        }
    }
    assert!(cum_ok, "bucket series is not cumulative");
    assert!(golden.contains("_bucket{le=\"+Inf\"}"));
}
