//! Multi-thread stress tests for the metric primitives: sharded counter
//! totals, histogram merge associativity, and registry merges under
//! interleaving. These pin the concurrency contracts the engine's wave
//! loops rely on (per-worker registries merged into one report).

use fascia_obs::{Counter, Histogram, Metrics, SHARDS};
use std::sync::Arc;

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn counter_shard_values_sum_to_total_under_contention() {
    let c = Arc::new(Counter::default());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(c.get(), total, "increments lost under contention");
    let shards = c.shard_values();
    assert_eq!(shards.len(), SHARDS);
    assert_eq!(
        shards.iter().sum::<u64>(),
        total,
        "shards disagree with total"
    );
    // More than one shard must have been used with 8 live threads, or the
    // per-thread breakdown is meaningless.
    assert!(
        shards.iter().filter(|&&v| v > 0).count() > 1,
        "all increments landed on one shard: {shards:?}"
    );
}

#[test]
fn histogram_merge_is_associative_and_order_invariant() {
    // Three histograms with different value mixes.
    let parts: Vec<Histogram> = (0..3)
        .map(|i| {
            let h = Histogram::default();
            for v in 0..200u64 {
                h.record(v * (i + 1) + i);
            }
            h
        })
        .collect();

    // (a ⊎ b) ⊎ c
    let left = Histogram::default();
    left.merge(&parts[0]);
    left.merge(&parts[1]);
    left.merge(&parts[2]);
    // a ⊎ (b ⊎ c), built by merging in reverse order.
    let right = Histogram::default();
    right.merge(&parts[2]);
    right.merge(&parts[1]);
    right.merge(&parts[0]);

    assert_eq!(left.count(), right.count());
    assert_eq!(left.sum(), right.sum());
    assert_eq!(left.min(), right.min());
    assert_eq!(left.max(), right.max());
    assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
}

#[test]
fn histogram_concurrent_records_lose_nothing() {
    let h = Arc::new(Histogram::default());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for v in 0..PER_THREAD {
                    h.record(v % (1 << (t % 16)));
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, h.count(), "bucket counts disagree with count");
}

#[test]
fn metrics_merge_under_interleaving_is_exact_and_order_invariant() {
    // Workers record into private registries; merging them into a total in
    // any interleaving must produce identical totals (counters/histograms
    // are additive, gauges keep the max).
    let locals: Vec<Metrics> = (0..THREADS)
        .map(|t| {
            let m = Metrics::new();
            std::thread::scope(|s| {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        m.counter("work").inc();
                        if i % 97 == 0 {
                            m.histogram("h").record(i);
                        }
                    }
                    m.gauge("peak").set_max(1000 + t as u64);
                });
            });
            m
        })
        .collect();

    let forward = Metrics::new();
    for l in &locals {
        forward.merge(l);
    }
    let backward = Metrics::new();
    for l in locals.iter().rev() {
        backward.merge(l);
    }
    // Concurrent merges from multiple threads at once.
    let concurrent = Arc::new(Metrics::new());
    std::thread::scope(|s| {
        for l in &locals {
            let c = Arc::clone(&concurrent);
            s.spawn(move || c.merge(l));
        }
    });

    let expect = THREADS as u64 * PER_THREAD;
    for m in [&forward, &backward, &*concurrent] {
        assert_eq!(m.counter("work").get(), expect);
        assert_eq!(m.gauge("peak").get(), 1000 + THREADS as u64 - 1);
        assert_eq!(
            m.histogram("h").count(),
            THREADS as u64 * PER_THREAD.div_ceil(97)
        );
    }
    assert_eq!(forward.to_json(), backward.to_json());
    assert_eq!(forward.to_json(), concurrent.to_json());
}

#[test]
fn merging_the_same_source_twice_adds_again_not_idempotent_by_design() {
    // Documenting the contract: merge is additive fold, not set union.
    // Callers must merge each worker registry exactly once.
    let src = Metrics::new();
    src.counter("c").add(5);
    let dst = Metrics::new();
    dst.merge(&src);
    dst.merge(&src);
    assert_eq!(dst.counter("c").get(), 10);
}
