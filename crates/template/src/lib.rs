//! Templates (query subgraphs) for FASCIA.
//!
//! A *template* is the small pattern whose non-induced occurrences are
//! counted in a large graph. FASCIA fully supports arbitrary undirected
//! tree templates and, as in the paper, "tree-like" templates containing a
//! triangle (the color-coding DP gets a triangle base case).
//!
//! This crate provides:
//!
//! * [`tree::Template`] — validated template graphs with optional vertex
//!   labels,
//! * [`named`] — the paper's Figure 2 gallery (U3-1 … U12-2),
//! * [`canon`] — AHU canonical forms for rooted and free trees,
//! * [`automorphism`] — automorphism counts (the `α` of Algorithm 2,
//!   line 22),
//! * [`gen`] — generation of all free trees of a given size (11 / 106 / 551
//!   topologies for 7 / 10 / 12 vertices, used for motif finding),
//! * [`partition`] — the single-edge-cut partition trees with the paper's
//!   one-at-a-time and balanced heuristics plus rooted-automorphism
//!   sharing (§III-D).

pub mod automorphism;
pub mod canon;
pub mod directed;
pub mod gen;
pub mod io;
pub mod named;
pub mod partition;
pub mod tree;

pub use named::NamedTemplate;
pub use partition::{PartitionStrategy, PartitionTree};
pub use tree::Template;
