//! Directed tree templates.
//!
//! The paper defers directed support ("although the algorithm
//! theoretically allows for directed templates and networks, we currently
//! only analyze undirected"); this module supplies the template side of
//! that extension: a tree whose every edge carries an orientation.
//!
//! Canonical forms and automorphism counts mirror the undirected AHU
//! machinery with arc-direction annotations, so the color-coding scaling
//! `1 / (P · α)` stays exact.

use crate::canon::VertMask;
use crate::tree::{Template, TemplateError};

/// A directed tree template: an undirected tree plus one orientation per
/// edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiTemplate {
    base: Template,
    /// Oriented arcs, one per underlying edge, as `(from, to)`.
    arcs: Vec<(u8, u8)>,
}

impl DiTemplate {
    /// Builds from an arc list; the underlying undirected graph must be a
    /// valid tree template.
    pub fn from_arcs(n: usize, arcs: &[(u8, u8)]) -> Result<Self, TemplateError> {
        let undirected: Vec<(u8, u8)> = arcs.to_vec();
        let base = Template::tree_from_edges(n, &undirected)?;
        Ok(Self {
            base,
            arcs: arcs.to_vec(),
        })
    }

    /// A directed path `0 -> 1 -> ... -> k-1`.
    pub fn directed_path(k: usize) -> Self {
        let arcs: Vec<(u8, u8)> = (1..k as u8).map(|v| (v - 1, v)).collect();
        Self::from_arcs(k, &arcs).expect("directed path is valid")
    }

    /// An out-star: center 0 with arcs to every leaf.
    pub fn out_star(k: usize) -> Self {
        let arcs: Vec<(u8, u8)> = (1..k as u8).map(|v| (0, v)).collect();
        Self::from_arcs(k, &arcs).expect("out-star is valid")
    }

    /// An in-star: every leaf points at center 0.
    pub fn in_star(k: usize) -> Self {
        let arcs: Vec<(u8, u8)> = (1..k as u8).map(|v| (v, 0)).collect();
        Self::from_arcs(k, &arcs).expect("in-star is valid")
    }

    /// The underlying undirected template.
    pub fn underlying(&self) -> &Template {
        &self.base
    }

    /// Number of template vertices.
    pub fn size(&self) -> usize {
        self.base.size()
    }

    /// The oriented arcs.
    pub fn arcs(&self) -> &[(u8, u8)] {
        &self.arcs
    }

    /// Whether the template arc between adjacent vertices `u` and `v`
    /// points `u -> v`.
    ///
    /// # Panics
    /// Panics if `{u, v}` is not a template edge.
    pub fn points_from(&self, u: u8, v: u8) -> bool {
        if self.arcs.contains(&(u, v)) {
            return true;
        }
        assert!(
            self.arcs.contains(&(v, u)),
            "({u}, {v}) is not a template edge"
        );
        false
    }

    /// Rooted canonical string including arc directions (`>` = arc from
    /// parent to child, `<` = arc from child to parent).
    pub fn rooted_canon(&self, root: u8, mask: VertMask) -> String {
        fn rec(t: &DiTemplate, v: u8, parent: Option<u8>, mask: VertMask) -> String {
            let mut kids: Vec<String> = t
                .base
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| Some(u) != parent && mask & (1 << u) != 0)
                .map(|u| {
                    let marker = if t.points_from(v, u) { '>' } else { '<' };
                    format!("{marker}{}", rec(t, u, Some(v), mask))
                })
                .collect();
            kids.sort_unstable();
            format!("{:x}({})", t.base.label(v), kids.concat())
        }
        rec(self, root, None, mask)
    }

    /// Number of automorphisms (arc- and label-preserving).
    pub fn automorphisms(&self) -> u64 {
        // AHU with directed child grouping, rooted at the underlying tree's
        // center (for bicentral trees: both sides, x2 if the directed
        // halves are isomorphic *and* the central arc direction allows the
        // swap — i.e. the arc reverses onto itself, which requires the two
        // sides to exchange, flipping the central arc; the swap preserves
        // directions iff the two rooted encodings across the arc match).
        fn rooted_aut(t: &DiTemplate, v: u8, parent: Option<u8>, mask: VertMask) -> u64 {
            let kids: Vec<u8> = t
                .base
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| Some(u) != parent && mask & (1 << u) != 0)
                .collect();
            let mut aut = 1u64;
            let mut canons: Vec<String> = Vec::with_capacity(kids.len());
            for &u in &kids {
                aut *= rooted_aut(t, u, Some(v), mask);
                let marker = if t.points_from(v, u) { '>' } else { '<' };
                let sub = rec_canon(t, u, Some(v), mask);
                canons.push(format!("{marker}{sub}"));
            }
            canons.sort_unstable();
            let mut run = 1usize;
            for i in 1..=canons.len() {
                if i < canons.len() && canons[i] == canons[i - 1] {
                    run += 1;
                } else {
                    aut *= (1..=run as u64).product::<u64>();
                    run = 1;
                }
            }
            aut
        }
        fn rec_canon(t: &DiTemplate, v: u8, parent: Option<u8>, mask: VertMask) -> String {
            let mut kids: Vec<String> = t
                .base
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| Some(u) != parent && mask & (1 << u) != 0)
                .map(|u| {
                    let marker = if t.points_from(v, u) { '>' } else { '<' };
                    format!("{marker}{}", rec_canon(t, u, Some(v), mask))
                })
                .collect();
            kids.sort_unstable();
            format!("{:x}({})", t.base.label(v), kids.concat())
        }

        let full = crate::canon::full_mask(self.size());
        let centers = self.base.tree_centers();
        match centers.as_slice() {
            [c] => rooted_aut(self, *c, None, full),
            [c1, c2] => {
                let m1 = crate::canon::split_mask(&self.base, *c1, *c2);
                let m2 = crate::canon::split_mask(&self.base, *c2, *c1);
                let a = rooted_aut_masked(self, *c1, m1) * rooted_aut_masked(self, *c2, m2);
                // Swapping the halves maps the central arc c1->c2 onto
                // c2->c1; direction is preserved only if the encodings seen
                // *from each side of the arc* match, including the arc
                // marker as seen from each center.
                let from1 = format!(
                    "{}{}",
                    if self.points_from(*c1, *c2) { '>' } else { '<' },
                    self.rooted_canon(*c1, m1)
                );
                let from2 = format!(
                    "{}{}",
                    if self.points_from(*c2, *c1) { '>' } else { '<' },
                    self.rooted_canon(*c2, m2)
                );
                if from1 == from2 {
                    2 * a
                } else {
                    a
                }
            }
            _ => unreachable!("trees have one or two centers"),
        }
    }
}

fn rooted_aut_masked(t: &DiTemplate, root: u8, mask: VertMask) -> u64 {
    // Helper calling the inner recursion of `automorphisms` on a mask.
    fn rec(t: &DiTemplate, v: u8, parent: Option<u8>, mask: VertMask) -> u64 {
        let kids: Vec<u8> = t
            .underlying()
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| Some(u) != parent && mask & (1 << u) != 0)
            .collect();
        let mut aut = 1u64;
        let mut canons: Vec<String> = Vec::with_capacity(kids.len());
        for &u in &kids {
            aut *= rec(t, u, Some(v), mask);
            let marker = if t.points_from(v, u) { '>' } else { '<' };
            // Canonical string of u's subtree within the mask.
            let sub_mask = sub_mask_below(t.underlying(), u, v, mask);
            canons.push(format!("{marker}{}", t.rooted_canon(u, sub_mask)));
        }
        canons.sort_unstable();
        let mut run = 1usize;
        for i in 1..=canons.len() {
            if i < canons.len() && canons[i] == canons[i - 1] {
                run += 1;
            } else {
                aut *= (1..=run as u64).product::<u64>();
                run = 1;
            }
        }
        aut
    }
    rec(t, root, None, mask)
}

fn sub_mask_below(t: &Template, child: u8, parent: u8, mask: VertMask) -> VertMask {
    let mut m: VertMask = 1 << child;
    let mut stack = vec![(child, parent)];
    while let Some((v, p)) = stack.pop() {
        for &u in t.neighbors(v) {
            if u != p && mask & (1 << u) != 0 && m & (1 << u) == 0 {
                m |= 1 << u;
                stack.push((u, v));
            }
        }
    }
    m
}

/// Brute-force directed automorphism count (test oracle, <= 10 vertices).
pub fn brute_force_directed_automorphisms(t: &DiTemplate) -> u64 {
    let n = t.size();
    assert!(n <= 10);
    let mut perm: Vec<u8> = (0..n as u8).collect();
    let mut count = 0u64;
    fn permute(arr: &mut Vec<u8>, i: usize, visit: &mut impl FnMut(&[u8])) {
        if i == arr.len() {
            visit(arr);
            return;
        }
        for j in i..arr.len() {
            arr.swap(i, j);
            permute(arr, i + 1, visit);
            arr.swap(i, j);
        }
    }
    permute(&mut perm, 0, &mut |p| {
        for v in 0..n as u8 {
            if t.underlying().label(v) != t.underlying().label(p[v as usize]) {
                return;
            }
        }
        for &(u, v) in t.arcs() {
            let (pu, pv) = (p[u as usize], p[v as usize]);
            if !t.underlying().has_edge(pu, pv) || !t.points_from(pu, pv) {
                return;
            }
        }
        count += 1;
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::full_mask;

    #[test]
    fn directed_path_has_no_flip() {
        // The undirected P3 has 2 automorphisms; directing it kills the flip.
        assert_eq!(DiTemplate::directed_path(3).automorphisms(), 1);
        assert_eq!(DiTemplate::directed_path(5).automorphisms(), 1);
        assert_eq!(DiTemplate::directed_path(4).automorphisms(), 1);
    }

    #[test]
    fn stars_keep_leaf_symmetry() {
        assert_eq!(DiTemplate::out_star(5).automorphisms(), 24);
        assert_eq!(DiTemplate::in_star(5).automorphisms(), 24);
        // Mixed star: 2 out-leaves + 2 in-leaves -> 2! * 2!.
        let mixed = DiTemplate::from_arcs(5, &[(0, 1), (0, 2), (3, 0), (4, 0)]).unwrap();
        assert_eq!(mixed.automorphisms(), 4);
    }

    #[test]
    fn automorphisms_match_brute_force() {
        let cases = vec![
            DiTemplate::directed_path(4),
            DiTemplate::directed_path(6),
            DiTemplate::out_star(4),
            DiTemplate::in_star(6),
            DiTemplate::from_arcs(5, &[(0, 1), (0, 2), (3, 0), (4, 0)]).unwrap(),
            // Bicentral symmetric: 0->1 center arc, symmetric out-legs.
            DiTemplate::from_arcs(6, &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)]).unwrap(),
            // Anti-symmetric double star (arcs point inward).
            DiTemplate::from_arcs(6, &[(0, 1), (2, 0), (3, 0), (1, 4), (1, 5)]).unwrap(),
        ];
        for t in cases {
            assert_eq!(
                t.automorphisms(),
                brute_force_directed_automorphisms(&t),
                "mismatch for {t:?}"
            );
        }
    }

    #[test]
    fn canon_distinguishes_orientations() {
        let out = DiTemplate::out_star(4);
        let inw = DiTemplate::in_star(4);
        // Same undirected shape, different directed canonical form.
        assert_eq!(out.underlying().edges(), inw.underlying().edges());
        assert_ne!(
            out.rooted_canon(0, full_mask(4)),
            inw.rooted_canon(0, full_mask(4))
        );
    }

    #[test]
    fn points_from_is_consistent() {
        let t = DiTemplate::directed_path(3);
        assert!(t.points_from(0, 1));
        assert!(!t.points_from(1, 0));
        assert!(t.points_from(1, 2));
    }

    #[test]
    #[should_panic]
    fn points_from_rejects_non_edges() {
        DiTemplate::directed_path(3).points_from(0, 2);
    }

    #[test]
    fn rejects_non_tree() {
        assert!(DiTemplate::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]).is_err());
    }
}
