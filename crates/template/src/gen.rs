//! Generation of all free trees of a given size.
//!
//! Motif finding (paper §V-E) counts every non-isomorphic tree topology of
//! size k: 11 topologies for k = 7, 106 for k = 10, 551 for k = 12. We
//! enumerate rooted trees with the Beyer–Hedetniemi level-sequence
//! successor algorithm (constant amortized time) and deduplicate to free
//! trees with the AHU free canonical form — exact and fast for k <= 14.

use crate::canon::free_canon;
use crate::tree::Template;
use std::collections::HashSet;

/// Iterator over all canonical rooted-tree level sequences on `n` vertices
/// (Beyer–Hedetniemi, 1980). A level sequence assigns each vertex its depth
/// (root = 1) in preorder; the canonical sequence is the lexicographically
/// largest over all orderings of children.
struct LevelSequences {
    levels: Vec<usize>,
    first: bool,
    done: bool,
}

impl LevelSequences {
    fn new(n: usize) -> Self {
        Self {
            levels: (1..=n).collect(),
            first: true,
            done: n == 0,
        }
    }

    fn next_seq(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            return Some(&self.levels);
        }
        let n = self.levels.len();
        // Find rightmost position p (> 0) with level > 2.
        let mut p = n;
        while p > 0 && self.levels[p - 1] <= 2 {
            p -= 1;
        }
        if p == 0 {
            self.done = true;
            return None;
        }
        let p = p - 1; // index of that position
                       // q: rightmost index < p whose level is levels[p] - 1.
        let mut q = p;
        while self.levels[q] != self.levels[p] - 1 {
            q -= 1;
        }
        let shift = p - q;
        for i in p..n {
            self.levels[i] = self.levels[i - shift];
        }
        Some(&self.levels)
    }
}

/// Converts a level sequence to a tree template (vertex 0 is the root).
fn tree_from_levels(levels: &[usize]) -> Template {
    let n = levels.len();
    let mut edges: Vec<(u8, u8)> = Vec::with_capacity(n.saturating_sub(1));
    // stack[d] = last vertex seen at depth d+1.
    let mut stack: Vec<u8> = Vec::new();
    for (v, &d) in levels.iter().enumerate() {
        stack.truncate(d - 1);
        if let Some(&parent) = stack.last() {
            edges.push((parent, v as u8));
        }
        stack.push(v as u8);
    }
    Template::tree_from_edges(n, &edges).expect("level sequence encodes a tree")
}

/// All rooted trees on `n` vertices (as templates rooted at vertex 0).
pub fn all_rooted_trees(n: usize) -> Vec<Template> {
    let mut out = Vec::new();
    let mut seqs = LevelSequences::new(n);
    while let Some(s) = seqs.next_seq() {
        out.push(tree_from_levels(s));
    }
    out
}

/// All free (unrooted, non-isomorphic) trees on `n` vertices, in a
/// deterministic order. Matches OEIS A000055: 1, 1, 1, 2, 3, 6, 11, 23,
/// 47, 106, 235, 551 for n = 1..12.
pub fn all_free_trees(n: usize) -> Vec<Template> {
    if n == 0 {
        return Vec::new();
    }
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    let mut seqs = LevelSequences::new(n);
    while let Some(s) = seqs.next_seq() {
        let t = tree_from_levels(s);
        if seen.insert(free_canon(&t)) {
            out.push(t);
        }
    }
    out
}

/// Number of rooted trees on `n` vertices (OEIS A000081 for n >= 1).
pub fn count_rooted_trees(n: usize) -> usize {
    let mut c = 0;
    let mut seqs = LevelSequences::new(n);
    while seqs.next_seq().is_some() {
        c += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automorphism::automorphisms;

    /// OEIS A000081: rooted trees.
    #[test]
    fn rooted_tree_counts() {
        let expect = [1usize, 1, 2, 4, 9, 20, 48, 115, 286, 719];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(count_rooted_trees(i + 1), e, "n = {}", i + 1);
        }
    }

    /// OEIS A000055: free trees — the paper's 11 / 106 / 551 topology
    /// counts for k = 7 / 10 / 12 (§IV-B).
    #[test]
    fn free_tree_counts_match_paper() {
        let expect = [1usize, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551];
        for (i, &e) in expect.iter().enumerate() {
            let n = i + 1;
            if n <= 10 {
                assert_eq!(all_free_trees(n).len(), e, "n = {n}");
            }
        }
        // The two large paper sizes (slower, still well under a second).
        assert_eq!(all_free_trees(11).len(), 235);
        assert_eq!(all_free_trees(12).len(), 551);
    }

    #[test]
    fn generated_trees_are_valid_and_distinct() {
        let trees = all_free_trees(8);
        assert_eq!(trees.len(), 23);
        let mut canons = HashSet::new();
        for t in &trees {
            assert!(t.is_tree());
            assert_eq!(t.size(), 8);
            assert!(canons.insert(free_canon(t)));
        }
    }

    #[test]
    fn includes_path_and_star() {
        let trees = all_free_trees(7);
        let path = free_canon(&Template::path(7));
        let star = free_canon(&Template::star(7));
        let canons: HashSet<String> = trees.iter().map(free_canon).collect();
        assert!(canons.contains(&path));
        assert!(canons.contains(&star));
    }

    #[test]
    fn cayley_check_via_automorphisms() {
        // Sum over free trees of n! / |Aut(T)| = number of labeled trees
        // = n^(n-2) (Cayley's formula). Strong cross-validation of both the
        // generator and the automorphism counter.
        for n in 3..=9usize {
            let nf: u64 = (1..=n as u64).product();
            let labeled: u64 = all_free_trees(n)
                .iter()
                .map(|t| nf / automorphisms(t))
                .sum();
            let cayley = (n as u64).pow(n as u32 - 2);
            assert_eq!(labeled, cayley, "n = {n}");
        }
    }

    #[test]
    fn deterministic_order() {
        let a: Vec<String> = all_free_trees(9).iter().map(free_canon).collect();
        let b: Vec<String> = all_free_trees(9).iter().map(free_canon).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_sizes() {
        assert!(all_free_trees(0).is_empty());
        assert_eq!(all_free_trees(1).len(), 1);
        assert_eq!(all_free_trees(1)[0].size(), 1);
        assert_eq!(all_free_trees(2).len(), 1);
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    /// Beyond the paper's sizes: A000055 continues 1301, 3159 for
    /// n = 13, 14 — the generator must stay exact as templates grow
    /// (MAX_TEMPLATE_SIZE headroom).
    #[test]
    fn free_tree_counts_beyond_paper_sizes() {
        assert_eq!(all_free_trees(13).len(), 1301);
        assert_eq!(all_free_trees(14).len(), 3159);
    }

    /// Every generated tree of size n partitions under both strategies —
    /// the motif pipeline depends on this never failing.
    #[test]
    fn all_size8_trees_partition() {
        use crate::partition::{PartitionStrategy, PartitionTree};
        for t in all_free_trees(8) {
            for s in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
                PartitionTree::build(&t, s).expect("trees always partition");
            }
        }
    }
}
