//! Template partitioning into active/passive subtemplate trees (§III-D).
//!
//! A subtemplate is a connected, rooted piece of the template (a vertex
//! mask plus a root). Cutting a single edge `(r, u)` incident to the root
//! of a subtemplate produces the **active child** (the piece containing
//! `r`, still rooted at `r`) and the **passive child** (the piece
//! containing `u`, rooted at `u`). Recursing down to single vertices (or
//! triangles, for the tree-like class) yields the *partition tree* that
//! drives the bottom-up dynamic program.
//!
//! Two of the paper's heuristics are implemented as [`PartitionStrategy`]:
//!
//! * **One-at-a-time** roots the template at a leaf and always cuts the
//!   edge to the largest child subtree, so the active child shrinks to a
//!   single vertex as fast as possible. Single-vertex active children let
//!   the DP skip all but one color set per graph vertex (the paper's
//!   `(k-1)/k` work reduction).
//! * **Balanced** roots at a tree center and cuts so the two children are
//!   as even as possible, which minimizes the dominant
//!   `C(k, |S|) * C(|S|, |a|)` table terms for large templates.
//!
//! Independently of strategy, subtemplates are deduplicated by rooted
//! canonical form: automorphic subtemplates (e.g. the three legs of U7-2)
//! share a single canonical class and therefore a single DP table — the
//! paper's rooted-symmetry optimization.

use crate::canon::VertMask;
use crate::tree::{Template, TemplateKind};
use std::collections::HashMap;

/// Heuristic used to choose cut edges and the template root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// Root at a leaf; peel the largest child subtree first (paper default).
    OneAtATime,
    /// Root at a tree center; split as evenly as possible.
    Balanced,
}

/// How a subtemplate bottoms out or splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A single template vertex (the DP reads its count off the coloring).
    Vertex,
    /// A triangle rooted at `root`; `partners` are the two other corners.
    Triangle {
        /// The two non-root corners of the triangle.
        partners: [u8; 2],
    },
    /// An internal node produced by one edge cut.
    Cut {
        /// Index of the active child (contains this node's root).
        active: u32,
        /// Index of the passive child (rooted at the far cut endpoint).
        passive: u32,
    },
}

/// One subtemplate in the partition tree.
#[derive(Debug, Clone)]
pub struct SubNode {
    /// Template vertex acting as this subtemplate's root.
    pub root: u8,
    /// Template vertices included in this subtemplate.
    pub mask: VertMask,
    /// Number of vertices (`mask.count_ones()`).
    pub size: u8,
    /// Base case or cut structure.
    pub kind: NodeKind,
    /// Canonical-class id; automorphic subtemplates share one id and hence
    /// one DP table.
    pub canon_id: u32,
}

/// Partitioning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// No root admits a full partition (e.g. a triangle with pendant trees
    /// on two different corners).
    NoValidRoot,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoValidRoot => write!(
                f,
                "template cannot be partitioned by single edge cuts from any root \
                 (triangles may carry pendant subtrees on at most one corner)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// The full partition tree of a template.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    nodes: Vec<SubNode>,
    unique_order: Vec<u32>,
    num_classes: usize,
    strategy: PartitionStrategy,
    template_root: u8,
}

impl PartitionTree {
    /// Partitions `t` with the given strategy, trying strategy-preferred
    /// roots first and falling back to every root.
    pub fn build(t: &Template, strategy: PartitionStrategy) -> Result<Self, PartitionError> {
        let n = t.size() as u8;
        let mut candidates: Vec<u8> = Vec::with_capacity(n as usize);
        match strategy {
            PartitionStrategy::OneAtATime => {
                candidates.extend((0..n).filter(|&v| t.degree(v) <= 1));
            }
            PartitionStrategy::Balanced => {
                if t.kind() == TemplateKind::Tree {
                    candidates.extend(t.tree_centers());
                }
            }
        }
        candidates.extend(0..n);
        candidates.dedup();
        let mut tried = vec![false; n as usize];
        for root in candidates {
            if std::mem::replace(&mut tried[root as usize], true) {
                continue;
            }
            if let Some(tree) = Builder::try_build(t, root, strategy) {
                return Ok(tree);
            }
        }
        Err(PartitionError::NoValidRoot)
    }

    /// Partitions `t` with the template root forced to `root` — required
    /// by the graphlet-degree experiments, where per-vertex counts must be
    /// rooted at a specific orbit vertex.
    pub fn build_with_root(
        t: &Template,
        root: u8,
        strategy: PartitionStrategy,
    ) -> Result<Self, PartitionError> {
        assert!((root as usize) < t.size(), "root out of range");
        Builder::try_build(t, root, strategy).ok_or(PartitionError::NoValidRoot)
    }

    /// Converts to a tree without canonical-class sharing: every node gets
    /// its own class (and therefore its own DP table). Required when table
    /// contents depend on more than the rooted shape — e.g. directed
    /// templates, where two undirected-automorphic subtrees can carry
    /// different arc orientations.
    pub fn into_unshared(mut self) -> Self {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.canon_id = i as u32;
        }
        self.num_classes = self.nodes.len();
        self.unique_order = compute_unique_order(&self.nodes, self.num_classes);
        self
    }

    /// All subtemplate nodes; index 0 is the full template.
    pub fn nodes(&self) -> &[SubNode] {
        &self.nodes
    }

    /// The full-template node.
    pub fn root(&self) -> &SubNode {
        &self.nodes[0]
    }

    /// The template vertex chosen as the root of the whole template.
    pub fn template_root(&self) -> u8 {
        self.template_root
    }

    /// Bottom-up computation order over *representative* nodes: exactly one
    /// node per canonical class, children always before parents. This is
    /// "the order in which the subtemplates are accessed" from the paper,
    /// chosen to minimize live tables.
    pub fn unique_order(&self) -> &[u32] {
        &self.unique_order
    }

    /// Number of canonical subtemplate classes (= number of DP tables that
    /// ever get built).
    pub fn num_canon_classes(&self) -> usize {
        self.num_classes
    }

    /// The strategy this tree was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// For each canonical class, how many times its table is read as a
    /// child of a representative internal node, plus one for the root class
    /// (whose table is read by the final summation). Used by the engine to
    /// free tables as soon as all their consumers are done — the paper's
    /// observation that at most a handful of tables is ever live.
    pub fn class_use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_classes];
        for &idx in &self.unique_order {
            if let NodeKind::Cut { active, passive } = self.nodes[idx as usize].kind {
                counts[self.nodes[active as usize].canon_id as usize] += 1;
                counts[self.nodes[passive as usize].canon_id as usize] += 1;
            }
        }
        counts[self.root().canon_id as usize] += 1;
        counts
    }

    /// Cost model of the DP loops (paper §III-D): the inner loops of a
    /// subtemplate of size `h` with active child of size `a` touch
    /// `C(k, h) * C(h, a)` table cells per (vertex, neighbor) pair. The sum
    /// over unique internal nodes predicts relative strategy cost.
    pub fn estimated_ops(&self, k: usize) -> u128 {
        use fascia_combin_choose as choose;
        let mut total: u128 = 0;
        for &idx in &self.unique_order {
            let node = &self.nodes[idx as usize];
            if let NodeKind::Cut { active, .. } = node.kind {
                let h = node.size as usize;
                let a = self.nodes[active as usize].size as usize;
                total += (choose(k, h) as u128) * (choose(h, a) as u128);
            }
        }
        total
    }

    /// Peak number of simultaneously live tables under the engine's
    /// free-when-done policy (diagnostic; the paper reports "at most four"
    /// for its ordering).
    pub fn peak_live_tables(&self) -> usize {
        let mut uses = self.class_use_counts();
        let mut live: Vec<bool> = vec![false; self.num_classes];
        let mut peak = 0usize;
        for &idx in &self.unique_order {
            let node = &self.nodes[idx as usize];
            live[node.canon_id as usize] = true;
            peak = peak.max(live.iter().filter(|&&l| l).count());
            if let NodeKind::Cut { active, passive } = node.kind {
                for child in [active, passive] {
                    let cid = self.nodes[child as usize].canon_id as usize;
                    uses[cid] -= 1;
                    if uses[cid] == 0 {
                        live[cid] = false;
                    }
                }
            }
        }
        peak
    }
}

/// Local binomial (avoids a dependency cycle with `fascia-combin`; exact
/// for the tiny template sizes involved).
fn fascia_combin_choose(n: usize, r: usize) -> u64 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc = 1u64;
    for i in 0..r {
        acc = acc * (n - i) as u64 / (i + 1) as u64;
    }
    acc
}

struct Builder<'a> {
    t: &'a Template,
    strategy: PartitionStrategy,
    nodes: Vec<SubNode>,
    canon_ids: HashMap<String, u32>,
    /// Memo of (root, mask) -> node index, so repeated subtemplates are a
    /// single node.
    memo: HashMap<(u8, VertMask), u32>,
}

impl<'a> Builder<'a> {
    fn try_build(t: &'a Template, root: u8, strategy: PartitionStrategy) -> Option<PartitionTree> {
        let mut b = Builder {
            t,
            strategy,
            nodes: Vec::new(),
            canon_ids: HashMap::new(),
            memo: HashMap::new(),
        };
        let full: VertMask = crate::canon::full_mask(t.size());
        // Reserve index 0 for the root node by building it first.
        let root_idx = b.build_node(root, full)?;
        // build_node is recursive post-order, so the root is the LAST node;
        // rotate so the root sits at index 0 for a stable public contract.
        let mut nodes = b.nodes;
        if root_idx as usize != 0 {
            nodes.swap(0, root_idx as usize);
            // Fix child indices after the swap.
            for node in &mut nodes {
                if let NodeKind::Cut { active, passive } = &mut node.kind {
                    for c in [active, passive] {
                        if *c == 0 {
                            *c = root_idx;
                        } else if *c == root_idx {
                            *c = 0;
                        }
                    }
                }
            }
        }
        let num_classes = b.canon_ids.len();
        let unique_order = compute_unique_order(&nodes, num_classes);
        Some(PartitionTree {
            nodes,
            unique_order,
            num_classes,
            strategy,
            template_root: root,
        })
    }

    fn build_node(&mut self, root: u8, mask: VertMask) -> Option<u32> {
        if let Some(&idx) = self.memo.get(&(root, mask)) {
            return Some(idx);
        }
        let size = mask.count_ones() as u8;
        let kind = if size == 1 {
            NodeKind::Vertex
        } else if let Some(partners) = self.as_triangle(root, mask) {
            NodeKind::Triangle { partners }
        } else {
            // Cut a non-triangle edge at the root.
            let cut_to = self.choose_cut(root, mask)?;
            let passive_mask = component_without(self.t, cut_to, root, mask);
            let active_mask = mask & !passive_mask;
            let active = self.build_node(root, active_mask)?;
            let passive = self.build_node(cut_to, passive_mask)?;
            NodeKind::Cut { active, passive }
        };
        let canon = self.sub_canon(root, mask);
        let next_id = self.canon_ids.len() as u32;
        let canon_id = *self.canon_ids.entry(canon).or_insert(next_id);
        let idx = self.nodes.len() as u32;
        self.nodes.push(SubNode {
            root,
            mask,
            size,
            kind,
            canon_id,
        });
        self.memo.insert((root, mask), idx);
        Some(idx)
    }

    /// If the subtemplate is exactly a triangle containing `root`, returns
    /// the two partner vertices.
    fn as_triangle(&self, root: u8, mask: VertMask) -> Option<[u8; 2]> {
        if mask.count_ones() != 3 {
            return None;
        }
        let tri = self.t.triangles().iter().find(|tri| tri.contains(&root))?;
        let tri_mask: VertMask = tri.iter().fold(0, |m, &v| m | (1 << v));
        if tri_mask != mask {
            return None;
        }
        let partners: Vec<u8> = tri.iter().copied().filter(|&v| v != root).collect();
        Some([partners[0], partners[1]])
    }

    /// Chooses the neighbor `u` such that cutting `(root, u)` follows the
    /// strategy. Only bridge (non-triangle) edges can be cut.
    fn choose_cut(&self, root: u8, mask: VertMask) -> Option<u8> {
        let h = mask.count_ones() as i64;
        let mut best: Option<(i64, u8)> = None;
        for &u in self.t.neighbors(root) {
            if mask & (1 << u) == 0 || self.is_triangle_edge(root, u) {
                continue;
            }
            let psize = component_without(self.t, u, root, mask).count_ones() as i64;
            let score = match self.strategy {
                // Largest passive first -> active shrinks fastest.
                PartitionStrategy::OneAtATime => -psize,
                // Most even split.
                PartitionStrategy::Balanced => (h - 2 * psize).abs(),
            };
            if best.is_none_or(|(s, bu)| score < s || (score == s && u < bu)) {
                best = Some((score, u));
            }
        }
        best.map(|(_, u)| u)
    }

    fn is_triangle_edge(&self, u: u8, v: u8) -> bool {
        self.t
            .triangles()
            .iter()
            .any(|tri| tri.contains(&u) && tri.contains(&v))
    }

    /// Rooted canonical string of the subtemplate (labels included;
    /// triangles encoded as unordered partner pairs).
    fn sub_canon(&self, root: u8, mask: VertMask) -> String {
        fn rec(t: &Template, v: u8, mask: VertMask, visited: &mut VertMask) -> String {
            *visited |= 1 << v;
            let mut parts: Vec<String> = Vec::new();
            if let Some(tri) = t.triangles().iter().find(|tri| tri.contains(&v)) {
                let others: Vec<u8> = tri.iter().copied().filter(|&x| x != v).collect();
                let both_in = others
                    .iter()
                    .all(|&x| mask & (1 << x) != 0 && *visited & (1 << x) == 0);
                if both_in {
                    let mut ls: Vec<String> = others
                        .iter()
                        .map(|&x| {
                            *visited |= 1 << x;
                            format!("{:x}", t.label(x))
                        })
                        .collect();
                    ls.sort_unstable();
                    parts.push(format!("T[{}]", ls.join(",")));
                }
            }
            let kids: Vec<u8> = t
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| mask & (1 << u) != 0 && *visited & (1 << u) == 0)
                .collect();
            for u in kids {
                if *visited & (1 << u) != 0 {
                    continue;
                }
                parts.push(rec(t, u, mask, visited));
            }
            parts.sort_unstable();
            format!("{:x}({})", t.label(v), parts.concat())
        }
        let mut visited: VertMask = 0;
        rec(self.t, root, mask, &mut visited)
    }
}

/// Vertices reachable from `from` within `mask` without using the edge
/// `(from, avoid)`.
fn component_without(t: &Template, from: u8, avoid: u8, mask: VertMask) -> VertMask {
    let mut m: VertMask = 1 << from;
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for &u in t.neighbors(v) {
            if mask & (1 << u) == 0 || m & (1 << u) != 0 {
                continue;
            }
            if v == from && u == avoid {
                continue;
            }
            m |= 1 << u;
            stack.push(u);
        }
    }
    m
}

/// Post-order walk emitting one representative node per canonical class,
/// children before parents.
fn compute_unique_order(nodes: &[SubNode], num_classes: usize) -> Vec<u32> {
    let mut emitted = vec![false; num_classes];
    let mut order = Vec::with_capacity(num_classes);
    fn visit(nodes: &[SubNode], idx: u32, emitted: &mut [bool], order: &mut Vec<u32>) {
        let node = &nodes[idx as usize];
        if emitted[node.canon_id as usize] {
            return;
        }
        // Mark before recursion would be wrong (children must precede),
        // but cycles are impossible in a partition tree.
        if let NodeKind::Cut { active, passive } = node.kind {
            visit(nodes, active, emitted, order);
            visit(nodes, passive, emitted, order);
        }
        if !emitted[node.canon_id as usize] {
            emitted[node.canon_id as usize] = true;
            order.push(idx);
        }
    }
    visit(nodes, 0, &mut emitted, &mut order);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedTemplate;

    fn check_invariants(t: &Template, pt: &PartitionTree) {
        let full = crate::canon::full_mask(t.size());
        assert_eq!(pt.root().mask, full, "root spans the template");
        // Every cut node's children partition its mask and preserve roots.
        for node in pt.nodes() {
            assert_eq!(node.size as u32, node.mask.count_ones());
            assert!(node.mask & (1 << node.root) != 0, "root inside mask");
            match node.kind {
                NodeKind::Vertex => assert_eq!(node.size, 1),
                NodeKind::Triangle { partners } => {
                    assert_eq!(node.size, 3);
                    for p in partners {
                        assert!(t.has_edge(node.root, p));
                    }
                    assert!(t.has_edge(partners[0], partners[1]));
                }
                NodeKind::Cut { active, passive } => {
                    let a = &pt.nodes()[active as usize];
                    let p = &pt.nodes()[passive as usize];
                    assert_eq!(a.mask | p.mask, node.mask, "children cover parent");
                    assert_eq!(a.mask & p.mask, 0, "children disjoint");
                    assert_eq!(a.root, node.root, "active keeps the root");
                    assert!(
                        t.has_edge(node.root, p.root),
                        "cut edge joins the two roots"
                    );
                }
            }
        }
        // unique_order: children before parents; one node per class.
        let mut seen = vec![false; pt.num_canon_classes()];
        for &idx in pt.unique_order() {
            let node = &pt.nodes()[idx as usize];
            if let NodeKind::Cut { active, passive } = node.kind {
                for c in [active, passive] {
                    let cid = pt.nodes()[c as usize].canon_id as usize;
                    assert!(seen[cid], "child class emitted before parent");
                }
            }
            assert!(!seen[node.canon_id as usize], "class emitted once");
            seen[node.canon_id as usize] = true;
        }
        assert!(seen[pt.root().canon_id as usize], "root class emitted");
    }

    #[test]
    fn all_named_templates_partition_under_both_strategies() {
        for named in NamedTemplate::all() {
            let t = named.template();
            for strategy in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
                let pt = PartitionTree::build(&t, strategy)
                    .unwrap_or_else(|e| panic!("{}: {e}", named.name()));
                check_invariants(&t, &pt);
            }
        }
    }

    #[test]
    fn path_one_at_a_time_peels_single_vertices() {
        let t = Template::path(6);
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        // Root must be an endpoint and every active child is a single vertex.
        assert!(t.degree(pt.template_root()) == 1);
        for node in pt.nodes() {
            if let NodeKind::Cut { active, .. } = node.kind {
                assert_eq!(pt.nodes()[active as usize].size, 1);
            }
        }
    }

    #[test]
    fn balanced_path_splits_evenly_at_top() {
        let t = Template::path(8);
        let pt = PartitionTree::build(&t, PartitionStrategy::Balanced).unwrap();
        if let NodeKind::Cut { active, passive } = pt.root().kind {
            let a = pt.nodes()[active as usize].size;
            let p = pt.nodes()[passive as usize].size;
            assert_eq!(a + p, 8);
            assert!((a as i32 - p as i32).abs() <= 1, "a={a} p={p}");
        } else {
            panic!("8-path root must be a cut node");
        }
    }

    #[test]
    fn symmetry_sharing_on_u7_2() {
        // Three automorphic legs: classes < nodes.
        let t = NamedTemplate::U7_2.template();
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert!(
            pt.num_canon_classes() < pt.nodes().len(),
            "automorphic legs should share classes: {} classes / {} nodes",
            pt.num_canon_classes(),
            pt.nodes().len()
        );
    }

    #[test]
    fn triangle_partition_is_base_case() {
        let t = Template::triangle();
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert_eq!(pt.nodes().len(), 1);
        assert!(matches!(pt.root().kind, NodeKind::Triangle { .. }));
    }

    #[test]
    fn triangle_with_pendant_partitions() {
        let t = Template::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4)]).unwrap();
        for s in [PartitionStrategy::OneAtATime, PartitionStrategy::Balanced] {
            let pt = PartitionTree::build(&t, s).unwrap();
            check_invariants(&t, &pt);
            assert!(pt
                .nodes()
                .iter()
                .any(|n| matches!(n.kind, NodeKind::Triangle { .. })));
        }
    }

    #[test]
    fn triangle_with_two_pendant_corners_fails() {
        // Pendants on two different corners: unsupported per module docs.
        let t = Template::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)]).unwrap();
        assert_eq!(
            PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap_err(),
            PartitionError::NoValidRoot
        );
    }

    #[test]
    fn single_vertex_template_partitions() {
        let t = Template::from_edges(1, &[]).unwrap();
        let pt = PartitionTree::build(&t, PartitionStrategy::Balanced).unwrap();
        assert_eq!(pt.nodes().len(), 1);
        assert!(matches!(pt.root().kind, NodeKind::Vertex));
        assert_eq!(pt.unique_order(), &[0]);
    }

    #[test]
    fn cost_model_prefers_one_at_a_time_on_u12_2() {
        // The paper observes one-at-a-time is faster in practice because of
        // the single-color-set active-child optimization; the raw op model
        // just has to be finite and strategy-dependent here.
        let t = NamedTemplate::U12_2.template();
        let one = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        let bal = PartitionTree::build(&t, PartitionStrategy::Balanced).unwrap();
        assert!(one.estimated_ops(12) > 0);
        assert!(bal.estimated_ops(12) > 0);
    }

    #[test]
    fn peak_live_tables_is_small() {
        for named in NamedTemplate::all() {
            let t = named.template();
            let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
            // The paper reports <= 4 under its hand-tuned ordering; our
            // post-order hits 5 on the bushiest template (U12-2).
            assert!(
                pt.peak_live_tables() <= 5,
                "{}: peak {} tables",
                named.name(),
                pt.peak_live_tables()
            );
        }
    }

    #[test]
    fn class_use_counts_cover_order() {
        let t = NamedTemplate::U10_2.template();
        let pt = PartitionTree::build(&t, PartitionStrategy::Balanced).unwrap();
        let counts = pt.class_use_counts();
        assert_eq!(counts.len(), pt.num_canon_classes());
        // The root class is used exactly once (the final sum), unless it
        // also appears as a child somewhere (impossible: it is the largest).
        assert_eq!(counts[pt.root().canon_id as usize], 1);
        // Every emitted class is used at least once.
        for &idx in pt.unique_order() {
            assert!(counts[pt.nodes()[idx as usize].canon_id as usize] >= 1);
        }
    }

    #[test]
    fn labeled_legs_do_not_share_tables() {
        // U7-2 with distinct labels on each leg: no class sharing between
        // the legs.
        let t = Template::spider(&[2, 2, 2])
            .with_labels(vec![0, 1, 1, 2, 2, 3, 3])
            .unwrap();
        let pt = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        let unlabeled =
            PartitionTree::build(&Template::spider(&[2, 2, 2]), PartitionStrategy::OneAtATime)
                .unwrap();
        assert!(pt.num_canon_classes() > unlabeled.num_canon_classes());
    }

    #[test]
    fn deterministic_build() {
        let t = NamedTemplate::U10_2.template();
        let a = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        let b = PartitionTree::build(&t, PartitionStrategy::OneAtATime).unwrap();
        assert_eq!(a.nodes().len(), b.nodes().len());
        assert_eq!(a.unique_order(), b.unique_order());
    }
}
