//! AHU canonical forms for rooted and free trees.
//!
//! The partitioner uses rooted canonical strings to recognize automorphic
//! subtemplates (the paper's rooted-symmetry optimization: automorphic
//! children share one DP table). The free-tree generator uses free
//! canonical forms to deduplicate topologies.
//!
//! Encodings include vertex labels, so labeled templates only share tables
//! between label-preserving-isomorphic subtrees.

use crate::tree::Template;

/// Bitmask over template vertices (templates have at most 20 vertices).
pub type VertMask = u32;

/// Mask with all `n` template vertices set.
#[inline]
pub fn full_mask(n: usize) -> VertMask {
    if n >= 32 {
        panic!("template too large for mask");
    }
    ((1u64 << n) - 1) as VertMask
}

#[inline]
fn in_mask(mask: VertMask, v: u8) -> bool {
    mask & (1 << v) != 0
}

/// AHU canonical string of the subtree of `t` induced by `mask`, rooted at
/// `root`. The induced subgraph must be a tree containing `root`.
///
/// Encoding: `l(c1c2...)` where `l` is the vertex label rendered in hex and
/// `c1 <= c2 <= ...` are the children's canonical strings sorted.
pub fn rooted_canon(t: &Template, root: u8, mask: VertMask) -> String {
    debug_assert!(in_mask(mask, root), "root must be inside the mask");
    fn rec(t: &Template, v: u8, parent: Option<u8>, mask: VertMask) -> String {
        let mut kids: Vec<String> = t
            .neighbors(v)
            .iter()
            .filter(|&&u| Some(u) != parent && in_mask(mask, u))
            .map(|&u| rec(t, u, Some(v), mask))
            .collect();
        kids.sort_unstable();
        let mut s = String::with_capacity(4 + kids.iter().map(String::len).sum::<usize>());
        s.push_str(&format!("{:x}", t.label(v)));
        s.push('(');
        for k in kids {
            s.push_str(&k);
        }
        s.push(')');
        s
    }
    rec(t, root, None, mask)
}

/// Canonical string of a free tree template: root at the tree center (or,
/// for bicentral trees, take the lexicographic minimum over both centers
/// of the edge-rooted encodings).
///
/// Two tree templates are isomorphic (respecting labels) iff their free
/// canonical strings are equal.
///
/// # Panics
/// Panics if `t` is not a tree.
pub fn free_canon(t: &Template) -> String {
    assert!(t.is_tree(), "free canonical form is defined for trees");
    let centers = t.tree_centers();
    let mask = full_mask(t.size());
    match centers.as_slice() {
        [c] => rooted_canon(t, *c, mask),
        [c1, c2] => {
            // Root at the central edge: encode both sides, order-normalize.
            let side = |a: u8, b: u8| {
                // Subtree of `a` with the edge (a, b) removed.
                let m = split_mask(t, a, b);
                rooted_canon(t, a, m)
            };
            let s1 = side(*c1, *c2);
            let s2 = side(*c2, *c1);
            if s1 <= s2 {
                format!("[{s1}|{s2}]")
            } else {
                format!("[{s2}|{s1}]")
            }
        }
        _ => unreachable!("trees have one or two centers"),
    }
}

/// The vertex mask of the component containing `keep` after deleting the
/// edge `(keep, drop)` from the tree restricted to all vertices.
pub fn split_mask(t: &Template, keep: u8, drop: u8) -> VertMask {
    let mut mask: VertMask = 1 << keep;
    let mut stack = vec![keep];
    while let Some(v) = stack.pop() {
        for &u in t.neighbors(v) {
            if (v == keep && u == drop) || in_mask(mask, u) {
                continue;
            }
            mask |= 1 << u;
            stack.push(u);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isomorphic_paths_share_canon() {
        // Path 0-1-2-3 vs path built in scrambled order 2-0-3-1.
        let a = Template::tree_from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Template::tree_from_edges(4, &[(2, 0), (0, 3), (3, 1)]).unwrap();
        assert_eq!(free_canon(&a), free_canon(&b));
    }

    #[test]
    fn different_trees_differ() {
        let path = Template::path(4);
        let star = Template::star(4);
        assert_ne!(free_canon(&path), free_canon(&star));
    }

    #[test]
    fn rooted_canon_depends_on_root() {
        let p = Template::path(3);
        let end = rooted_canon(&p, 0, full_mask(3));
        let mid = rooted_canon(&p, 1, full_mask(3));
        assert_ne!(end, mid);
        // Both ends are equivalent roots.
        assert_eq!(end, rooted_canon(&p, 2, full_mask(3)));
    }

    #[test]
    fn masked_subtree_canon() {
        // Star with center 0; the subtree {0, 1} rooted at 0 is an edge.
        let s = Template::star(5);
        let m: VertMask = 0b00011;
        let edge = Template::path(2);
        assert_eq!(rooted_canon(&s, 0, m), rooted_canon(&edge, 0, full_mask(2)));
    }

    #[test]
    fn labels_break_symmetry() {
        let plain = Template::path(3);
        let labeled = Template::path(3).with_labels(vec![1, 0, 0]).unwrap();
        assert_ne!(free_canon(&plain), free_canon(&labeled));
        // Mirrored labels are isomorphic.
        let mirrored = Template::path(3).with_labels(vec![0, 0, 1]).unwrap();
        assert_eq!(free_canon(&labeled), free_canon(&mirrored));
        // Center label placement is not.
        let center = Template::path(3).with_labels(vec![0, 1, 0]).unwrap();
        assert_ne!(free_canon(&labeled), free_canon(&center));
    }

    #[test]
    fn bicentral_tree_orientation_invariant() {
        // Path 6 is bicentral; relabeling reverses the central edge.
        let a = Template::path(6);
        let edges_rev: Vec<(u8, u8)> = (1..6u8).map(|v| (6 - v, 5 - v)).collect();
        let b = Template::tree_from_edges(6, &edges_rev).unwrap();
        assert_eq!(free_canon(&a), free_canon(&b));
    }

    #[test]
    fn split_mask_partitions_tree() {
        let p = Template::path(5);
        let left = split_mask(&p, 1, 2);
        let right = split_mask(&p, 2, 1);
        assert_eq!(left, 0b00011);
        assert_eq!(right, 0b11100);
        assert_eq!(left | right, full_mask(5));
        assert_eq!(left & right, 0);
    }

    #[test]
    fn spider_leg_subtrees_are_automorphic() {
        let sp = Template::spider(&[2, 2, 2]); // center 0; legs (1,2), (3,4), (5,6)
        let leg1 = split_mask(&sp, 1, 0);
        let leg2 = split_mask(&sp, 3, 0);
        assert_eq!(rooted_canon(&sp, 1, leg1), rooted_canon(&sp, 3, leg2));
    }
}
