//! Automorphism counting.
//!
//! The final scaling step of the color-coding estimate divides by `α`, the
//! number of automorphisms of the template (Algorithm 2, line 22), because
//! the DP counts injective homomorphisms and each occurrence is hit once
//! per automorphism. Labeled templates use label-preserving automorphisms.
//!
//! Trees are counted exactly via the AHU decomposition (product over nodes
//! of the factorials of identical-child multiplicities); small non-tree
//! templates (the triangle cactus class) fall back to brute-force
//! permutation checking.

use crate::canon::{full_mask, rooted_canon, split_mask, VertMask};
use crate::tree::Template;

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product()
}

/// Number of automorphisms of the subtree of `t` induced by `mask`, rooted
/// at `root` (automorphisms must fix the root and preserve labels).
pub fn rooted_automorphisms(t: &Template, root: u8, mask: VertMask) -> u64 {
    fn rec(t: &Template, v: u8, parent: Option<u8>, mask: VertMask) -> u64 {
        let kids: Vec<u8> = t
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| Some(u) != parent && mask & (1 << u) != 0)
            .collect();
        let mut aut: u64 = 1;
        let mut canons: Vec<String> = Vec::with_capacity(kids.len());
        for &u in &kids {
            aut *= rec(t, u, Some(v), mask);
            canons.push(rooted_canon(t, u, child_mask(t, u, v, mask)));
        }
        canons.sort_unstable();
        let mut run = 1usize;
        for i in 1..=canons.len() {
            if i < canons.len() && canons[i] == canons[i - 1] {
                run += 1;
            } else {
                aut *= factorial(run);
                run = 1;
            }
        }
        aut
    }
    rec(t, root, None, mask)
}

/// Mask of the subtree hanging below `child` when its parent is `parent`,
/// restricted to `mask`.
fn child_mask(t: &Template, child: u8, parent: u8, mask: VertMask) -> VertMask {
    let mut m: VertMask = 1 << child;
    let mut stack = vec![(child, parent)];
    while let Some((v, p)) = stack.pop() {
        for &u in t.neighbors(v) {
            if u != p && mask & (1 << u) != 0 && m & (1 << u) == 0 {
                m |= 1 << u;
                stack.push((u, v));
            }
        }
    }
    m
}

/// Number of (label-preserving) automorphisms of a template.
///
/// Trees use the center decomposition; non-tree templates of up to 10
/// vertices use brute force.
///
/// # Panics
/// Panics for non-tree templates larger than 10 vertices.
pub fn automorphisms(t: &Template) -> u64 {
    if t.is_tree() {
        let centers = t.tree_centers();
        match centers.as_slice() {
            [c] => rooted_automorphisms(t, *c, full_mask(t.size())),
            [c1, c2] => {
                let m1 = split_mask(t, *c1, *c2);
                let m2 = split_mask(t, *c2, *c1);
                let a = rooted_automorphisms(t, *c1, m1) * rooted_automorphisms(t, *c2, m2);
                let swap = rooted_canon(t, *c1, m1) == rooted_canon(t, *c2, m2);
                if swap {
                    2 * a
                } else {
                    a
                }
            }
            _ => unreachable!(),
        }
    } else {
        brute_force_automorphisms(t)
    }
}

/// Brute force count over all vertex permutations (small templates only).
pub fn brute_force_automorphisms(t: &Template) -> u64 {
    let n = t.size();
    assert!(
        n <= 10,
        "brute-force automorphism counting is capped at 10 vertices"
    );
    let mut perm: Vec<u8> = (0..n as u8).collect();
    let mut count = 0u64;
    permute(&mut perm, 0, &mut |p| {
        // Label preservation.
        for v in 0..n as u8 {
            if t.label(v) != t.label(p[v as usize]) {
                return;
            }
        }
        // Edge preservation (bijection on equal-size vertex sets: checking
        // one direction of edge mapping suffices for counts of a graph onto
        // itself with the same edge count).
        for &(u, v) in t.edges() {
            if !t.has_edge(p[u as usize], p[v as usize]) {
                return;
            }
        }
        count += 1;
    });
    count
}

fn permute(arr: &mut Vec<u8>, i: usize, visit: &mut impl FnMut(&[u8])) {
    if i == arr.len() {
        visit(arr);
        return;
    }
    for j in i..arr.len() {
        arr.swap(i, j);
        permute(arr, i + 1, visit);
        arr.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_has_two_automorphisms() {
        for k in 2..=8 {
            assert_eq!(automorphisms(&Template::path(k)), 2, "path {k}");
        }
        assert_eq!(automorphisms(&Template::path(1)), 1);
    }

    #[test]
    fn star_has_factorial_automorphisms() {
        // k = 2 is just an edge (2 automorphisms, not (k-1)! = 1).
        for k in 3..=7usize {
            assert_eq!(
                automorphisms(&Template::star(k)),
                factorial(k - 1),
                "star {k}"
            );
        }
    }

    #[test]
    fn spider_with_equal_legs() {
        // Three legs of length 2: 3! orderings of the legs.
        assert_eq!(automorphisms(&Template::spider(&[2, 2, 2])), 6);
        // Mixed legs 1,1,2: the two length-1 legs swap.
        assert_eq!(automorphisms(&Template::spider(&[1, 1, 2])), 2);
        // All distinct legs: asymmetric except nothing.
        assert_eq!(automorphisms(&Template::spider(&[1, 2, 3])), 1);
    }

    #[test]
    fn triangle_has_six() {
        assert_eq!(automorphisms(&Template::triangle()), 6);
    }

    #[test]
    fn labeled_triangle() {
        let t = Template::triangle().with_labels(vec![0, 0, 1]).unwrap();
        assert_eq!(automorphisms(&t), 2);
        let t2 = Template::triangle().with_labels(vec![0, 1, 2]).unwrap();
        assert_eq!(automorphisms(&t2), 1);
    }

    #[test]
    fn labels_reduce_tree_symmetry() {
        let star = Template::star(5).with_labels(vec![0, 1, 1, 2, 2]).unwrap();
        // Leaves split into two swap classes of size 2: 2! * 2!.
        assert_eq!(automorphisms(&star), 4);
    }

    #[test]
    fn tree_counts_match_brute_force() {
        let cases = vec![
            Template::path(6),
            Template::star(6),
            Template::spider(&[2, 2, 2]),
            Template::spider(&[1, 1, 1, 2]),
            Template::tree_from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])
                .unwrap(),
        ];
        for t in cases {
            assert_eq!(
                automorphisms(&t),
                brute_force_automorphisms(&t),
                "mismatch for {t:?}"
            );
        }
    }

    #[test]
    fn bicentral_symmetric_tree_doubles() {
        // Path of 4: bicentral, halves isomorphic -> 2.
        assert_eq!(automorphisms(&Template::path(4)), 2);
        // Double star: centers 0-1, each with two leaves -> 2 * 2 * 2 = 8.
        let ds = Template::tree_from_edges(6, &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)]).unwrap();
        assert_eq!(automorphisms(&ds), 8);
        assert_eq!(brute_force_automorphisms(&ds), 8);
    }

    #[test]
    fn rooted_vs_free() {
        // Rooting a path at an end kills the flip symmetry.
        let p = Template::path(5);
        assert_eq!(rooted_automorphisms(&p, 0, full_mask(5)), 1);
        assert_eq!(rooted_automorphisms(&p, 2, full_mask(5)), 2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tree(max_n: usize) -> impl Strategy<Value = Template> {
        // Random parent arrays give random labeled trees.
        (2..max_n).prop_flat_map(|n| {
            proptest::collection::vec(0u32..u32::MAX, n - 1).prop_map(move |rs| {
                let parents: Vec<u8> = rs
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (r as usize % (i + 1)) as u8)
                    .collect();
                Template::from_parents(&parents).unwrap()
            })
        })
    }

    proptest! {
        #[test]
        fn ahu_matches_brute_force(t in arb_tree(8)) {
            prop_assert_eq!(automorphisms(&t), brute_force_automorphisms(&t));
        }

        #[test]
        fn automorphisms_at_least_one(t in arb_tree(10)) {
            prop_assert!(automorphisms(&t) >= 1);
        }
    }
}

/// Partitions template vertices into automorphism orbits; returns a dense
/// orbit id per vertex (ids assigned in order of first appearance).
///
/// Two vertices share an orbit iff some automorphism maps one to the
/// other. For trees this is detected by comparing the canonical form of
/// the template rooted at each vertex; small non-tree templates fall back
/// to brute force.
pub fn vertex_orbits(t: &Template) -> Vec<u8> {
    let n = t.size();
    if t.is_tree() {
        let mask = full_mask(n);
        let mut orbit_of_canon: Vec<(String, u8)> = Vec::new();
        let mut out = Vec::with_capacity(n);
        for v in 0..n as u8 {
            let c = rooted_canon(t, v, mask);
            if let Some((_, id)) = orbit_of_canon.iter().find(|(s, _)| *s == c) {
                out.push(*id);
            } else {
                let id = orbit_of_canon.len() as u8;
                orbit_of_canon.push((c, id));
                out.push(id);
            }
        }
        out
    } else {
        // Union orbits over all automorphisms (brute force, <= 10 verts).
        assert!(
            n <= 10,
            "orbit computation for non-trees is capped at 10 vertices"
        );
        let mut parent: Vec<u8> = (0..n as u8).collect();
        fn find(parent: &mut [u8], x: u8) -> u8 {
            if parent[x as usize] != x {
                let r = find(parent, parent[x as usize]);
                parent[x as usize] = r;
            }
            parent[x as usize]
        }
        let mut perm: Vec<u8> = (0..n as u8).collect();
        permute(&mut perm, 0, &mut |p| {
            for v in 0..n as u8 {
                if t.label(v) != t.label(p[v as usize]) {
                    return;
                }
            }
            for &(u, v) in t.edges() {
                if !t.has_edge(p[u as usize], p[v as usize]) {
                    return;
                }
            }
            for v in 0..n as u8 {
                let (a, b) = (find(&mut parent, v), find(&mut parent, p[v as usize]));
                if a != b {
                    parent[b as usize] = a;
                }
            }
        });
        // Densify.
        let mut ids: Vec<i16> = vec![-1; n];
        let mut next = 0u8;
        let mut out = Vec::with_capacity(n);
        for v in 0..n as u8 {
            let r = find(&mut parent, v) as usize;
            if ids[r] < 0 {
                ids[r] = next as i16;
                next += 1;
            }
            out.push(ids[r] as u8);
        }
        out
    }
}

/// One representative vertex per orbit, in orbit-id order.
pub fn orbit_representatives(t: &Template) -> Vec<u8> {
    let orbits = vertex_orbits(t);
    let count = orbits.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut reps = vec![u8::MAX; count];
    for (v, &o) in orbits.iter().enumerate() {
        if reps[o as usize] == u8::MAX {
            reps[o as usize] = v as u8;
        }
    }
    reps
}

#[cfg(test)]
mod orbit_tests {
    use super::*;

    #[test]
    fn path_orbits_fold_at_the_middle() {
        // Path 0-1-2-3-4: orbits {0,4}, {1,3}, {2}.
        let orbits = vertex_orbits(&Template::path(5));
        assert_eq!(orbits[0], orbits[4]);
        assert_eq!(orbits[1], orbits[3]);
        assert_ne!(orbits[0], orbits[1]);
        assert_ne!(orbits[1], orbits[2]);
        assert_eq!(orbit_representatives(&Template::path(5)).len(), 3);
    }

    #[test]
    fn star_has_two_orbits() {
        let orbits = vertex_orbits(&Template::star(6));
        assert_eq!(orbits[0], 0);
        assert!(orbits[1..].iter().all(|&o| o == orbits[1]));
        assert_ne!(orbits[0], orbits[1]);
    }

    #[test]
    fn chair_orbits() {
        // Chair 0-1-2-3 with leaf 4 on 1 (U5-2): {0,4}, {1}, {2}, {3}.
        let t = crate::named::NamedTemplate::U5_2.template();
        let orbits = vertex_orbits(&t);
        assert_eq!(orbits[0], orbits[4]);
        let distinct: std::collections::HashSet<u8> = orbits.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn spider_orbits() {
        // Three legs of length 2: center, mids, tips.
        let orbits = vertex_orbits(&Template::spider(&[2, 2, 2]));
        let distinct: std::collections::HashSet<u8> = orbits.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn triangle_is_one_orbit() {
        let orbits = vertex_orbits(&Template::triangle());
        assert!(orbits.iter().all(|&o| o == 0));
        assert_eq!(orbit_representatives(&Template::triangle()), vec![0]);
    }

    #[test]
    fn labels_split_orbits() {
        let t = Template::path(3).with_labels(vec![0, 1, 2]).unwrap();
        let orbits = vertex_orbits(&t);
        let distinct: std::collections::HashSet<u8> = orbits.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn orbit_sizes_times_stabilizer_equals_group_order() {
        // Orbit-stabilizer sanity on a few trees: |orbit(v)| * |Aut_v| = |Aut|.
        for t in [
            Template::path(6),
            Template::star(5),
            Template::spider(&[1, 1, 2]),
        ] {
            let orbits = vertex_orbits(&t);
            let total = automorphisms(&t);
            for v in 0..t.size() as u8 {
                let orbit_size = orbits.iter().filter(|&&o| o == orbits[v as usize]).count() as u64;
                let stab = rooted_automorphisms(&t, v, full_mask(t.size()));
                assert_eq!(orbit_size * stab, total, "vertex {v} of {t:?}");
            }
        }
    }
}
