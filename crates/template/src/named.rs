//! The paper's template gallery (Figure 2).
//!
//! For each size k in {3, 5, 7, 10, 12} the paper uses a simple path
//! (U k-1) and a "more complex structure" (U k-2). The figure's drawings
//! pin down the structures only partially; where a choice had to be made we
//! used the paper's own textual constraints:
//!
//! * U3-2 — the only 3-vertex non-path pattern is the triangle, which the
//!   paper explicitly supports ("tree-like graphs templates with
//!   triangles").
//! * U5-2 — must have a degree-3 "central orbit" vertex (§V-F uses it for
//!   graphlet degree distributions): the 5-vertex chair/fork tree.
//! * U7-2 — must have an "obvious" rooted automorphism (§III-C): the
//!   spider with three legs of length 2.
//! * U10-2 — a symmetric double-spider (two adjacent degree-3 centers,
//!   each with two length-2 legs).
//! * U12-2 — "explicitly designed to stress subtemplate partitioning"
//!   (§V-A): a bushy near-balanced binary tree.

use crate::tree::Template;

/// The ten templates of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum NamedTemplate {
    U3_1,
    U3_2,
    U5_1,
    U5_2,
    U7_1,
    U7_2,
    U10_1,
    U10_2,
    U12_1,
    U12_2,
}

impl NamedTemplate {
    /// All ten templates in paper order.
    pub fn all() -> [NamedTemplate; 10] {
        use NamedTemplate::*;
        [
            U3_1, U3_2, U5_1, U5_2, U7_1, U7_2, U10_1, U10_2, U12_1, U12_2,
        ]
    }

    /// The five path templates.
    pub fn paths() -> [NamedTemplate; 5] {
        use NamedTemplate::*;
        [U3_1, U5_1, U7_1, U10_1, U12_1]
    }

    /// The five non-path templates.
    pub fn complex() -> [NamedTemplate; 5] {
        use NamedTemplate::*;
        [U3_2, U5_2, U7_2, U10_2, U12_2]
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        use NamedTemplate::*;
        match self {
            U3_1 => "U3-1",
            U3_2 => "U3-2",
            U5_1 => "U5-1",
            U5_2 => "U5-2",
            U7_1 => "U7-1",
            U7_2 => "U7-2",
            U10_1 => "U10-1",
            U10_2 => "U10-2",
            U12_1 => "U12-1",
            U12_2 => "U12-2",
        }
    }

    /// Number of template vertices.
    pub fn size(&self) -> usize {
        use NamedTemplate::*;
        match self {
            U3_1 | U3_2 => 3,
            U5_1 | U5_2 => 5,
            U7_1 | U7_2 => 7,
            U10_1 | U10_2 => 10,
            U12_1 | U12_2 => 12,
        }
    }

    /// Builds the template.
    pub fn template(&self) -> Template {
        use NamedTemplate::*;
        match self {
            U3_1 => Template::path(3),
            U3_2 => Template::triangle(),
            U5_1 => Template::path(5),
            // Chair: path 0-1-2-3 with leaf 4 on vertex 1 (degree-3 center 1).
            U5_2 => Template::tree_from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)])
                .expect("U5-2 is a valid tree"),
            U7_1 => Template::path(7),
            U7_2 => Template::spider(&[2, 2, 2]),
            U10_1 => Template::path(10),
            // Double spider: centers 0 and 1; legs 0-2-3, 0-4-5, 1-6-7, 1-8-9.
            U10_2 => Template::tree_from_edges(
                10,
                &[
                    (0, 1),
                    (0, 2),
                    (2, 3),
                    (0, 4),
                    (4, 5),
                    (1, 6),
                    (6, 7),
                    (1, 8),
                    (8, 9),
                ],
            )
            .expect("U10-2 is a valid tree"),
            U12_1 => Template::path(12),
            // Bushy near-balanced binary tree on 12 vertices.
            U12_2 => Template::tree_from_edges(
                12,
                &[
                    (0, 1),
                    (0, 2),
                    (1, 3),
                    (1, 4),
                    (2, 5),
                    (2, 6),
                    (3, 7),
                    (3, 8),
                    (5, 9),
                    (5, 10),
                    (4, 11),
                ],
            )
            .expect("U12-2 is a valid tree"),
        }
    }

    /// Looks a template up by its paper name (e.g. `"U7-2"`).
    pub fn by_name(name: &str) -> Option<NamedTemplate> {
        NamedTemplate::all().into_iter().find(|t| t.name() == name)
    }

    /// For U5-2, the vertex of the "central orbit" (degree 3) used by the
    /// graphlet-degree-distribution experiments; `None` for other
    /// templates.
    pub fn central_orbit(&self) -> Option<u8> {
        match self {
            NamedTemplate::U5_2 => Some(1),
            _ => None,
        }
    }
}

/// Renders a template as ASCII for the Figure 2 reproduction binary.
pub fn ascii_art(t: &Template) -> String {
    let mut s = String::new();
    s.push_str(&format!("vertices: {}\n", t.size()));
    for &(u, v) in t.edges() {
        s.push_str(&format!("  {u} -- {v}\n"));
    }
    let degs: Vec<usize> = (0..t.size()).map(|v| t.degree(v as u8)).collect();
    s.push_str(&format!("degrees: {degs:?}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automorphism::automorphisms;
    use crate::canon::free_canon;

    #[test]
    fn sizes_match_names() {
        for t in NamedTemplate::all() {
            assert_eq!(t.template().size(), t.size(), "{}", t.name());
        }
    }

    #[test]
    fn paths_are_paths() {
        for t in NamedTemplate::paths() {
            let tpl = t.template();
            assert_eq!(free_canon(&tpl), free_canon(&Template::path(t.size())));
        }
    }

    #[test]
    fn complex_templates_differ_from_paths() {
        for t in NamedTemplate::complex() {
            let tpl = t.template();
            if tpl.is_tree() {
                assert_ne!(
                    free_canon(&tpl),
                    free_canon(&Template::path(t.size())),
                    "{} must not be a path",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn u3_2_is_triangle() {
        let t = NamedTemplate::U3_2.template();
        assert!(!t.is_tree());
        assert_eq!(t.triangles().len(), 1);
        assert_eq!(automorphisms(&t), 6);
    }

    #[test]
    fn u5_2_has_degree_three_orbit() {
        let t = NamedTemplate::U5_2.template();
        let orbit = NamedTemplate::U5_2.central_orbit().unwrap();
        assert_eq!(t.degree(orbit), 3);
    }

    #[test]
    fn u7_2_has_rooted_symmetry() {
        // Three identical legs: 3! automorphisms.
        assert_eq!(automorphisms(&NamedTemplate::U7_2.template()), 6);
    }

    #[test]
    fn u10_2_is_symmetric_double_spider() {
        let t = NamedTemplate::U10_2.template();
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(1), 3);
        // Each center's legs swap (2 x 2) and the halves swap (x2).
        assert_eq!(automorphisms(&t), 8);
    }

    #[test]
    fn u12_2_is_bushy() {
        let t = NamedTemplate::U12_2.template();
        assert!(t.is_tree());
        assert_eq!(t.size(), 12);
        assert!(t.max_degree_internal() >= 3);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(NamedTemplate::by_name("U7-2"), Some(NamedTemplate::U7_2));
        assert_eq!(NamedTemplate::by_name("U9-9"), None);
    }

    #[test]
    fn ascii_art_mentions_all_edges() {
        let art = ascii_art(&NamedTemplate::U5_2.template());
        assert!(art.contains("vertices: 5"));
        assert_eq!(art.matches("--").count(), 4);
    }

    impl Template {
        fn max_degree_internal(&self) -> usize {
            (0..self.size())
                .map(|v| self.degree(v as u8))
                .max()
                .unwrap()
        }
    }
}
