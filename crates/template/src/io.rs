//! Template text format.
//!
//! The original FASCIA tool reads templates from small text files; this
//! module provides a compatible format:
//!
//! ```text
//! # optional comments
//! vertices: 5
//! labels: 0 1 0 1 2     # optional line
//! 0 1
//! 1 2
//! 1 4
//! 2 3
//! ```
//!
//! A `vertices:` header, an optional `labels:` line, then one edge per
//! line. Parsing validates through [`Template::from_edges`], so only
//! trees and triangle cacti load.

use crate::tree::{Template, TemplateError};

/// Errors from template parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed line.
    Syntax { line: usize, content: String },
    /// Missing `vertices:` header.
    MissingHeader,
    /// Structural validation failed.
    Invalid(TemplateError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, content } => {
                write!(f, "cannot parse template line {line}: {content:?}")
            }
            ParseError::MissingHeader => write!(f, "missing 'vertices: N' header"),
            ParseError::Invalid(e) => write!(f, "invalid template: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<TemplateError> for ParseError {
    fn from(e: TemplateError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Parses a template from the text format.
pub fn parse_template(text: &str) -> Result<Template, ParseError> {
    let mut n: Option<usize> = None;
    let mut labels: Option<Vec<u8>> = None;
    let mut edges: Vec<(u8, u8)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("vertices:") {
            n = Some(v.trim().parse().map_err(|_| ParseError::Syntax {
                line: lineno + 1,
                content: raw.to_string(),
            })?);
            continue;
        }
        if let Some(l) = line.strip_prefix("labels:") {
            let parsed: Result<Vec<u8>, _> = l.split_whitespace().map(|x| x.parse()).collect();
            labels = Some(parsed.map_err(|_| ParseError::Syntax {
                line: lineno + 1,
                content: raw.to_string(),
            })?);
            continue;
        }
        let mut it = line.split_whitespace();
        match (
            it.next().and_then(|x| x.parse::<u8>().ok()),
            it.next().and_then(|x| x.parse::<u8>().ok()),
        ) {
            (Some(u), Some(v)) => edges.push((u, v)),
            _ => {
                return Err(ParseError::Syntax {
                    line: lineno + 1,
                    content: raw.to_string(),
                })
            }
        }
    }
    let n = n.ok_or(ParseError::MissingHeader)?;
    let t = Template::from_edges(n, &edges)?;
    match labels {
        Some(l) => Ok(t.with_labels(l)?),
        None => Ok(t),
    }
}

/// Renders a template in the text format (round-trips with
/// [`parse_template`]).
pub fn format_template(t: &Template) -> String {
    let mut s = String::new();
    s.push_str(&format!("vertices: {}\n", t.size()));
    if let Some(labels) = t.labels() {
        let rendered: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
        s.push_str(&format!("labels: {}\n", rendered.join(" ")));
    }
    for &(u, v) in t.edges() {
        s.push_str(&format!("{u} {v}\n"));
    }
    s
}

/// Loads a template from a file.
pub fn load_template<P: AsRef<std::path::Path>>(path: P) -> Result<Template, ParseError> {
    let text = std::fs::read_to_string(path).map_err(|e| ParseError::Syntax {
        line: 0,
        content: e.to_string(),
    })?;
    parse_template(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedTemplate;

    #[test]
    fn parses_basic_tree() {
        let t = parse_template("vertices: 4\n0 1\n1 2\n1 3\n").unwrap();
        assert_eq!(t.size(), 4);
        assert_eq!(t.degree(1), 3);
        assert!(t.is_tree());
    }

    #[test]
    fn parses_labels_and_comments() {
        let text = "# chair with labels\nvertices: 3\nlabels: 2 0 2\n0 1 # edge one\n1 2\n";
        let t = parse_template(text).unwrap();
        assert_eq!(t.labels(), Some(&[2u8, 0, 2][..]));
    }

    #[test]
    fn round_trips_every_named_template() {
        for named in NamedTemplate::all() {
            let t = named.template();
            let parsed = parse_template(&format_template(&t)).unwrap();
            assert_eq!(parsed, t, "{}", named.name());
        }
    }

    #[test]
    fn round_trips_labeled_template() {
        let t = crate::tree::Template::path(4)
            .with_labels(vec![3, 1, 4, 1])
            .unwrap();
        assert_eq!(parse_template(&format_template(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            parse_template("0 1\n"),
            Err(ParseError::MissingHeader)
        ));
    }

    #[test]
    fn rejects_garbage_line() {
        let err = parse_template("vertices: 3\n0 1\nfoo\n").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 3, .. }));
    }

    #[test]
    fn rejects_invalid_structure() {
        // A 4-cycle is not a supported template.
        let err = parse_template("vertices: 4\n0 1\n1 2\n2 3\n3 0\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn load_from_file() {
        let dir = std::env::temp_dir().join("fascia_template_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, format_template(&NamedTemplate::U5_2.template())).unwrap();
        let t = load_template(&path).unwrap();
        assert_eq!(t, NamedTemplate::U5_2.template());
        std::fs::remove_file(&path).ok();
    }
}
