//! Template graphs.
//!
//! Templates are tiny (the paper goes up to 12 vertices), so the
//! representation favors clarity: adjacency lists of `u8` ids. Validation
//! enforces the class FASCIA supports: connected undirected trees, plus
//! "tree-like" templates whose only cycles are vertex-disjoint triangles.

/// Maximum supported template size (paper evaluates up to 12; headroom for
/// the extension experiments).
pub const MAX_TEMPLATE_SIZE: usize = 20;

/// Classification of a validated template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// A tree: `k - 1` edges, connected.
    Tree,
    /// Connected, and every cycle is a triangle; triangles are
    /// vertex-disjoint (a "triangle cactus", e.g. the paper's U3-2).
    TriangleCactus,
}

/// Errors from template validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// No vertices.
    Empty,
    /// More vertices than [`MAX_TEMPLATE_SIZE`].
    TooLarge(usize),
    /// Edge endpoint out of range or a self loop.
    BadEdge(u8, u8),
    /// The template graph is not connected.
    Disconnected,
    /// Contains a cycle structure other than vertex-disjoint triangles.
    UnsupportedCycles,
    /// Label vector length does not match the vertex count.
    BadLabels,
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::Empty => write!(f, "template has no vertices"),
            TemplateError::TooLarge(n) => {
                write!(f, "template has {n} vertices; max is {MAX_TEMPLATE_SIZE}")
            }
            TemplateError::BadEdge(u, v) => write!(f, "invalid template edge ({u}, {v})"),
            TemplateError::Disconnected => write!(f, "template is not connected"),
            TemplateError::UnsupportedCycles => write!(
                f,
                "template cycles must be vertex-disjoint triangles (tree-like templates only)"
            ),
            TemplateError::BadLabels => write!(f, "label vector length must equal vertex count"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// A validated template graph with optional vertex labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    n: u8,
    adj: Vec<Vec<u8>>,
    edges: Vec<(u8, u8)>,
    labels: Option<Vec<u8>>,
    kind: TemplateKind,
    /// Vertex-disjoint triangles, each as a sorted triple.
    triangles: Vec<[u8; 3]>,
}

impl Template {
    /// Builds and validates a template from an edge list on `n` vertices.
    pub fn from_edges(n: usize, edges: &[(u8, u8)]) -> Result<Self, TemplateError> {
        if n == 0 {
            return Err(TemplateError::Empty);
        }
        if n > MAX_TEMPLATE_SIZE {
            return Err(TemplateError::TooLarge(n));
        }
        let mut adj: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut norm: Vec<(u8, u8)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u as usize >= n || v as usize >= n || u == v {
                return Err(TemplateError::BadEdge(u, v));
            }
            let e = if u < v { (u, v) } else { (v, u) };
            if !norm.contains(&e) {
                norm.push(e);
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        // Connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![0u8];
        seen[0] = true;
        let mut reached = 1;
        while let Some(v) = stack.pop() {
            for &u in &adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    reached += 1;
                    stack.push(u);
                }
            }
        }
        if reached != n {
            return Err(TemplateError::Disconnected);
        }
        // Cycle structure: a tree has n-1 edges. Otherwise, every extra edge
        // must close a vertex-disjoint triangle.
        let m = norm.len();
        let kind;
        let mut triangles: Vec<[u8; 3]> = Vec::new();
        if m == n - 1 {
            kind = TemplateKind::Tree;
        } else {
            // Collect all triangles.
            for &(u, v) in &norm {
                for &w in &adj[u as usize] {
                    if w > v && adj[v as usize].contains(&w) {
                        triangles.push([u, v, w]);
                    }
                }
            }
            // Vertex-disjointness.
            let mut used = vec![false; n];
            for t in &triangles {
                for &x in t {
                    if used[x as usize] {
                        return Err(TemplateError::UnsupportedCycles);
                    }
                    used[x as usize] = true;
                }
            }
            // Exactly one extra edge per triangle, and no other cycles:
            // edges = (n - 1) + #triangles.
            if m != n - 1 + triangles.len() || triangles.is_empty() {
                return Err(TemplateError::UnsupportedCycles);
            }
            // Removing one edge of each triangle must leave a tree
            // (connected with n-1 edges); connectivity already checked and
            // edge count now matches, but a 4-cycle plus chord patterns are
            // already excluded by the disjoint-triangle accounting above.
            kind = TemplateKind::TriangleCactus;
        }
        Ok(Self {
            n: n as u8,
            adj,
            edges: norm,
            labels: None,
            kind,
            triangles,
        })
    }

    /// Builds a template that must be a tree.
    pub fn tree_from_edges(n: usize, edges: &[(u8, u8)]) -> Result<Self, TemplateError> {
        let t = Self::from_edges(n, edges)?;
        if t.kind != TemplateKind::Tree {
            return Err(TemplateError::UnsupportedCycles);
        }
        Ok(t)
    }

    /// Builds a tree from a parent array: `parent[i]` is the parent of
    /// vertex `i + 1` (vertex 0 is the root).
    pub fn from_parents(parents: &[u8]) -> Result<Self, TemplateError> {
        let n = parents.len() + 1;
        let edges: Vec<(u8, u8)> = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, (i + 1) as u8))
            .collect();
        Self::tree_from_edges(n, &edges)
    }

    /// Simple path on `k` vertices (`0 - 1 - ... - k-1`).
    pub fn path(k: usize) -> Self {
        let edges: Vec<(u8, u8)> = (1..k as u8).map(|v| (v - 1, v)).collect();
        Self::tree_from_edges(k, &edges).expect("path is a valid tree")
    }

    /// Star on `k` vertices (center 0).
    pub fn star(k: usize) -> Self {
        let edges: Vec<(u8, u8)> = (1..k as u8).map(|v| (0, v)).collect();
        Self::tree_from_edges(k, &edges).expect("star is a valid tree")
    }

    /// Spider: center 0 with legs of the given lengths (a leg of length L
    /// is a path of L extra vertices).
    pub fn spider(legs: &[usize]) -> Self {
        let mut edges = Vec::new();
        let mut next = 1u8;
        for &len in legs {
            let mut prev = 0u8;
            for _ in 0..len {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        Self::tree_from_edges(next as usize, &edges).expect("spider is a valid tree")
    }

    /// The triangle (the paper's U3-2).
    pub fn triangle() -> Self {
        Self::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).expect("triangle is valid")
    }

    /// Attaches vertex labels; length must equal the vertex count.
    pub fn with_labels(mut self, labels: Vec<u8>) -> Result<Self, TemplateError> {
        if labels.len() != self.n as usize {
            return Err(TemplateError::BadLabels);
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Removes labels.
    pub fn without_labels(mut self) -> Self {
        self.labels = None;
        self
    }

    /// Number of template vertices `k`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n as usize
    }

    /// Sorted neighbors of template vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: u8) -> &[u8] {
        &self.adj[v as usize]
    }

    /// Degree of template vertex `v`.
    #[inline]
    pub fn degree(&self, v: u8) -> usize {
        self.adj[v as usize].len()
    }

    /// The template's deduplicated edges, `(u, v)` with `u < v`.
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: u8, v: u8) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Structural class of this template.
    pub fn kind(&self) -> TemplateKind {
        self.kind
    }

    /// Whether the template is a tree.
    pub fn is_tree(&self) -> bool {
        self.kind == TemplateKind::Tree
    }

    /// The template's vertex-disjoint triangles (empty for trees).
    pub fn triangles(&self) -> &[[u8; 3]] {
        &self.triangles
    }

    /// Vertex labels, if any.
    pub fn labels(&self) -> Option<&[u8]> {
        self.labels.as_deref()
    }

    /// Label of vertex `v` (0 when unlabeled).
    #[inline]
    pub fn label(&self, v: u8) -> u8 {
        self.labels.as_ref().map_or(0, |l| l[v as usize])
    }

    /// A leaf (degree-1 vertex); for the triangle, any vertex.
    pub fn some_leaf(&self) -> u8 {
        (0..self.n).find(|&v| self.degree(v) <= 1).unwrap_or(0)
    }

    /// Center(s) of a tree template (1 or 2 vertices), found by repeatedly
    /// stripping leaves.
    ///
    /// # Panics
    /// Panics if the template is not a tree.
    pub fn tree_centers(&self) -> Vec<u8> {
        assert!(self.is_tree(), "centers are defined for tree templates");
        let n = self.n as usize;
        if n == 1 {
            return vec![0];
        }
        let mut degree: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        let mut removed = vec![false; n];
        let mut frontier: Vec<u8> = (0..self.n).filter(|&v| degree[v as usize] == 1).collect();
        let mut remaining = n;
        while remaining > 2 {
            let mut next = Vec::new();
            for &v in &frontier {
                removed[v as usize] = true;
                remaining -= 1;
                for &u in self.neighbors(v) {
                    if !removed[u as usize] {
                        degree[u as usize] -= 1;
                        if degree[u as usize] == 1 {
                            next.push(u);
                        }
                    }
                }
            }
            frontier = next;
        }
        (0..self.n).filter(|&v| !removed[v as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_star_shapes() {
        let p = Template::path(5);
        assert_eq!(p.size(), 5);
        assert_eq!(p.edges().len(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        assert!(p.is_tree());

        let s = Template::star(6);
        assert_eq!(s.degree(0), 5);
        assert!((1..6).all(|v| s.degree(v as u8) == 1));
    }

    #[test]
    fn spider_construction() {
        // U7-2-like: three legs of length 2.
        let sp = Template::spider(&[2, 2, 2]);
        assert_eq!(sp.size(), 7);
        assert_eq!(sp.degree(0), 3);
        let leaf_count = (0..7).filter(|&v| sp.degree(v as u8) == 1).count();
        assert_eq!(leaf_count, 3);
    }

    #[test]
    fn triangle_is_cactus() {
        let t = Template::triangle();
        assert_eq!(t.kind(), TemplateKind::TriangleCactus);
        assert_eq!(t.triangles(), &[[0, 1, 2]]);
        assert!(!t.is_tree());
    }

    #[test]
    fn rejects_square_cycle() {
        let err = Template::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap_err();
        assert_eq!(err, TemplateError::UnsupportedCycles);
    }

    #[test]
    fn rejects_sharing_triangles() {
        // Two triangles sharing vertex 0.
        let err =
            Template::from_edges(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]).unwrap_err();
        assert_eq!(err, TemplateError::UnsupportedCycles);
    }

    #[test]
    fn accepts_triangle_with_pendant() {
        let t = Template::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]).unwrap();
        assert_eq!(t.kind(), TemplateKind::TriangleCactus);
        assert_eq!(t.triangles().len(), 1);
    }

    #[test]
    fn rejects_disconnected() {
        let err = Template::from_edges(4, &[(0, 1), (2, 3)]).unwrap_err();
        assert_eq!(err, TemplateError::Disconnected);
    }

    #[test]
    fn rejects_self_loop_and_bad_ids() {
        assert_eq!(
            Template::from_edges(3, &[(0, 0), (0, 1), (1, 2)]).unwrap_err(),
            TemplateError::BadEdge(0, 0)
        );
        assert_eq!(
            Template::from_edges(2, &[(0, 2)]).unwrap_err(),
            TemplateError::BadEdge(0, 2)
        );
    }

    #[test]
    fn parent_array_round_trip() {
        // 0 - 1, 0 - 2, 2 - 3
        let t = Template::from_parents(&[0, 0, 2]).unwrap();
        assert_eq!(t.size(), 4);
        assert!(t.has_edge(0, 1) && t.has_edge(0, 2) && t.has_edge(2, 3));
    }

    #[test]
    fn centers_of_paths() {
        assert_eq!(Template::path(5).tree_centers(), vec![2]);
        assert_eq!(Template::path(6).tree_centers(), vec![2, 3]);
        assert_eq!(Template::path(1).tree_centers(), vec![0]);
        assert_eq!(Template::path(2).tree_centers(), vec![0, 1]);
    }

    #[test]
    fn center_of_star_is_hub() {
        assert_eq!(Template::star(7).tree_centers(), vec![0]);
    }

    #[test]
    fn labels_validated() {
        let t = Template::path(3);
        assert!(t.clone().with_labels(vec![0, 1]).is_err());
        let l = t.with_labels(vec![2, 0, 2]).unwrap();
        assert_eq!(l.label(0), 2);
        assert_eq!(l.labels(), Some(&[2u8, 0, 2][..]));
        assert_eq!(l.without_labels().labels(), None);
    }

    #[test]
    fn single_vertex_template() {
        let t = Template::from_edges(1, &[]).unwrap();
        assert!(t.is_tree());
        assert_eq!(t.size(), 1);
        assert_eq!(t.some_leaf(), 0);
    }

    #[test]
    fn dedups_parallel_edges() {
        let t = Template::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        assert!(t.is_tree());
        assert_eq!(t.edges().len(), 2);
    }
}
