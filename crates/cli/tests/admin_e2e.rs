//! End-to-end test of the `fascia serve --admin-addr` telemetry plane:
//! a real daemon process, scraped over plain TCP with a hand-rolled
//! HTTP/1.1 GET (the same thing `curl` sends), then drained via SIGTERM.

#![cfg(unix)]

use fascia_svc::JobSpec;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn fascia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fascia"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("fascia-admin-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn submit(spool: &Path, spec: &JobSpec) {
    let jobs = spool.join("jobs");
    std::fs::create_dir_all(&jobs).unwrap();
    std::fs::write(jobs.join(format!("{}.json", spec.id)), spec.to_json()).unwrap();
}

/// Issues a plain HTTP/1.1 GET and returns (status, body), reading to EOF
/// (the server always answers `Connection: close`).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: e2e\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls for a condition with a deadline, so the test tracks the daemon's
/// real pace instead of sleeping a fixed worst case.
fn wait_for(what: &str, deadline: Duration, mut ready: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !ready() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_admin_endpoint_serves_live_telemetry_and_drains_on_sigterm() {
    let spool = tmp_dir("daemon");
    for i in 0..2 {
        let mut spec = JobSpec::new(&format!("live-{i}"), "circuit", "path4");
        spec.iterations = 10;
        spec.seed = 7 + i;
        submit(&spool, &spec);
    }

    // Port 0: the kernel picks a free port; the daemon publishes the
    // bound address in <spool>/admin.addr for exactly this handshake.
    let child = fascia()
        .args([
            "serve",
            "--scan-ms",
            "50",
            "--admin-addr",
            "127.0.0.1:0",
            "--spool",
        ])
        .arg(&spool)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    let addr_file = spool.join("admin.addr");
    wait_for("admin.addr", Duration::from_secs(10), || addr_file.exists());
    let addr = std::fs::read_to_string(&addr_file)
        .unwrap()
        .trim()
        .to_string();

    // The endpoint is live before any job finishes: eager metric
    // registration means a scrape never 404s on a known series.
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    wait_for("both results", Duration::from_secs(30), || {
        (0..2).all(|i| spool.join(format!("results/live-{i}.json")).exists())
    });

    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    for series in [
        "svc_queue_depth",
        "svc_jobs_completed 2",
        "svc_queue_wait_ms",
        "svc_job_e2e_ms",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    let (status, jobs) = http_get(&addr, "/jobs");
    assert_eq!(status, 200);
    assert!(jobs.contains("\"schema\":\"fascia-jobs/1\""), "{jobs}");
    assert!(jobs.contains("\"id\":\"live-0\""), "{jobs}");

    // Acceptance: the served timeline is exactly the fascia-events/1 log,
    // line for line.
    let (status, timeline) = http_get(&addr, "/jobs/live-1");
    assert_eq!(status, 200);
    let log = std::fs::read_to_string(spool.join("events/events.jsonl")).unwrap();
    let mine: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("\"job\":\"live-1\""))
        .collect();
    assert!(mine.len() >= 4, "expected a full lifecycle, got {mine:?}");
    for line in &mine {
        assert!(
            timeline.contains(line),
            "timeline missing {line}\n{timeline}"
        );
    }

    // SIGTERM drains: the daemon stops, removes admin.addr, and prints
    // its summary on the way out.
    Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"schema\":\"fascia-svc-report/1\""),
        "{stdout}"
    );
    assert!(
        !addr_file.exists(),
        "admin.addr must be cleaned up on drain"
    );
    assert!(
        TcpStream::connect(&addr).is_err(),
        "admin listener must be closed after shutdown"
    );
    let _ = std::fs::remove_dir_all(&spool);
}
