//! Crash-recovery and chaos-smoke tests of `fascia serve` as a real
//! process: SIGKILL (which no handler can soften) at seed-logged random
//! points, restart, and bitwise comparison against an uninterrupted run.

use fascia_svc::{JobReport, JobSpec, JobStatus};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

fn fascia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fascia"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("fascia-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn submit(spool: &Path, spec: &JobSpec) {
    let jobs = spool.join("jobs");
    std::fs::create_dir_all(&jobs).unwrap();
    std::fs::write(jobs.join(format!("{}.json", spec.id)), spec.to_json()).unwrap();
}

fn read_report(spool: &Path, id: &str) -> JobReport {
    let text = std::fs::read_to_string(spool.join("results").join(format!("{id}.json"))).unwrap();
    JobReport::from_json(&text).unwrap()
}

/// The paced job both recovery tests run: enough stalled iterations that
/// a kill storm always lands mid-run, deterministic in its seed.
fn paced_job() -> JobSpec {
    let mut spec = JobSpec::new("kill-bw", "circuit", "path5");
    spec.iterations = 1200;
    spec.seed = 0xC1C1;
    spec
}

/// Stall-only schedule: chaos paces the DP (~2ms per iteration) without
/// ever changing an iteration's value, so the kill test measures crash
/// recovery, not fault semantics.
const PACING_CHAOS: &str = "seed=1,stall=1,stall_ms=2";

#[test]
fn serve_once_drains_a_queue_cleanly() {
    let spool = tmp_dir("clean");
    let mut spec = JobSpec::new("svc-e2e", "circuit", "path4");
    spec.iterations = 12;
    submit(&spool, &spec);

    let out = fascia()
        .args(["serve", "--once", "--spool"])
        .arg(&spool)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"schema\":\"fascia-svc-report/1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"completed\":1"), "{stdout}");

    let report = read_report(&spool, "svc-e2e");
    assert_eq!(report.status, JobStatus::Completed);
    assert_eq!(report.iterations, 12);
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn serve_ingests_jobs_from_stdin() {
    use std::io::Write as _;
    let spool = tmp_dir("stdin");
    let mut spec = JobSpec::new("from-stdin", "circuit", "star3");
    spec.iterations = 6;

    let mut child = fascia()
        .args(["serve", "--once", "--stdin", "--spool"])
        .arg(&spool)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(format!("{}\nnot a job\n", spec.to_json()).as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("queued 1 job(s), rejected 1"), "{stderr}");
    assert_eq!(
        read_report(&spool, "from-stdin").status,
        JobStatus::Completed
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// The chaos-smoke gate `scripts/ci.sh` runs, in test form: a seeded
/// schedule of panics + IO faults via the environment; the service must
/// exit 0 with every job terminal and no staging litter.
#[test]
fn chaos_smoke_via_environment_terminates_every_job() {
    let spool = tmp_dir("smoke");
    for i in 0..3 {
        let mut spec = JobSpec::new(&format!("smoke-{i}"), "circuit", "path4");
        spec.iterations = 8;
        spec.seed = 100 + i;
        submit(&spool, &spec);
    }
    let out = fascia()
        .args(["serve", "--once", "--spool"])
        .arg(&spool)
        .env(
            "FASCIA_CHAOS",
            "seed=42,panic=0.1,io_ckpt=0.2,io_result=0.1",
        )
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    for i in 0..3 {
        let report = read_report(&spool, &format!("smoke-{i}"));
        match report.status {
            JobStatus::Completed | JobStatus::Partial => assert!(report.estimate.is_some()),
            JobStatus::Failed => assert!(report.error.is_some(), "failures must be typed"),
        }
    }
    assert!(
        spool.join("chaos.events").exists(),
        "schedule must be logged"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// Satellite acceptance: SIGKILL the service at ≥20 seed-logged random
/// points mid-run; the restarted service resumes each time from the last
/// durable checkpoint, and the final fixed-rule estimate is bitwise-equal
/// to an uninterrupted run's.
#[cfg(unix)]
#[test]
fn sigkill_storm_recovery_is_bitwise_equal_to_uninterrupted() {
    // Reference: the same paced job, never interrupted.
    let ref_spool = tmp_dir("ref");
    submit(&ref_spool, &paced_job());
    let out = fascia()
        .args(["serve", "--once", "--chaos", PACING_CHAOS, "--spool"])
        .arg(&ref_spool)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let reference = read_report(&ref_spool, "kill-bw");
    assert_eq!(reference.status, JobStatus::Completed);

    // Kill storm: delays drawn from a seed-logged LCG so a failure
    // reproduces by pinning the seed.
    let seed: u64 = 0x5EED_C0DE;
    println!("kill-point seed: {seed:#x}");
    let mut state = seed;
    let mut next_delay_ms = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        30 + (state >> 33) % 90 // 30–119 ms
    };

    let spool = tmp_dir("storm");
    submit(&spool, &paced_job());
    let result_path = spool.join("results/kill-bw.json");
    let mut kills = 0u32;
    for cycle in 0..400 {
        if result_path.exists() {
            break;
        }
        let mut child = fascia()
            .args(["serve", "--once", "--chaos", PACING_CHAOS, "--spool"])
            .arg(&spool)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let delay = next_delay_ms();
        println!("cycle {cycle}: killing after {delay} ms");
        let mut waited = 0u64;
        let exited = loop {
            if waited >= delay {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
            waited += 5;
            if child.try_wait().unwrap().is_some() {
                break true;
            }
        };
        if !exited {
            child.kill().unwrap(); // SIGKILL: no handler, no flush
            kills += 1;
        }
        let _ = child.wait();
    }

    assert!(
        result_path.exists(),
        "the job must eventually finish across restarts"
    );
    assert!(kills >= 20, "storm too short: only {kills} SIGKILLs landed");
    println!("survived {kills} SIGKILLs");

    let recovered = read_report(&spool, "kill-bw");
    assert_eq!(recovered.status, JobStatus::Completed);
    assert_eq!(recovered.iterations, reference.iterations);
    assert_eq!(
        recovered.estimate.unwrap().to_bits(),
        reference.estimate.unwrap().to_bits(),
        "crash-resumed estimate must be bitwise-equal to the uninterrupted run"
    );
    assert_eq!(
        recovered.ci95.unwrap().to_bits(),
        reference.ci95.unwrap().to_bits()
    );

    let _ = std::fs::remove_dir_all(&ref_spool);
    let _ = std::fs::remove_dir_all(&spool);
}
