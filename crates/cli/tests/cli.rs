//! End-to-end tests of the `fascia` binary.

use std::process::Command;

fn fascia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fascia"))
}

#[test]
fn templates_lists_gallery() {
    let out = fascia().arg("templates").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["U3-1", "U3-2", "U5-2", "U7-2", "U10-2", "U12-2"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn info_reports_circuit_stats() {
    let out = fascia().args(["info", "circuit"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("n: 252"));
    assert!(text.contains("m: 399"));
}

#[test]
fn count_and_exact_agree_on_circuit() {
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    assert!(exact_out.status.success());
    let exact_text = String::from_utf8(exact_out.stdout).unwrap();
    let exact: f64 = exact_text
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();

    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "500", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.1, "estimate {est} vs exact {exact}");
}

#[test]
fn adaptive_count_stops_early_and_reports_ci() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--adaptive",
            "--epsilon",
            "0.05",
            "--delta",
            "0.05",
            "--max-iters",
            "5000",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let iters: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(iters < 5000, "adaptive run used the whole budget: {text}");
    let saved: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations saved: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(iters + saved, 5000, "got: {text}");
    assert!(text.contains("std error: "), "got: {text}");
    assert!(text.contains("95% ci: "), "got: {text}");

    // And it lands near the exact count.
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    let exact: f64 = String::from_utf8(exact_out.stdout)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.15, "estimate {est} vs exact {exact}");
}

#[test]
fn sample_prints_valid_embeddings() {
    let out = fascia()
        .args(["sample", "circuit", "path4", "5", "--iters", "200"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rows: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(rows.len(), 5);
    for row in rows {
        let ids: Vec<u32> = row.split_whitespace().map(|x| x.parse().unwrap()).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&v| v < 252));
    }
}

#[test]
fn gen_roundtrips_through_file_input() {
    let dir = std::env::temp_dir().join("fascia_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circuit.txt");
    let out = fascia()
        .args(["gen", "circuit", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let info = fascia()
        .args(["info", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8(info.stdout).unwrap();
    assert!(text.contains("n: 252"), "got: {text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = fascia().arg("bogus").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_template_exits_nonzero() {
    let out = fascia()
        .args(["count", "circuit", "U9-9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn motifs_scan_size_four() {
    let out = fascia()
        .args(["motifs", "circuit", "4", "--iters", "50"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // 2 topologies of size 4.
    let rows = text.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(rows, 2, "got: {text}");
}
