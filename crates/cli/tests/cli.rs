//! End-to-end tests of the `fascia` binary.

use std::process::Command;

fn fascia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fascia"))
}

#[test]
fn templates_lists_gallery() {
    let out = fascia().arg("templates").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["U3-1", "U3-2", "U5-2", "U7-2", "U10-2", "U12-2"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn info_reports_circuit_stats() {
    let out = fascia().args(["info", "circuit"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("n: 252"));
    assert!(text.contains("m: 399"));
}

#[test]
fn count_and_exact_agree_on_circuit() {
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    assert!(exact_out.status.success());
    let exact_text = String::from_utf8(exact_out.stdout).unwrap();
    let exact: f64 = exact_text
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();

    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "500", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.1, "estimate {est} vs exact {exact}");
}

#[test]
fn adaptive_count_stops_early_and_reports_ci() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--adaptive",
            "--epsilon",
            "0.05",
            "--delta",
            "0.05",
            "--max-iters",
            "5000",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let iters: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(iters < 5000, "adaptive run used the whole budget: {text}");
    let saved: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations saved: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(iters + saved, 5000, "got: {text}");
    assert!(text.contains("std error: "), "got: {text}");
    assert!(text.contains("95% ci: "), "got: {text}");

    // And it lands near the exact count.
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    let exact: f64 = String::from_utf8(exact_out.stdout)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.15, "estimate {est} vs exact {exact}");
}

#[test]
fn sample_prints_valid_embeddings() {
    let out = fascia()
        .args(["sample", "circuit", "path4", "5", "--iters", "200"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rows: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(rows.len(), 5);
    for row in rows {
        let ids: Vec<u32> = row.split_whitespace().map(|x| x.parse().unwrap()).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&v| v < 252));
    }
}

#[test]
fn gen_roundtrips_through_file_input() {
    let dir = std::env::temp_dir().join("fascia_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circuit.txt");
    let out = fascia()
        .args(["gen", "circuit", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let info = fascia()
        .args(["info", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8(info.stdout).unwrap();
    assert!(text.contains("n: 252"), "got: {text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = fascia().arg("bogus").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_template_exits_nonzero() {
    let out = fascia()
        .args(["count", "circuit", "U9-9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

fn exit_code(out: &std::process::Output) -> i32 {
    out.status.code().unwrap_or(-1)
}

#[test]
fn help_documents_exit_codes_and_resilience_flags() {
    let out = fascia().arg("help").output().unwrap();
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "exit codes:",
        "--timeout-secs",
        "--checkpoint",
        "--resume",
        "--memory-budget",
    ] {
        assert!(text.contains(needle), "help is missing {needle}: {text}");
    }
}

#[test]
fn usage_errors_exit_2() {
    // Missing positional arguments.
    let out = fascia().args(["count", "circuit"]).output().unwrap();
    assert_eq!(exit_code(&out), 2);
    // Unknown flag (previously silently ignored).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    // Malformed flag value (previously a panic via expect()).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "many"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    // Flag at end of line with no value (previously an index panic).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn missing_input_file_exits_3() {
    let out = fascia()
        .args(["info", "/definitely/not/a/real/file.txt"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--resume",
            "/definitely/not/a/real/checkpoint.json",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
}

#[test]
fn timeout_zero_checkpoints_then_resume_matches_fresh_run() {
    let dir = std::env::temp_dir().join("fascia_cli_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("run.ckpt");
    std::fs::remove_file(&ck).ok();

    let fresh = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "300", "--seed", "7"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&fresh), 0);
    let fresh_text = String::from_utf8(fresh.stdout).unwrap();
    let fresh_estimate = fresh_text
        .lines()
        .find(|l| l.starts_with("estimate: "))
        .unwrap()
        .to_string();

    // A zero deadline cancels before any iteration completes: partial
    // exit code, but a valid (empty) checkpoint is still flushed.
    let timed = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "300",
            "--seed",
            "7",
            "--timeout-secs",
            "0",
            "--checkpoint",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&timed), 4, "stderr: {:?}", timed.stderr);
    assert!(ck.exists(), "cancelled run should still flush a checkpoint");

    // Resume adopts the checkpoint's seed and stop rule — no flags needed
    // — and reproduces the uninterrupted run exactly.
    let resumed = fascia()
        .args(["count", "circuit", "U3-1", "--resume", ck.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(exit_code(&resumed), 0, "stderr: {:?}", resumed.stderr);
    let resumed_text = String::from_utf8(resumed.stdout).unwrap();
    assert!(
        resumed_text.contains(&fresh_estimate),
        "resume diverged from fresh run:\nfresh: {fresh_text}\nresumed: {resumed_text}"
    );
    assert!(resumed_text.contains("iterations: 300"), "{resumed_text}");
    assert!(
        resumed_text.contains("stop cause: completed"),
        "{resumed_text}"
    );
    std::fs::remove_file(&ck).ok();
}

#[test]
fn memory_budget_degrades_layout_and_reports_metric() {
    // The engine splits the budget across outer-loop workers, so scale by
    // the machine's thread count to pin the per-worker limit at 128 KiB —
    // inside the band where path7 on circuit must fall back from the
    // preferred lazy layout to hashed, but still completes.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = (128 * 1024 * threads).to_string();
    let out = fascia()
        .args([
            "count",
            "circuit",
            "path7",
            "--iters",
            "20",
            "--seed",
            "9",
            "--memory-budget",
            &budget,
            "--metrics",
            "json",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0, "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    let fallbacks: u64 = text
        .split("\"engine.degrade.layout_fallbacks\":{\"total\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    assert!(fallbacks > 0, "expected layout fallbacks, got: {text}");
    assert!(text.contains("stop cause: completed"), "{text}");
}

#[test]
fn impossible_memory_budget_exits_4() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "5",
            "--memory-budget",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 4);
}

#[cfg(unix)]
#[test]
fn sigint_reports_partial_estimate_and_exits_4() {
    use std::io::Read;
    let mut child = fascia()
        .args([
            "count", "circuit", "path7", "--iters", "50000", "--seed", "3",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Let a few waves complete, then interrupt cooperatively.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(4));
    let mut text = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut text)
        .unwrap();
    assert!(text.contains("estimate: "), "no partial estimate: {text}");
    assert!(text.contains("stop cause: cancelled"), "{text}");
}

#[test]
fn motifs_scan_size_four() {
    let out = fascia()
        .args(["motifs", "circuit", "4", "--iters", "50"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // 2 topologies of size 4.
    let rows = text.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(rows, 2, "got: {text}");
}
