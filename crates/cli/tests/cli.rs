//! End-to-end tests of the `fascia` binary.

use std::process::Command;

fn fascia() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fascia"))
}

#[test]
fn templates_lists_gallery() {
    let out = fascia().arg("templates").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["U3-1", "U3-2", "U5-2", "U7-2", "U10-2", "U12-2"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn info_reports_circuit_stats() {
    let out = fascia().args(["info", "circuit"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("n: 252"));
    assert!(text.contains("m: 399"));
}

#[test]
fn count_and_exact_agree_on_circuit() {
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    assert!(exact_out.status.success());
    let exact_text = String::from_utf8(exact_out.stdout).unwrap();
    let exact: f64 = exact_text
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();

    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "500", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.1, "estimate {est} vs exact {exact}");
}

#[test]
fn adaptive_count_stops_early_and_reports_ci() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--adaptive",
            "--epsilon",
            "0.05",
            "--delta",
            "0.05",
            "--max-iters",
            "5000",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let iters: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(iters < 5000, "adaptive run used the whole budget: {text}");
    let saved: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("iterations saved: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(iters + saved, 5000, "got: {text}");
    assert!(text.contains("std error: "), "got: {text}");
    assert!(text.contains("95% ci: "), "got: {text}");

    // And it lands near the exact count.
    let exact_out = fascia()
        .args(["exact", "circuit", "U3-1"])
        .output()
        .unwrap();
    let exact: f64 = String::from_utf8(exact_out.stdout)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .unwrap()
        .parse()
        .unwrap();
    let est: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .unwrap()
        .parse()
        .unwrap();
    let err = (est - exact).abs() / exact;
    assert!(err < 0.15, "estimate {est} vs exact {exact}");
}

#[test]
fn sample_prints_valid_embeddings() {
    let out = fascia()
        .args(["sample", "circuit", "path4", "5", "--iters", "200"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rows: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(rows.len(), 5);
    for row in rows {
        let ids: Vec<u32> = row.split_whitespace().map(|x| x.parse().unwrap()).collect();
        assert_eq!(ids.len(), 4);
        assert!(ids.iter().all(|&v| v < 252));
    }
}

#[test]
fn gen_roundtrips_through_file_input() {
    let dir = std::env::temp_dir().join("fascia_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circuit.txt");
    let out = fascia()
        .args(["gen", "circuit", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let info = fascia()
        .args(["info", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8(info.stdout).unwrap();
    assert!(text.contains("n: 252"), "got: {text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = fascia().arg("bogus").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn unknown_template_exits_nonzero() {
    let out = fascia()
        .args(["count", "circuit", "U9-9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

fn exit_code(out: &std::process::Output) -> i32 {
    out.status.code().unwrap_or(-1)
}

#[test]
fn help_documents_exit_codes_and_resilience_flags() {
    let out = fascia().arg("help").output().unwrap();
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "exit codes:",
        "--timeout-secs",
        "--checkpoint",
        "--resume",
        "--memory-budget",
    ] {
        assert!(text.contains(needle), "help is missing {needle}: {text}");
    }
}

#[test]
fn usage_errors_exit_2() {
    // Missing positional arguments.
    let out = fascia().args(["count", "circuit"]).output().unwrap();
    assert_eq!(exit_code(&out), 2);
    // Unknown flag (previously silently ignored).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    // Malformed flag value (previously a panic via expect()).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "many"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    // Flag at end of line with no value (previously an index panic).
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn missing_input_file_exits_3() {
    let out = fascia()
        .args(["info", "/definitely/not/a/real/file.txt"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--resume",
            "/definitely/not/a/real/checkpoint.json",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 3);
}

#[test]
fn timeout_zero_checkpoints_then_resume_matches_fresh_run() {
    let dir = std::env::temp_dir().join("fascia_cli_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("run.ckpt");
    std::fs::remove_file(&ck).ok();

    let fresh = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "300", "--seed", "7"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&fresh), 0);
    let fresh_text = String::from_utf8(fresh.stdout).unwrap();
    let fresh_estimate = fresh_text
        .lines()
        .find(|l| l.starts_with("estimate: "))
        .unwrap()
        .to_string();

    // A zero deadline cancels before any iteration completes: partial
    // exit code, but a valid (empty) checkpoint is still flushed.
    let timed = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "300",
            "--seed",
            "7",
            "--timeout-secs",
            "0",
            "--checkpoint",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&timed), 4, "stderr: {:?}", timed.stderr);
    assert!(ck.exists(), "cancelled run should still flush a checkpoint");

    // Resume adopts the checkpoint's seed and stop rule — no flags needed
    // — and reproduces the uninterrupted run exactly.
    let resumed = fascia()
        .args(["count", "circuit", "U3-1", "--resume", ck.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(exit_code(&resumed), 0, "stderr: {:?}", resumed.stderr);
    let resumed_text = String::from_utf8(resumed.stdout).unwrap();
    assert!(
        resumed_text.contains(&fresh_estimate),
        "resume diverged from fresh run:\nfresh: {fresh_text}\nresumed: {resumed_text}"
    );
    assert!(resumed_text.contains("iterations: 300"), "{resumed_text}");
    assert!(
        resumed_text.contains("stop cause: completed"),
        "{resumed_text}"
    );
    std::fs::remove_file(&ck).ok();
}

#[test]
fn memory_budget_degrades_layout_and_reports_metric() {
    // The engine splits the budget across outer-loop workers, so scale by
    // the machine's thread count to pin the per-worker limit at 128 KiB —
    // inside the band where path7 on circuit must fall back from the
    // preferred lazy layout to hashed, but still completes.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let budget = (128 * 1024 * threads).to_string();
    let out = fascia()
        .args([
            "count",
            "circuit",
            "path7",
            "--iters",
            "20",
            "--seed",
            "9",
            "--memory-budget",
            &budget,
            "--metrics",
            "json",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 0, "stderr: {:?}", out.stderr);
    let text = String::from_utf8(out.stdout).unwrap();
    let fallbacks: u64 = text
        .split("\"engine.degrade.layout_fallbacks\":{\"total\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    assert!(fallbacks > 0, "expected layout fallbacks, got: {text}");
    assert!(text.contains("stop cause: completed"), "{text}");
}

#[test]
fn impossible_memory_budget_exits_4() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "5",
            "--memory-budget",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 4);
}

#[cfg(unix)]
#[test]
fn sigint_reports_partial_estimate_and_exits_4() {
    use std::io::Read;
    let mut child = fascia()
        .args([
            "count", "circuit", "path7", "--iters", "50000", "--seed", "3",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Let a few waves complete, then interrupt cooperatively.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(4));
    let mut text = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut text)
        .unwrap();
    assert!(text.contains("estimate: "), "no partial estimate: {text}");
    assert!(text.contains("stop cause: cancelled"), "{text}");
}

#[test]
fn motifs_scan_size_four() {
    let out = fascia()
        .args(["motifs", "circuit", "4", "--iters", "50"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // 2 topologies of size 4.
    let rows = text.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(rows, 2, "got: {text}");
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fascia_cli_obs_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn trace_flag_writes_valid_perfetto_json() {
    use fascia_core::resilience::Json;
    let path = tmp_path("run.trace.json");
    std::fs::remove_file(&path).ok();
    let out = fascia()
        .args(["count", "circuit", "U5-2", "--iters", "20", "--seed", "9"])
        .arg("--trace")
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("trace:"), "missing trace summary: {stderr}");

    // The exported document must parse with the same depth-capped parser
    // that guards checkpoint resume, be a top-level array, and keep
    // timestamps monotone within each thread track.
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("trace file parses");
    let events = doc.as_arr().expect("top level is an array");
    assert!(!events.is_empty());
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut names: std::collections::HashSet<String> = std::collections::HashSet::new();
    for ev in events {
        let obj = ev.as_obj().expect("event object");
        for key in ["name", "ph", "pid", "tid", "ts"] {
            assert!(Json::get(obj, key).is_some(), "missing {key}");
        }
        names.insert(
            Json::get(obj, "name")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
        let tid = Json::get(obj, "tid").and_then(Json::as_u64).unwrap();
        let ts = Json::get(obj, "ts").and_then(Json::as_f64).unwrap();
        let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
        assert!(ts >= prev, "ts not monotone on tid {tid}");
    }
    assert!(names.contains("iteration"), "{names:?}");
    assert!(names.contains("wave"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("dp.n")), "{names:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn heartbeat_file_has_stable_shape() {
    use fascia_core::resilience::Json;
    let path = tmp_path("run.heartbeat.json");
    std::fs::remove_file(&path).ok();
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "40", "--seed", "3"])
        .arg("--heartbeat")
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).expect("heartbeat written");
    let doc = Json::parse(&text).expect("heartbeat parses");
    let obj = doc.as_obj().expect("heartbeat is an object");
    assert_eq!(
        Json::get(obj, "schema").and_then(Json::as_str),
        Some("fascia-heartbeat/1")
    );
    assert_eq!(
        Json::get(obj, "status").and_then(Json::as_str),
        Some("finished")
    );
    assert_eq!(
        Json::get(obj, "stop_cause").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        Json::get(obj, "iterations_done").and_then(Json::as_u64),
        Some(40)
    );
    assert_eq!(Json::get(obj, "budget").and_then(Json::as_u64), Some(40));
    for key in [
        "pid",
        "phase",
        "percent",
        "estimate",
        "elapsed_secs",
        "updates",
    ] {
        assert!(Json::get(obj, key).is_some(), "missing {key}: {text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_prom_emits_exposition_format() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "30",
            "--seed",
            "5",
            "--metrics",
            "prom",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# TYPE"), "missing TYPE lines: {text}");
    assert!(
        text.contains("_bucket{le=\"+Inf\"}"),
        "missing +Inf bucket: {text}"
    );
    assert!(text.contains("_sum"), "missing _sum: {text}");
    assert!(text.contains("_count"), "missing _count: {text}");
}

#[test]
fn metrics_json_carries_run_metadata_and_trace_summary() {
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "25",
            "--seed",
            "7",
            "--metrics",
            "json",
            "--trace-buffer",
            "4096",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("fascia-obs/1"))
        .expect("metrics JSON line");
    for key in [
        "\"run\"",
        "\"started_unix_ms\"",
        "\"wall_ms\"",
        "\"threads\"",
        "\"parallel\"",
        "fascia-trace/1",
        "\"ring_capacity\":4096",
    ] {
        assert!(line.contains(key), "missing {key}: {line}");
    }
}

/// Multi-line `--metrics json` stdout contract: every emitted JSON line
/// is a standalone document — it parses through the depth-capped parser
/// on its own and carries a known schema tag — so run scripts can split
/// stdout by line and archive each document independently.
#[test]
fn metrics_json_stdout_lines_are_standalone_tagged_documents() {
    use fascia_core::resilience::Json;
    let out = fascia()
        .args([
            "count",
            "circuit",
            "U3-1",
            "--iters",
            "10",
            "--seed",
            "3",
            "--metrics",
            "json",
            "--mem-stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    const KNOWN: [&str; 4] = [
        "fascia-obs/1",
        "fascia-mem/1",
        "fascia-est/1",
        "fascia-ckpt/1",
    ];
    let mut seen = Vec::new();
    for line in text.lines().filter(|l| l.starts_with('{')) {
        let doc = Json::parse(line)
            .unwrap_or_else(|e| panic!("stdout line is not standalone JSON ({e:?}): {line}"));
        let schema = doc
            .as_obj()
            .and_then(|o| Json::get(o, "schema"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("stdout JSON line has no schema tag: {line}"));
        assert!(KNOWN.contains(&schema), "unknown schema {schema:?}: {line}");
        seen.push(schema.to_string());
    }
    for expected in ["fascia-obs/1", "fascia-mem/1", "fascia-est/1"] {
        assert!(
            seen.iter().any(|s| s == expected),
            "missing a {expected} stdout line; saw {seen:?}"
        );
    }
}

#[test]
fn trace_does_not_change_the_estimate() {
    let plain = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "60", "--seed", "11"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    let path = tmp_path("identity.trace.json");
    std::fs::remove_file(&path).ok();
    let traced = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "60", "--seed", "11"])
        .arg("--trace")
        .arg(&path)
        // Tiny buffer: overflow must also leave the result untouched.
        .args(["--trace-buffer", "8"])
        .output()
        .unwrap();
    assert!(traced.status.success());
    std::fs::remove_file(&path).ok();
    let line = |out: &[u8]| {
        String::from_utf8_lossy(out)
            .lines()
            .find(|l| l.starts_with("estimate: "))
            .unwrap()
            .to_string()
    };
    assert_eq!(line(&plain.stdout), line(&traced.stdout));
}

#[test]
fn profile_flag_writes_collapsed_stacks() {
    let path = tmp_path("run.collapsed");
    std::fs::remove_file(&path).ok();
    let out = fascia()
        .args(["count", "circuit", "U5-2", "--iters", "400", "--seed", "9"])
        .arg("--profile")
        .arg(&path)
        .args(["--profile-hz", "4000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("profile: "), "stderr: {stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(!text.is_empty(), "empty profile file");
    let mut stacks = Vec::new();
    for line in text.lines() {
        // The collapsed format speedscope/inferno ingest: stack, space,
        // integer value.
        let (stack, value) = line.rsplit_once(' ').unwrap();
        assert!(value.parse::<u64>().is_ok(), "bad value in: {line}");
        stacks.push(stack.to_string());
    }
    assert!(
        stacks
            .iter()
            .any(|s| s.split(';').any(|f| f == "iteration")),
        "no iteration frame in: {stacks:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_top_table_shows_in_pretty_metrics() {
    let out = fascia()
        .args(["count", "circuit", "U5-2", "--iters", "400", "--seed", "9"])
        .args(["--profile-hz", "4000"])
        .args(["--metrics", "pretty"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("profile: ") && stderr.contains(" Hz over "),
        "no sampling header in: {stderr}"
    );
    assert!(stderr.contains("iteration"), "no phase rows in: {stderr}");
}

#[test]
fn profile_rejects_nonpositive_rate() {
    let out = fascia()
        .args(["count", "circuit", "U3-1", "--iters", "10"])
        .args(["--profile-hz", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--profile-hz"), "stderr: {stderr}");
}

#[test]
fn mem_stats_attributes_allocations_without_changing_the_estimate() {
    use fascia_core::resilience::Json;
    let mem_path = tmp_path("run.mem.json");
    std::fs::remove_file(&mem_path).ok();
    let plain = fascia()
        .args(["count", "circuit", "U7-2", "--iters", "6", "--seed", "5"])
        .args(["--parallel", "serial"])
        .output()
        .unwrap();
    assert!(plain.status.success(), "{plain:?}");
    let measured = fascia()
        .args(["count", "circuit", "U7-2", "--iters", "6", "--seed", "5"])
        .args(["--parallel", "serial", "--metrics", "json", "--mem-stats"])
        .arg("--mem-out")
        .arg(&mem_path)
        .output()
        .unwrap();
    assert!(measured.status.success(), "{measured:?}");

    // Observe-only: the instrumented run prints the identical estimate.
    let line = |out: &[u8]| {
        String::from_utf8_lossy(out)
            .lines()
            .find(|l| l.starts_with("estimate: "))
            .unwrap()
            .to_string()
    };
    assert_eq!(line(&plain.stdout), line(&measured.stdout));

    // Both schema documents print as their own stdout lines.
    let stdout = String::from_utf8_lossy(&measured.stdout);
    assert!(stdout.lines().any(|l| l.contains("\"fascia-obs/1\"")));
    let mem_line = stdout
        .lines()
        .find(|l| l.starts_with("{\"schema\":\"fascia-mem/1\""))
        .expect("fascia-mem/1 stdout line");
    let stderr = String::from_utf8_lossy(&measured.stderr);
    assert!(stderr.contains("mem: "), "summary on stderr: {stderr}");

    // The written file matches the stdout line and meets the attribution
    // bar: at least 90% of allocated bytes land in a named phase.
    let text = std::fs::read_to_string(&mem_path).unwrap();
    assert_eq!(text.trim_end(), mem_line);
    let doc = Json::parse(&text).unwrap();
    let obj = doc.as_obj().unwrap();
    let alloc = Json::get(obj, "allocator").and_then(Json::as_obj).unwrap();
    assert_eq!(Json::get(alloc, "enabled").and_then(Json::as_f64), None);
    assert!(matches!(
        Json::get(alloc, "enabled"),
        Some(Json::Bool(true))
    ));
    let frac = Json::get(alloc, "attributed_fraction")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(frac >= 0.90, "attribution below the bar: {frac}");
    // Per-node table stats with access patterns rode along.
    let tables = Json::get(obj, "tables").and_then(Json::as_obj).unwrap();
    assert!(!tables.is_empty());
    assert!(tables.iter().all(|(k, _)| k.starts_with("dp.n")));
    assert!(
        tables
            .iter()
            .any(|(_, v)| v.as_obj().is_some_and(|t| Json::get(t, "access").is_some())),
        "access sections present: {text}"
    );
    std::fs::remove_file(&mem_path).ok();
}

#[test]
fn report_renders_a_run_directory_and_sweeps_stale_temp_files() {
    let dir = std::env::temp_dir().join(format!("fascia-report-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let hb = dir.join("hb.json");
    // A predecessor that died between write and rename left this behind;
    // the run's clean exit must sweep it.
    let stale = dir.join("hb.json.tmp");
    std::fs::write(&stale, "{\"torn\":").unwrap();
    let out = fascia()
        .args(["count", "circuit", "U5-2", "--iters", "4", "--seed", "3"])
        .args(["--parallel", "serial", "--metrics", "json", "--mem-stats"])
        .arg("--mem-out")
        .arg(dir.join("mem.json"))
        .arg("--heartbeat")
        .arg(&hb)
        .arg("--trace")
        .arg(dir.join("trace.json"))
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(hb.exists());
    assert!(!stale.exists(), "clean exit removes stale .tmp files");
    // The metrics document goes to stdout; archive it like a run script.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let obs_line = stdout
        .lines()
        .find(|l| l.contains("\"fascia-obs/1\""))
        .unwrap();
    std::fs::write(dir.join("metrics.json"), obs_line).unwrap();

    let report = fascia().arg("report").arg(&dir).output().unwrap();
    assert!(report.status.success(), "{report:?}");
    let text = String::from_utf8_lossy(&report.stdout);
    for needle in ["Overview", "Allocator", "DP tables", "Metrics"] {
        assert!(text.contains(needle), "missing {needle}:\n{text}");
    }
    let html = std::fs::read_to_string(dir.join("report.html")).unwrap();
    assert!(html.starts_with("<!doctype html>"), "html rendered");
    assert!(html.contains("DP tables"));

    // --no-html skips the file; a custom --html path lands elsewhere.
    let custom = dir.join("custom.html");
    let again = fascia()
        .arg("report")
        .arg(&dir)
        .arg("--html")
        .arg(&custom)
        .output()
        .unwrap();
    assert!(again.status.success(), "{again:?}");
    assert!(custom.exists());
    std::fs::remove_dir_all(&dir).ok();
}
