//! `fascia serve` — the supervised resident counting service.
//!
//! Thin argument layer over [`fascia_svc::Service`]: parse the spool
//! path and supervision knobs, optionally ingest a JSONL job stream
//! from stdin, then hand control to the service loop. SIGINT/SIGTERM
//! set the shared stop flag, so a signalled daemon finishes (or
//! detaches) the job in flight, dumps `chaos.events`, and exits with
//! its summary — anything harsher (SIGKILL) is exactly what the spool's
//! durable state machine recovers from on the next start.

use crate::{flag_parse, flag_value, usage_err, CliError, EXIT_OK, INTERRUPTED};
use fascia_core::chaos::{ChaosSpec, CHAOS_ENV};
use fascia_svc::{
    AdminConfig, AdminServer, AdminState, BackoffPolicy, MonotonicClock, Service, ServiceConfig,
    SupervisorConfig,
};
use std::time::Duration;

pub(crate) fn cmd_serve(rest: &[String]) -> Result<i32, CliError> {
    let mut spool: Option<String> = None;
    let mut cfg = ServiceConfig {
        scan_interval: Duration::from_millis(500),
        ..ServiceConfig::default()
    };
    let mut from_stdin = false;
    let mut admin_addr: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--spool" => {
                spool = Some(flag_value(rest, i, "--spool")?.to_string());
                i += 1;
            }
            "--once" => cfg.once = true,
            "--stdin" => from_stdin = true,
            "--admin-addr" => {
                admin_addr = Some(flag_value(rest, i, "--admin-addr")?.to_string());
                i += 1;
            }
            "--chaos" => {
                let raw = flag_value(rest, i, "--chaos")?;
                cfg.chaos = Some(
                    raw.parse::<ChaosSpec>()
                        .map_err(|e| CliError::Usage(format!("--chaos: {e}")))?,
                );
                i += 1;
            }
            "--poll-ms" => {
                cfg.supervisor.poll = Duration::from_millis(flag_parse(rest, i, "--poll-ms")?);
                i += 1;
            }
            "--stall-timeout-ms" => {
                cfg.supervisor.stall_timeout =
                    Duration::from_millis(flag_parse(rest, i, "--stall-timeout-ms")?);
                i += 1;
            }
            "--grace-ms" => {
                cfg.supervisor.grace = Duration::from_millis(flag_parse(rest, i, "--grace-ms")?);
                i += 1;
            }
            "--scan-ms" => {
                cfg.scan_interval = Duration::from_millis(flag_parse(rest, i, "--scan-ms")?);
                i += 1;
            }
            "--max-attempts" => {
                let n: u32 = flag_parse(rest, i, "--max-attempts")?;
                if n == 0 {
                    return Err(CliError::Usage("--max-attempts must be ≥ 1".into()));
                }
                cfg.supervisor.backoff.max_attempts = n;
                i += 1;
            }
            "--backoff-base-ms" => {
                cfg.supervisor.backoff.base =
                    Duration::from_millis(flag_parse(rest, i, "--backoff-base-ms")?);
                i += 1;
            }
            "--backoff-cap-ms" => {
                cfg.supervisor.backoff.cap =
                    Duration::from_millis(flag_parse(rest, i, "--backoff-cap-ms")?);
                i += 1;
            }
            other if !other.starts_with("--") && spool.is_none() => {
                spool = Some(other.to_string());
            }
            other => return Err(usage_err(&format!("serve: unknown flag '{other}'"))),
        }
        i += 1;
    }
    let Some(spool) = spool else {
        return Err(usage_err("serve needs a spool directory (--spool DIR)"));
    };
    // The environment schedule applies when no --chaos flag overrides it
    // (the chaos-soak script and soak gate drive the service this way).
    if cfg.chaos.is_none() {
        if let Ok(raw) = std::env::var(CHAOS_ENV) {
            cfg.chaos = Some(
                raw.parse::<ChaosSpec>()
                    .map_err(|e| CliError::Usage(format!("{CHAOS_ENV}: {e}")))?,
            );
        }
    }
    sanity_check(&cfg.supervisor)?;
    install_sigterm_handler();

    let svc = Service::open(&spool, cfg)
        .map_err(|e| CliError::Io(format!("cannot open spool {spool:?}: {e}")))?;
    if from_stdin {
        let stdin = std::io::stdin();
        let (accepted, rejected) = svc
            .ingest_jsonl(&MonotonicClock, stdin.lock())
            .map_err(|e| CliError::Io(format!("stdin job stream: {e}")))?;
        eprintln!("fascia-svc: queued {accepted} job(s), rejected {rejected}");
    }
    // The admin plane is opt-in and read-only: it scrapes the shared
    // metrics registry and the spool's files, so enabling it cannot
    // perturb job execution or chaos replay. The bound address (useful
    // with port 0) is announced on stderr and in `<spool>/admin.addr`.
    let admin = match admin_addr.as_deref() {
        Some(addr) => {
            let state = AdminState {
                spool: svc.spool().clone(),
                metrics: svc.metrics(),
            };
            let server = AdminServer::start(addr, state, AdminConfig::default())
                .map_err(|e| CliError::Io(format!("cannot bind admin addr {addr:?}: {e}")))?;
            let bound = server.local_addr().to_string();
            let _ = fascia_core::resilience::atomic_write(
                &svc.spool().root().join("admin.addr"),
                &format!("{bound}\n"),
            );
            eprintln!("fascia-svc: admin endpoint on http://{bound}");
            Some(server)
        }
        None => None,
    };
    let summary = svc.run(&MonotonicClock, Some(&INTERRUPTED));
    if let Some(server) = admin {
        server.shutdown();
        let _ = std::fs::remove_file(svc.spool().root().join("admin.addr"));
    }
    println!("{}", summary.to_json());
    if summary.result_write_failures > 0 {
        return Err(CliError::Run(format!(
            "{} result(s) could not be recorded",
            summary.result_write_failures
        )));
    }
    Ok(EXIT_OK)
}

fn sanity_check(sup: &SupervisorConfig) -> Result<(), CliError> {
    let BackoffPolicy { base, cap, .. } = sup.backoff;
    if base > cap {
        return Err(CliError::Usage(format!(
            "--backoff-base-ms ({}ms) exceeds --backoff-cap-ms ({}ms)",
            base.as_millis(),
            cap.as_millis()
        )));
    }
    if sup.poll.is_zero() || sup.stall_timeout.is_zero() {
        return Err(CliError::Usage(
            "--poll-ms and --stall-timeout-ms must be positive".into(),
        ));
    }
    Ok(())
}

/// SIGTERM drains like SIGINT: same stop flag the counting subcommands
/// watch, same raw-FFI idiom as `install_sigint_handler`.
#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_sig: i32) {
        INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}
