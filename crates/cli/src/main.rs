//! `fascia` — command-line interface to the FASCIA subgraph counter.
//!
//! Subcommands:
//!
//! * `count <dataset|path> <template> [opts]` — approximate count,
//! * `exact <dataset|path> <template>` — exhaustive exact count,
//! * `motifs <dataset|path> <size> [opts]` — motif profile over all tree
//!   topologies of a size,
//! * `gdd <dataset|path> [opts]` — graphlet degree distribution for the
//!   U5-2 central orbit,
//! * `sample <dataset|path> <template> <count>` — draw uniform random
//!   occurrences,
//! * `serve --spool <dir>` — resident counting service over a durable job
//!   spool (supervision, retry/backoff, graceful degradation, crash
//!   recovery),
//! * `gen <dataset> <out.txt>` — write a synthetic dataset as an edge list,
//! * `info <dataset|path>` — print network statistics,
//! * `templates` — list the Figure 2 template gallery.
//!
//! `<dataset>` is a Table I name (portland, enron, gnp, slashdot, road,
//! circuit, ecoli, yeast, hpylori, celegans); anything else is treated as
//! an edge-list file path. `<template>` is a Figure 2 name (e.g. U7-2) or
//! `path<k>` / `star<k>`.
//!
//! Exit codes are stable (scripts may rely on them): 0 success, 1 runtime
//! failure, 2 usage error, 3 i/o or input-file error, 4 partial result
//! (memory budget exceeded, deadline passed, or interrupted — a partial
//! estimate and checkpoint may still have been produced).
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod report;
mod serve;

use fascia_core::engine::{count_template, CountConfig, CountError};
use fascia_core::est::EstCollector;
use fascia_core::exact::count_exact;
use fascia_core::gdd::{estimate_gdd, GddHistogram};
use fascia_core::mem::MemCollector;
use fascia_core::motifs::motif_profile;
use fascia_core::parallel::ParallelMode;
use fascia_core::progress::{Progress, ProgressConfig};
use fascia_core::resilience::{atomic_write, CancelToken, Checkpoint, CheckpointConfig};
use fascia_core::sample::sample_embeddings;
use fascia_core::stats::StopRule;
use fascia_graph::datasets::scale_from_env;
use fascia_graph::io::load_edge_list;
use fascia_graph::{Dataset, Graph};
use fascia_obs::{Metrics, MetricsReport, Profiler, RunInfo, Tracer};
use fascia_table::TableKind;
use fascia_template::{NamedTemplate, PartitionStrategy, Template};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The whole process runs under the counting allocator. Disabled (the
/// default) it forwards straight to the system allocator after one
/// relaxed atomic load — `--mem-stats` flips it on for a run, and the
/// fascia-mem/1 document reports what it measured.
#[global_allocator]
static GLOBAL_ALLOC: fascia_obs::alloc::CountingAlloc = fascia_obs::alloc::CountingAlloc;

/// Set by the SIGINT handler; every counting run watches it through a
/// [`CancelToken`], so Ctrl-C flushes a final checkpoint and reports the
/// partial estimate instead of killing the process mid-table.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

const EXIT_OK: i32 = 0;
const EXIT_RUN: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_IO: i32 = 3;
const EXIT_PARTIAL: i32 = 4;

/// A failure with a stable process exit code. Everything the CLI can
/// reject flows through here — no `panic!`/`unwrap` paths remain (the
/// crate denies `clippy::unwrap_used`).
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown flag, missing value, malformed number).
    Usage(String),
    /// File problem: graph/template/checkpoint unreadable or malformed.
    Io(String),
    /// The engine rejected an otherwise well-formed request.
    Run(String),
    /// The run ended early and only partial output exists.
    Partial(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io(_) => EXIT_IO,
            CliError::Run(_) => EXIT_RUN,
            CliError::Partial(_) => EXIT_PARTIAL,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Run(m) | CliError::Partial(m) => m,
        }
    }
}

fn main() {
    install_sigint_handler();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("run `fascia help` for usage");
            }
            e.exit_code()
        }
    };
    std::process::exit(code);
}

/// Installs a minimal async-signal-safe SIGINT handler (only touches one
/// relaxed atomic). Raw libc `signal` via FFI keeps the CLI free of
/// signal-crate dependencies.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Whether stderr is an interactive terminal (drives the default for the
/// live progress line). Raw libc `isatty` via FFI, like the signal
/// handler, to stay dependency-free.
#[cfg(unix)]
fn stderr_is_tty() -> bool {
    extern "C" {
        fn isatty(fd: i32) -> i32;
    }
    const STDERR_FILENO: i32 = 2;
    unsafe { isatty(STDERR_FILENO) == 1 }
}

#[cfg(not(unix))]
fn stderr_is_tty() -> bool {
    false
}

fn run(args: &[String]) -> Result<i32, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage(usage_text()));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "count" => cmd_count(rest),
        "exact" => cmd_exact(rest),
        "motifs" => cmd_motifs(rest),
        "gdd" => cmd_gdd(rest),
        "sample" => cmd_sample(rest),
        "distsim" => cmd_distsim(rest),
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "report" => report::cmd_report(rest),
        "serve" => serve::cmd_serve(rest),
        "templates" => {
            cmd_templates();
            Ok(EXIT_OK)
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage_text());
            Ok(EXIT_OK)
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{}",
            usage_text()
        ))),
    }
}

fn usage_text() -> String {
    "usage: fascia <count|exact|motifs|gdd|sample|distsim|serve|gen|info|report|templates|help> ...\n\
     \x20 count  <dataset|file> <template> [--iters N] [--table naive|improved|hash] [--kernel scalar|vectorized] [--strategy one|balanced] [--parallel serial|inner|outer|auto] [--seed S] [--metrics off|pretty|json|prom] [adaptive flags] [resilience flags] [observability flags]\n\
     \x20 exact  <dataset|file> <template>\n\
     \x20 motifs <dataset|file> <size> [--iters N]\n\
     \x20 gdd    <dataset|file> [--iters N]\n\
     \x20 sample <dataset|file> <template> <count> [--iters N] [--seed S]\n\
     \x20 distsim <dataset|file> <template> <ranks> [--iters N]\n\
     \x20 serve  [--spool] DIR [--once] [--stdin] [--chaos SPEC] [--admin-addr HOST:PORT] [--poll-ms N]\n\
     \x20        [--stall-timeout-ms N] [--grace-ms N] [--scan-ms N] [--max-attempts N]\n\
     \x20        [--backoff-base-ms N] [--backoff-cap-ms N]\n\
     \x20        resident counting service: runs fascia-job/1 documents from DIR/jobs (add more any\n\
     \x20        time; --stdin also queues a JSONL stream), writes durable fascia-job-result/1\n\
     \x20        documents to DIR/results, retries transient failures with capped jittered backoff,\n\
     \x20        degrades to honest partial estimates on deadline/budget, and resumes killed jobs\n\
     \x20        from their checkpoints; --once drains the queue and exits; --chaos (or env\n\
     \x20        FASCIA_CHAOS) runs a deterministic fault schedule, logged to DIR/chaos.events;\n\
     \x20        every lifecycle transition lands in DIR/events/events.jsonl (fascia-events/1);\n\
     \x20        --admin-addr serves read-only /healthz /metrics /jobs /jobs/<id> /version over\n\
     \x20        HTTP (port 0 picks a free port; the bound address lands in DIR/admin.addr)\n\
     \x20 gen    <dataset> <out.txt>\n\
     \x20 info   <dataset|file>\n\
     \x20 report <run-dir> [--baseline BENCH.json] [--html FILE] [--no-html]\n\
     \x20        render one unified terminal + self-contained HTML report from a directory of\n\
     \x20        observability artifacts (fascia-obs/mem/perf/heartbeat JSON, Chrome traces,\n\
     \x20        collapsed profiles); --baseline diffs fascia-perf/1 medians against an archive;\n\
     \x20        a spool dir's events/events.jsonl adds a service section (job table, retry\n\
     \x20        causes, queue-wait / end-to-end latency quantiles)\n\
     \x20 templates\n\
     adaptive flags (every counting subcommand): --adaptive [--epsilon E] [--delta D] [--max-iters M]\n\
     \x20 stop iterating once the estimate is within ±E (relative, default 0.05)\n\
     \x20 at confidence 1-D (default 0.95), hard budget M (default 10000);\n\
     \x20 --iters N becomes the iteration floor; --epsilon/--delta/--max-iters imply --adaptive\n\
     resilience flags (every counting subcommand):\n\
     \x20 --timeout-secs T     stop after T seconds (fractions ok) and report the partial estimate\n\
     \x20 --checkpoint FILE    write an atomic resume checkpoint after every wave and at exit\n\
     \x20 --resume FILE        continue a checkpointed run (count only); adopts the checkpoint's\n\
     \x20                      seed and stop rule unless --seed/--iters/adaptive flags are given\n\
     \x20 --memory-budget B    cap DP-table memory at B bytes (k/m/g suffixes ok); the engine\n\
     \x20                      degrades dense→lazy→hashed layouts before giving up\n\
     observability flags (every counting subcommand):\n\
     \x20 --metrics MODE       off|pretty (stderr table)|json (fascia-obs/1 line)|prom (Prometheus text)\n\
     \x20 --trace FILE         record a flight-recorder timeline and write Chrome trace-event JSON\n\
     \x20                      (load in Perfetto / chrome://tracing); bounded memory, overflow only\n\
     \x20                      drops events (counted), never changes results\n\
     \x20 --trace-buffer N     per-thread trace ring capacity in events (default 16384)\n\
     \x20 --heartbeat FILE     rewrite FILE atomically with a fascia-heartbeat/1 status document\n\
     \x20                      during the run (iteration progress, estimate, CI, ETA)\n\
     \x20 --progress           force the live stderr progress line (default: only when stderr is a TTY)\n\
     \x20 --profile FILE       sample the engine's phase stacks during the run and write collapsed-\n\
     \x20                      stack text (load with inferno-flamegraph or speedscope); with\n\
     \x20                      --metrics pretty the top phases by self time print to stderr too\n\
     \x20 --profile-hz N       sampling rate for --profile (default ~1000)\n\
     \x20 --mem-stats          enable the counting allocator and table access telemetry; emits a\n\
     \x20                      fascia-mem/1 document (own stdout line with --metrics json, summary\n\
     \x20                      on stderr otherwise); observe-only — counts are bitwise unchanged\n\
     \x20 --mem-out FILE       also write the fascia-mem/1 document to FILE (implies --mem-stats)\n\
     \x20 --est-trace FILE     capture the estimator's convergence: a bounded per-iteration ledger\n\
     \x20                      plus per-colorset / per-degree-class variance strata, written to FILE\n\
     \x20                      as a fascia-est/1 document (also its own stdout line with --metrics\n\
     \x20                      json); observe-only — counts are bitwise unchanged\n\
     Ctrl-C cancels cooperatively: the current wave is discarded, a final checkpoint is\n\
     written (with --checkpoint), and the partial estimate is reported.\n\
     exit codes: 0 ok, 1 runtime failure, 2 usage, 3 i/o or bad input file,\n\
     \x20 4 partial result (budget exceeded, timeout, or interrupt)"
        .to_string()
}

fn usage_err(what: &str) -> CliError {
    CliError::Usage(format!("{what}\n{}", usage_text()))
}

fn parse_dataset(name: &str) -> Option<Dataset> {
    Some(match name.to_ascii_lowercase().as_str() {
        "portland" => Dataset::Portland,
        "enron" => Dataset::Enron,
        "gnp" => Dataset::Gnp,
        "slashdot" => Dataset::Slashdot,
        "road" | "paroad" => Dataset::PaRoad,
        "circuit" => Dataset::Circuit,
        "ecoli" => Dataset::EColi,
        "yeast" | "scerevisiae" => Dataset::SCerevisiae,
        "hpylori" => Dataset::HPylori,
        "celegans" => Dataset::CElegans,
        _ => return None,
    })
}

fn load_graph(spec: &str) -> Result<Graph, CliError> {
    if let Some(ds) = parse_dataset(spec) {
        let scale = scale_from_env();
        eprintln!(
            "generating {} stand-in (scale 1/{scale}, FASCIA_SCALE to change)",
            ds.spec().name
        );
        Ok(ds.generate(scale, 0xDA7A))
    } else {
        load_edge_list(spec)
            .map(|(g, _)| g)
            .map_err(|e| CliError::Io(format!("cannot load '{spec}': {e}")))
    }
}

fn parse_template(spec: &str) -> Result<Template, CliError> {
    if let Some(named) = NamedTemplate::by_name(spec) {
        return Ok(named.template());
    }
    if let Some(k) = spec
        .strip_prefix("path")
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Ok(Template::path(k));
    }
    if let Some(k) = spec
        .strip_prefix("star")
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Ok(Template::star(k));
    }
    if std::path::Path::new(spec).exists() {
        return fascia_template::io::load_template(spec)
            .map_err(|e| CliError::Io(format!("cannot load template file '{spec}': {e}")));
    }
    Err(CliError::Usage(format!(
        "unknown template '{spec}' (use U7-2, path5, star6, or a template file path)"
    )))
}

/// Returns the value following flag `rest[i]`, or a usage error naming it.
fn flag_value<'a>(rest: &'a [String], i: usize, flag: &str) -> Result<&'a str, CliError> {
    rest.get(i + 1)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

/// Parses a flag value, mapping failure to a usage error that names the
/// flag and echoes the offending text.
fn flag_parse<T: std::str::FromStr>(rest: &[String], i: usize, flag: &str) -> Result<T, CliError> {
    let raw = flag_value(rest, i, flag)?;
    raw.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse {raw:?}")))
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `--memory-budget 512m`.
fn parse_size(raw: &str) -> Option<usize> {
    let s = raw.trim().to_ascii_lowercase();
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' => (&s[..s.len() - 1], 1usize << 10),
        b'm' => (&s[..s.len() - 1], 1usize << 20),
        b'g' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s.as_str(), 1usize),
    };
    digits.parse::<usize>().ok()?.checked_mul(mult)
}

/// Observability outputs requested on the command line, plus the clocks
/// that stamp the run metadata in the `--metrics json` report.
struct ObsFlags {
    report: MetricsReport,
    /// Write the Chrome trace-event JSON here after the run (atomically).
    trace_path: Option<PathBuf>,
    /// Write collapsed-stack profile text here after the run (atomically).
    profile_path: Option<PathBuf>,
    /// `--mem-stats`: the counting allocator and table access telemetry
    /// are live for this run; emit a fascia-mem/1 document at the end.
    mem_stats: bool,
    /// Write the fascia-mem/1 document here after the run (atomically).
    mem_out: Option<PathBuf>,
    /// Write the fascia-est/1 document here after the run (atomically).
    est_trace: Option<PathBuf>,
    started_unix_ms: u64,
    t0: Instant,
}

fn parse_flags(rest: &[String]) -> Result<(CountConfig, ObsFlags), CliError> {
    let mut cfg = CountConfig::default();
    let mut report = MetricsReport::Off;
    let mut iters_given = false;
    let mut seed_given = false;
    let mut adaptive = false;
    let mut epsilon = 0.05f64;
    let mut delta = 0.05f64;
    let mut max_iters = StopRule::DEFAULT_MAX_ITERS;
    let mut timeout: Option<Duration> = None;
    let mut resume_path: Option<String> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut trace_buffer: Option<usize> = None;
    let mut profile_path: Option<PathBuf> = None;
    let mut profile_hz: Option<f64> = None;
    let mut heartbeat: Option<PathBuf> = None;
    let mut progress_flag = false;
    let mut mem_stats = false;
    let mut mem_out: Option<PathBuf> = None;
    let mut est_trace: Option<PathBuf> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--iters" => {
                cfg.iterations = flag_parse(rest, i, "--iters")?;
                iters_given = true;
                i += 2;
            }
            "--adaptive" => {
                adaptive = true;
                i += 1;
            }
            "--epsilon" => {
                epsilon = flag_parse(rest, i, "--epsilon")?;
                adaptive = true;
                i += 2;
            }
            "--delta" => {
                delta = flag_parse(rest, i, "--delta")?;
                adaptive = true;
                i += 2;
            }
            "--max-iters" => {
                max_iters = flag_parse(rest, i, "--max-iters")?;
                adaptive = true;
                i += 2;
            }
            "--seed" => {
                cfg.seed = flag_parse(rest, i, "--seed")?;
                seed_given = true;
                i += 2;
            }
            "--table" => {
                cfg.table = match flag_value(rest, i, "--table")? {
                    "naive" | "dense" => TableKind::Dense,
                    "improved" | "lazy" => TableKind::Lazy,
                    "hash" => TableKind::Hash,
                    other => {
                        return Err(CliError::Usage(format!("unknown table kind '{other}'")));
                    }
                };
                i += 2;
            }
            "--kernel" => {
                cfg.kernel = flag_value(rest, i, "--kernel")?
                    .parse()
                    .map_err(CliError::Usage)?;
                i += 2;
            }
            "--strategy" => {
                cfg.strategy = match flag_value(rest, i, "--strategy")? {
                    "one" | "one-at-a-time" => PartitionStrategy::OneAtATime,
                    "balanced" => PartitionStrategy::Balanced,
                    other => {
                        return Err(CliError::Usage(format!("unknown strategy '{other}'")));
                    }
                };
                i += 2;
            }
            "--metrics" => {
                let raw = flag_value(rest, i, "--metrics")?;
                report = MetricsReport::parse(raw).ok_or_else(|| {
                    CliError::Usage(format!("unknown metrics mode '{raw}' (off|pretty|json)"))
                })?;
                i += 2;
            }
            "--timeout-secs" => {
                let secs: f64 = flag_parse(rest, i, "--timeout-secs")?;
                timeout = Some(Duration::try_from_secs_f64(secs).map_err(|_| {
                    CliError::Usage(format!("--timeout-secs: {secs} is not a valid duration"))
                })?);
                i += 2;
            }
            "--checkpoint" => {
                cfg.checkpoint = Some(CheckpointConfig::new(flag_value(rest, i, "--checkpoint")?));
                i += 2;
            }
            "--resume" => {
                resume_path = Some(flag_value(rest, i, "--resume")?.to_string());
                i += 2;
            }
            "--memory-budget" => {
                let raw = flag_value(rest, i, "--memory-budget")?;
                cfg.memory_budget_bytes = Some(parse_size(raw).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--memory-budget: cannot parse {raw:?} (use bytes with optional k/m/g)"
                    ))
                })?);
                i += 2;
            }
            "--trace" => {
                trace_path = Some(PathBuf::from(flag_value(rest, i, "--trace")?));
                i += 2;
            }
            "--trace-buffer" => {
                trace_buffer = Some(flag_parse(rest, i, "--trace-buffer")?);
                i += 2;
            }
            "--profile" => {
                profile_path = Some(PathBuf::from(flag_value(rest, i, "--profile")?));
                i += 2;
            }
            "--profile-hz" => {
                let hz: f64 = flag_parse(rest, i, "--profile-hz")?;
                if hz.is_nan() || hz <= 0.0 {
                    return Err(CliError::Usage(format!(
                        "--profile-hz: {hz} is not a positive rate"
                    )));
                }
                profile_hz = Some(hz);
                i += 2;
            }
            "--heartbeat" => {
                heartbeat = Some(PathBuf::from(flag_value(rest, i, "--heartbeat")?));
                i += 2;
            }
            "--progress" => {
                progress_flag = true;
                i += 1;
            }
            "--parallel" => {
                cfg.parallel = match flag_value(rest, i, "--parallel")? {
                    "serial" => ParallelMode::Serial,
                    "inner" => ParallelMode::InnerLoop,
                    "outer" => ParallelMode::OuterLoop,
                    "auto" | "hybrid" => ParallelMode::Hybrid,
                    other => {
                        return Err(CliError::Usage(format!("unknown parallel mode '{other}'")));
                    }
                };
                i += 2;
            }
            "--mem-stats" => {
                mem_stats = true;
                i += 1;
            }
            "--mem-out" => {
                mem_out = Some(PathBuf::from(flag_value(rest, i, "--mem-out")?));
                mem_stats = true;
                i += 2;
            }
            "--est-trace" => {
                est_trace = Some(PathBuf::from(flag_value(rest, i, "--est-trace")?));
                i += 2;
            }
            other => {
                return Err(CliError::Usage(format!("unknown flag '{other}'")));
            }
        }
    }
    if let Some(path) = resume_path {
        let ck = Checkpoint::load(std::path::Path::new(&path))
            .map_err(|e| CliError::Io(format!("cannot resume from '{path}': {e}")))?;
        // The checkpoint is authoritative for anything the user did not
        // override; explicit conflicting flags surface as a
        // resume-mismatch error from the engine rather than silently
        // changing the run's meaning.
        if !seed_given {
            cfg.seed = ck.seed;
        }
        if !iters_given && !adaptive {
            match ck.rule.clone() {
                StopRule::FixedIterations(n) => cfg.iterations = n,
                rule @ StopRule::RelativeError { .. } => cfg.stop = Some(rule),
            }
        }
        cfg.resume = Some(ck);
    }
    if adaptive {
        // `--iters` becomes the convergence floor; without it, the
        // library default floor applies.
        let min_iters = if iters_given {
            cfg.iterations.clamp(2, max_iters)
        } else {
            StopRule::DEFAULT_MIN_ITERS.min(max_iters)
        };
        cfg.stop = Some(StopRule::RelativeError {
            epsilon,
            delta,
            min_iters,
            max_iters,
        });
    }
    if report != MetricsReport::Off {
        cfg.metrics = Some(Arc::new(Metrics::new()));
    }
    if mem_stats {
        // Enabled here — after the caller loaded the graph — so the
        // allocator's totals are dominated by attributable DP work, not
        // input parsing. Reset first: the flag is process-global and a
        // prior enable (e.g. in tests driving parse_flags twice) must not
        // leak bytes into this run's document.
        fascia_obs::alloc::reset();
        fascia_obs::alloc::set_enabled(true);
        fascia_table::set_access_tracking(true);
        cfg.mem = Some(Arc::new(MemCollector::new()));
    }
    // The estimator collector rides along whenever its file was requested
    // or the run reports JSON metrics (the fascia-est/1 document is then
    // embedded as its own stdout line next to fascia-obs/1).
    if est_trace.is_some() || report == MetricsReport::Json {
        cfg.est = Some(Arc::new(EstCollector::new()));
    }
    if trace_path.is_some() || trace_buffer.is_some() {
        cfg.tracer = Some(Arc::new(match trace_buffer {
            Some(n) => Tracer::with_capacity(n),
            None => Tracer::new(),
        }));
    }
    if profile_path.is_some() || profile_hz.is_some() {
        let p = Arc::new(match profile_hz {
            Some(hz) => Profiler::with_hz(hz),
            None => Profiler::new(),
        });
        // Sampling starts now and stops in `emit_observability`, so the
        // profile covers the whole command, idle time included — the
        // `(idle)` line keeps the collapsed values summing to wall time.
        p.start();
        cfg.profiler = Some(p);
    }
    // The progress line defaults on for interactive runs; --progress
    // forces it for piped stderr (e.g. when watching a log file).
    let want_line = progress_flag || stderr_is_tty();
    if want_line || heartbeat.is_some() {
        cfg.progress = Some(Arc::new(Progress::new(ProgressConfig {
            stderr_line: want_line,
            heartbeat,
            min_interval: Duration::from_millis(200),
            job_id: None,
        })));
    }
    // Every counting run watches the process-wide interrupt flag; the
    // deadline rides on the same token.
    let mut token = CancelToken::new().external_flag(&INTERRUPTED);
    if let Some(after) = timeout {
        token = token.deadline(after);
    }
    cfg.cancel = Some(token);
    let started_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    Ok((
        cfg,
        ObsFlags {
            report,
            trace_path,
            profile_path,
            mem_stats,
            mem_out,
            est_trace,
            started_unix_ms,
            t0: Instant::now(),
        },
    ))
}

/// Maps engine failures to exit codes: resource exhaustion and
/// cancellation-before-any-result are "partial" (4), everything else is a
/// runtime failure (1) except resume mismatches, which are usage (2).
fn map_count_err(what: &str, e: CountError) -> CliError {
    match e {
        CountError::BudgetExceeded { .. } | CountError::Cancelled => {
            CliError::Partial(format!("{what}: {e}"))
        }
        CountError::ResumeMismatch(_) => CliError::Usage(format!("{what}: {e}")),
        other => CliError::Run(format!("{what}: {other}")),
    }
}

/// Emits the run's observability outputs: the `--trace` Chrome-trace file
/// (written atomically, like checkpoints) and the collected metrics per
/// the `--metrics` mode. The pretty rendering goes to stderr (keeps
/// stdout parseable); the JSON document — one stdout line — carries the
/// run metadata and, when tracing was on, the `fascia-trace/1` summary.
fn emit_observability(obs: &ObsFlags, cfg: &CountConfig) -> Result<(), CliError> {
    if let (Some(path), Some(tracer)) = (&obs.trace_path, &cfg.tracer) {
        atomic_write(path, &tracer.to_chrome_json())
            .map_err(|e| CliError::Io(format!("cannot write trace '{}': {e}", path.display())))?;
        eprintln!(
            "trace: {} events ({} dropped) -> {}",
            tracer.recorded(),
            tracer.dropped(),
            path.display()
        );
    }
    if let Some(profiler) = &cfg.profiler {
        profiler.stop();
        if let Some(path) = &obs.profile_path {
            atomic_write(path, &profiler.collapsed()).map_err(|e| {
                CliError::Io(format!("cannot write profile '{}': {e}", path.display()))
            })?;
            eprintln!(
                "profile: {} samples ({} truncated) -> {}",
                profiler.samples(),
                profiler.truncated(),
                path.display()
            );
        }
    }
    // Stop measuring before any rendering below, so the report-building
    // allocations are not charged to the run being reported on.
    let mem_doc = if obs.mem_stats {
        // Snapshot first (so the document records that recording was
        // live), then stop measuring before rendering.
        let snap = fascia_obs::alloc::snapshot();
        fascia_obs::alloc::set_enabled(false);
        fascia_table::set_access_tracking(false);
        let doc = cfg
            .mem
            .as_deref()
            .map(|c| c.to_json(Some(&snap)))
            .unwrap_or_else(|| MemCollector::new().to_json(Some(&snap)));
        let frac = snap
            .attributed_fraction()
            .map_or_else(|| "n/a".to_string(), |f| format!("{:.1}%", 100.0 * f));
        eprintln!(
            "mem: {} phases, {} allocated bytes ({frac} attributed), {} peak live bytes",
            snap.phases.len(),
            snap.total_allocated_bytes,
            snap.live_peak_bytes
        );
        if let Some(path) = &obs.mem_out {
            atomic_write(path, &doc).map_err(|e| {
                CliError::Io(format!("cannot write mem stats '{}': {e}", path.display()))
            })?;
            eprintln!("mem: fascia-mem/1 -> {}", path.display());
        }
        Some(doc)
    } else {
        None
    };
    let est_doc = cfg.est.as_deref().map(|c| c.to_json());
    if let (Some(doc), Some(path)) = (&est_doc, &obs.est_trace) {
        atomic_write(path, doc).map_err(|e| {
            CliError::Io(format!("cannot write est trace '{}': {e}", path.display()))
        })?;
        eprintln!("est: fascia-est/1 -> {}", path.display());
    }
    let Some(m) = cfg.metrics.as_deref() else {
        // The `--metrics pretty` top-phase table rides on the metrics
        // report; without a registry the profile file above is the output.
        if let (Some(p), MetricsReport::Pretty) = (&cfg.profiler, obs.report) {
            eprint!("{}", p.render_top());
        }
        return Ok(());
    };
    match obs.report {
        MetricsReport::Off => {}
        MetricsReport::Pretty => {
            eprint!("{}", m.render_pretty());
            if let Some(p) = &cfg.profiler {
                eprint!("{}", p.render_top());
            }
        }
        MetricsReport::Json => {
            let mut run = RunInfo {
                started_unix_ms: obs.started_unix_ms,
                wall_ms: obs.t0.elapsed().as_millis() as u64,
                threads: rayon::current_num_threads() as u64,
                parallel: cfg.parallel.name().to_string(),
                ..RunInfo::default()
            };
            run.probe_host();
            let summary = cfg.tracer.as_ref().map(|t| t.summary_json());
            println!("{}", m.to_json_full(Some(&run), summary.as_deref()));
            // The fascia-mem/1 and fascia-est/1 documents are each their
            // own stdout line, so line-oriented consumers can pick any
            // schema by its tag.
            if let Some(doc) = &mem_doc {
                println!("{doc}");
            }
            if let Some(doc) = &est_doc {
                println!("{doc}");
            }
        }
        MetricsReport::Prom => println!("{}", m.render_prom()),
    }
    Ok(())
}

fn cmd_count(rest: &[String]) -> Result<i32, CliError> {
    let (gspec, tspec) = match rest {
        [g, t, ..] => (g, t),
        _ => return Err(usage_err("count needs <dataset|file> <template>")),
    };
    let g = load_graph(gspec)?;
    let t = parse_template(tspec)?;
    let (cfg, obs) = parse_flags(&rest[2..])?;
    let r = count_template(&g, &t, &cfg).map_err(|e| map_count_err("count failed", e))?;
    println!("estimate: {:.4e}", r.estimate);
    println!("iterations: {}", r.iterations_run);
    if r.resumed_iterations > 0 {
        println!("resumed iterations: {}", r.resumed_iterations);
    }
    if let Some(StopRule::RelativeError { max_iters, .. }) = &cfg.stop {
        if !r.stop_cause.is_partial() {
            println!("iterations saved: {}", max_iters - r.iterations_run);
        }
    }
    println!("std error: {:.4e}", r.std_error);
    if r.estimate != 0.0 {
        println!(
            "95% ci: ±{:.4e} ({:.2}% of estimate)",
            r.ci95,
            100.0 * r.ci95 / r.estimate.abs()
        );
    } else {
        println!("95% ci: ±{:.4e}", r.ci95);
    }
    println!("per-iteration time: {:?}", r.per_iteration_time);
    println!("peak table bytes: {}", r.peak_table_bytes);
    println!("automorphisms: {}", r.automorphisms);
    println!("colorful probability: {:.6}", r.colorful_probability);
    println!("stop cause: {}", r.stop_cause.name());
    emit_observability(&obs, &cfg)?;
    if r.stop_cause.is_partial() {
        eprintln!(
            "run stopped early ({}); the estimate above is partial",
            r.stop_cause.name()
        );
        Ok(EXIT_PARTIAL)
    } else {
        Ok(EXIT_OK)
    }
}

fn cmd_exact(rest: &[String]) -> Result<i32, CliError> {
    let (gspec, tspec) = match rest {
        [g, t, ..] => (g, t),
        _ => return Err(usage_err("exact needs <dataset|file> <template>")),
    };
    let g = load_graph(gspec)?;
    let t = parse_template(tspec)?;
    let start = std::time::Instant::now();
    let count = count_exact(&g, &t);
    println!("exact count: {count}");
    println!("elapsed: {:?}", start.elapsed());
    Ok(EXIT_OK)
}

fn cmd_motifs(rest: &[String]) -> Result<i32, CliError> {
    let (gspec, sizespec) = match rest {
        [g, s, ..] => (g, s),
        _ => return Err(usage_err("motifs needs <dataset|file> <size>")),
    };
    let g = load_graph(gspec)?;
    let size: usize = sizespec
        .parse()
        .map_err(|_| CliError::Usage(format!("motif size: cannot parse {sizespec:?}")))?;
    let (cfg, obs) = parse_flags(&rest[2..])?;
    let p = motif_profile(&g, size, &cfg).map_err(|e| map_count_err("motif scan failed", e))?;
    println!("# topology relative_frequency estimate");
    for (i, (rel, cnt)) in p.relative_frequencies().iter().zip(&p.counts).enumerate() {
        println!("{:>3}  {rel:>12.6}  {cnt:.4e}", i + 1);
    }
    println!("# total elapsed: {:?}", p.elapsed);
    emit_observability(&obs, &cfg)?;
    Ok(EXIT_OK)
}

fn cmd_gdd(rest: &[String]) -> Result<i32, CliError> {
    let Some(gspec) = rest.first() else {
        return Err(usage_err("gdd needs <dataset|file>"));
    };
    let g = load_graph(gspec)?;
    let (cfg, obs) = parse_flags(&rest[1..])?;
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named
        .central_orbit()
        .ok_or_else(|| CliError::Run("U5-2 central orbit unavailable".to_string()))?;
    let hist = estimate_gdd(&g, &t, orbit, &cfg).map_err(|e| map_count_err("gdd failed", e))?;
    print_histogram(&hist);
    emit_observability(&obs, &cfg)?;
    Ok(EXIT_OK)
}

fn print_histogram(h: &GddHistogram) {
    println!("# graphlet_degree vertex_count");
    for (j, c) in h.iter() {
        println!("{j} {c}");
    }
}

fn cmd_sample(rest: &[String]) -> Result<i32, CliError> {
    let (gspec, tspec, countspec) = match rest {
        [g, t, c, ..] => (g, t, c),
        _ => return Err(usage_err("sample needs <dataset|file> <template> <count>")),
    };
    let g = load_graph(gspec)?;
    let t = parse_template(tspec)?;
    let count: usize = countspec
        .parse()
        .map_err(|_| CliError::Usage(format!("sample count: cannot parse {countspec:?}")))?;
    let (mut cfg, obs) = parse_flags(&rest[3..])?;
    if cfg.iterations < count {
        cfg.iterations = count.max(100);
    }
    let embeddings =
        sample_embeddings(&g, &t, &cfg, count).map_err(|e| map_count_err("sampling failed", e))?;
    println!(
        "# {} embeddings (graph vertices in template-vertex order)",
        embeddings.len()
    );
    for emb in embeddings {
        let strs: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
        println!("{}", strs.join(" "));
    }
    emit_observability(&obs, &cfg)?;
    Ok(EXIT_OK)
}

fn cmd_gen(rest: &[String]) -> Result<i32, CliError> {
    let (dsspec, out) = match rest {
        [d, o, ..] => (d, o),
        _ => return Err(usage_err("gen needs <dataset> <out.txt>")),
    };
    let ds = parse_dataset(dsspec)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset '{dsspec}'")))?;
    let g = ds.generate(scale_from_env(), 0xDA7A);
    fascia_graph::io::write_edge_list(&g, out)
        .map_err(|e| CliError::Io(format!("write failed: {e}")))?;
    println!(
        "wrote n={} m={} to {}",
        g.num_vertices(),
        g.num_edges(),
        out
    );
    Ok(EXIT_OK)
}

fn cmd_info(rest: &[String]) -> Result<i32, CliError> {
    let Some(gspec) = rest.first() else {
        return Err(usage_err("info needs <dataset|file>"));
    };
    let g = load_graph(gspec)?;
    println!("n: {}", g.num_vertices());
    println!("m: {}", g.num_edges());
    println!("avg degree: {:.2}", g.avg_degree());
    println!("max degree: {}", g.max_degree());
    println!("triangles: {}", fascia_graph::stats::triangle_count(&g));
    println!(
        "global clustering: {:.4}",
        fascia_graph::stats::global_clustering(&g)
    );
    Ok(EXIT_OK)
}

fn cmd_distsim(rest: &[String]) -> Result<i32, CliError> {
    use fascia_core::distsim::{count_distributed, DistConfig, PartitionScheme};
    let (gspec, tspec, rankspec) = match rest {
        [g, t, r, ..] => (g, t, r),
        _ => return Err(usage_err("distsim needs <dataset|file> <template> <ranks>")),
    };
    let g = load_graph(gspec)?;
    let t = parse_template(tspec)?;
    let ranks: usize = rankspec
        .parse()
        .map_err(|_| CliError::Usage(format!("rank count: cannot parse {rankspec:?}")))?;
    let (mut count, obs) = parse_flags(&rest[3..])?;
    count.parallel = fascia_core::parallel::ParallelMode::Serial;
    for scheme in [PartitionScheme::Block, PartitionScheme::Hash] {
        let cfg = DistConfig {
            ranks,
            scheme,
            count: count.clone(),
        };
        let r = count_distributed(&g, &t, &cfg).map_err(|e| map_count_err("distsim failed", e))?;
        println!(
            "{scheme:?}: estimate {:.4e}, ghost rows {}, comm bytes {}, imbalance {:.2}",
            r.estimate,
            r.ghost_rows,
            r.comm_bytes,
            r.imbalance(ranks)
        );
    }
    emit_observability(&obs, &count)?;
    Ok(EXIT_OK)
}

fn cmd_templates() {
    for named in NamedTemplate::all() {
        let t = named.template();
        println!("== {} ({} vertices) ==", named.name(), t.size());
        print!("{}", fascia_template::named::ascii_art(&t));
    }
}
