//! `fascia` — command-line interface to the FASCIA subgraph counter.
//!
//! Subcommands:
//!
//! * `count <dataset|path> <template> [opts]` — approximate count,
//! * `exact <dataset|path> <template>` — exhaustive exact count,
//! * `motifs <dataset|path> <size> [opts]` — motif profile over all tree
//!   topologies of a size,
//! * `gdd <dataset|path> [opts]` — graphlet degree distribution for the
//!   U5-2 central orbit,
//! * `sample <dataset|path> <template> <count>` — draw uniform random
//!   occurrences,
//! * `gen <dataset> <out.txt>` — write a synthetic dataset as an edge list,
//! * `info <dataset|path>` — print network statistics,
//! * `templates` — list the Figure 2 template gallery.
//!
//! `<dataset>` is a Table I name (portland, enron, gnp, slashdot, road,
//! circuit, ecoli, yeast, hpylori, celegans); anything else is treated as
//! an edge-list file path. `<template>` is a Figure 2 name (e.g. U7-2) or
//! `path<k>` / `star<k>`.

use fascia_core::engine::{count_template, CountConfig};
use fascia_core::exact::count_exact;
use fascia_core::gdd::{estimate_gdd, GddHistogram};
use fascia_core::motifs::motif_profile;
use fascia_core::sample::sample_embeddings;
use fascia_core::stats::StopRule;
use fascia_graph::datasets::scale_from_env;
use fascia_graph::io::load_edge_list;
use fascia_graph::{Dataset, Graph};
use fascia_obs::{Metrics, MetricsReport};
use fascia_table::TableKind;
use fascia_template::{NamedTemplate, PartitionStrategy, Template};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let cmd = args[0].as_str();
    let rest = &args[1..];
    match cmd {
        "count" => cmd_count(rest),
        "exact" => cmd_exact(rest),
        "motifs" => cmd_motifs(rest),
        "gdd" => cmd_gdd(rest),
        "sample" => cmd_sample(rest),
        "distsim" => cmd_distsim(rest),
        "gen" => cmd_gen(rest),
        "info" => cmd_info(rest),
        "templates" => cmd_templates(),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: fascia <count|exact|motifs|gdd|gen|info|templates> ...\n\
         \x20 count  <dataset|file> <template> [--iters N] [--table naive|improved|hash] [--strategy one|balanced] [--seed S] [--metrics off|pretty|json] [adaptive flags]\n\
         \x20 exact  <dataset|file> <template>\n\
         \x20 motifs <dataset|file> <size> [--iters N]\n\
         \x20 gdd    <dataset|file> [--iters N]\n\
         \x20 sample <dataset|file> <template> <count> [--iters N] [--seed S]\n\
         \x20 distsim <dataset|file> <template> <ranks> [--iters N]\n\
         \x20 gen    <dataset> <out.txt>\n\
         \x20 info   <dataset|file>\n\
         \x20 templates\n\
         adaptive flags (every counting subcommand): --adaptive [--epsilon E] [--delta D] [--max-iters M]\n\
         \x20 stop iterating once the estimate is within ±E (relative, default 0.05)\n\
         \x20 at confidence 1-D (default 0.95), hard budget M (default 10000);\n\
         \x20 --iters N becomes the iteration floor; --epsilon/--delta/--max-iters imply --adaptive"
    );
    std::process::exit(2);
}

fn parse_dataset(name: &str) -> Option<Dataset> {
    Some(match name.to_ascii_lowercase().as_str() {
        "portland" => Dataset::Portland,
        "enron" => Dataset::Enron,
        "gnp" => Dataset::Gnp,
        "slashdot" => Dataset::Slashdot,
        "road" | "paroad" => Dataset::PaRoad,
        "circuit" => Dataset::Circuit,
        "ecoli" => Dataset::EColi,
        "yeast" | "scerevisiae" => Dataset::SCerevisiae,
        "hpylori" => Dataset::HPylori,
        "celegans" => Dataset::CElegans,
        _ => return None,
    })
}

fn load_graph(spec: &str) -> Graph {
    if let Some(ds) = parse_dataset(spec) {
        let scale = scale_from_env();
        eprintln!(
            "generating {} stand-in (scale 1/{scale}, FASCIA_SCALE to change)",
            ds.spec().name
        );
        ds.generate(scale, 0xDA7A)
    } else {
        match load_edge_list(spec) {
            Ok((g, _)) => g,
            Err(e) => {
                eprintln!("cannot load '{spec}': {e}");
                std::process::exit(1);
            }
        }
    }
}

fn parse_template(spec: &str) -> Template {
    if let Some(named) = NamedTemplate::by_name(spec) {
        return named.template();
    }
    if let Some(k) = spec
        .strip_prefix("path")
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Template::path(k);
    }
    if let Some(k) = spec
        .strip_prefix("star")
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Template::star(k);
    }
    if std::path::Path::new(spec).exists() {
        match fascia_template::io::load_template(spec) {
            Ok(t) => return t,
            Err(e) => {
                eprintln!("cannot load template file '{spec}': {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("unknown template '{spec}' (use U7-2, path5, star6, or a template file path)");
    std::process::exit(1);
}

fn parse_flags(rest: &[String]) -> (CountConfig, MetricsReport) {
    let mut cfg = CountConfig::default();
    let mut report = MetricsReport::Off;
    let mut iters_given = false;
    let mut adaptive = false;
    let mut epsilon = 0.05f64;
    let mut delta = 0.05f64;
    let mut max_iters = StopRule::DEFAULT_MAX_ITERS;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--iters" => {
                cfg.iterations = rest[i + 1].parse().expect("--iters N");
                iters_given = true;
                i += 2;
            }
            "--adaptive" => {
                adaptive = true;
                i += 1;
            }
            "--epsilon" => {
                epsilon = rest[i + 1].parse().expect("--epsilon E");
                adaptive = true;
                i += 2;
            }
            "--delta" => {
                delta = rest[i + 1].parse().expect("--delta D");
                adaptive = true;
                i += 2;
            }
            "--max-iters" => {
                max_iters = rest[i + 1].parse().expect("--max-iters M");
                adaptive = true;
                i += 2;
            }
            "--seed" => {
                cfg.seed = rest[i + 1].parse().expect("--seed S");
                i += 2;
            }
            "--table" => {
                cfg.table = match rest[i + 1].as_str() {
                    "naive" | "dense" => TableKind::Dense,
                    "improved" | "lazy" => TableKind::Lazy,
                    "hash" => TableKind::Hash,
                    other => {
                        eprintln!("unknown table kind '{other}'");
                        std::process::exit(1);
                    }
                };
                i += 2;
            }
            "--strategy" => {
                cfg.strategy = match rest[i + 1].as_str() {
                    "one" | "one-at-a-time" => PartitionStrategy::OneAtATime,
                    "balanced" => PartitionStrategy::Balanced,
                    other => {
                        eprintln!("unknown strategy '{other}'");
                        std::process::exit(1);
                    }
                };
                i += 2;
            }
            "--metrics" => {
                report = match MetricsReport::parse(&rest[i + 1]) {
                    Some(r) => r,
                    None => {
                        eprintln!("unknown metrics mode '{}' (off|pretty|json)", rest[i + 1]);
                        std::process::exit(1);
                    }
                };
                i += 2;
            }
            _ => i += 1,
        }
    }
    if adaptive {
        // `--iters` becomes the convergence floor; without it, the
        // library default floor applies.
        let min_iters = if iters_given {
            cfg.iterations.clamp(2, max_iters)
        } else {
            StopRule::DEFAULT_MIN_ITERS.min(max_iters)
        };
        cfg.stop = Some(StopRule::RelativeError {
            epsilon,
            delta,
            min_iters,
            max_iters,
        });
    }
    if report != MetricsReport::Off {
        cfg.metrics = Some(Arc::new(Metrics::new()));
    }
    (cfg, report)
}

/// Prints the collected metrics per the `--metrics` mode: the pretty
/// rendering goes to stderr (keeps stdout parseable), the JSON document
/// is a single stdout line.
fn emit_metrics(report: MetricsReport, cfg: &CountConfig) {
    let Some(m) = cfg.metrics.as_deref() else {
        return;
    };
    match report {
        MetricsReport::Off => {}
        MetricsReport::Pretty => eprint!("{}", m.render_pretty()),
        MetricsReport::Json => println!("{}", m.to_json()),
    }
}

fn cmd_count(rest: &[String]) {
    if rest.len() < 2 {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let t = parse_template(&rest[1]);
    let (cfg, report) = parse_flags(&rest[2..]);
    match count_template(&g, &t, &cfg) {
        Ok(r) => {
            println!("estimate: {:.4e}", r.estimate);
            println!("iterations: {}", r.iterations_run);
            if let Some(StopRule::RelativeError { max_iters, .. }) = &cfg.stop {
                println!("iterations saved: {}", max_iters - r.iterations_run);
            }
            println!("std error: {:.4e}", r.std_error);
            if r.estimate != 0.0 {
                println!(
                    "95% ci: ±{:.4e} ({:.2}% of estimate)",
                    r.ci95,
                    100.0 * r.ci95 / r.estimate.abs()
                );
            } else {
                println!("95% ci: ±{:.4e}", r.ci95);
            }
            println!("per-iteration time: {:?}", r.per_iteration_time);
            println!("peak table bytes: {}", r.peak_table_bytes);
            println!("automorphisms: {}", r.automorphisms);
            println!("colorful probability: {:.6}", r.colorful_probability);
            emit_metrics(report, &cfg);
        }
        Err(e) => {
            eprintln!("count failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_exact(rest: &[String]) {
    if rest.len() < 2 {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let t = parse_template(&rest[1]);
    let start = std::time::Instant::now();
    let count = count_exact(&g, &t);
    println!("exact count: {count}");
    println!("elapsed: {:?}", start.elapsed());
}

fn cmd_motifs(rest: &[String]) {
    if rest.len() < 2 {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let size: usize = rest[1].parse().expect("motif size");
    let (cfg, report) = parse_flags(&rest[2..]);
    match motif_profile(&g, size, &cfg) {
        Ok(p) => {
            println!("# topology relative_frequency estimate");
            for (i, (rel, cnt)) in p.relative_frequencies().iter().zip(&p.counts).enumerate() {
                println!("{:>3}  {rel:>12.6}  {cnt:.4e}", i + 1);
            }
            println!("# total elapsed: {:?}", p.elapsed);
            emit_metrics(report, &cfg);
        }
        Err(e) => {
            eprintln!("motif scan failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_gdd(rest: &[String]) {
    if rest.is_empty() {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let (cfg, report) = parse_flags(&rest[1..]);
    let named = NamedTemplate::U5_2;
    let t = named.template();
    let orbit = named.central_orbit().expect("U5-2 has a central orbit");
    match estimate_gdd(&g, &t, orbit, &cfg) {
        Ok(hist) => {
            print_histogram(&hist);
            emit_metrics(report, &cfg);
        }
        Err(e) => {
            eprintln!("gdd failed: {e}");
            std::process::exit(1);
        }
    }
}

fn print_histogram(h: &GddHistogram) {
    println!("# graphlet_degree vertex_count");
    for (j, c) in h.iter() {
        println!("{j} {c}");
    }
}

fn cmd_sample(rest: &[String]) {
    if rest.len() < 3 {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let t = parse_template(&rest[1]);
    let count: usize = rest[2].parse().expect("sample count");
    let (mut cfg, report) = parse_flags(&rest[3..]);
    if cfg.iterations < count {
        cfg.iterations = count.max(100);
    }
    match sample_embeddings(&g, &t, &cfg, count) {
        Ok(embeddings) => {
            println!(
                "# {} embeddings (graph vertices in template-vertex order)",
                embeddings.len()
            );
            for emb in embeddings {
                let strs: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
                println!("{}", strs.join(" "));
            }
            emit_metrics(report, &cfg);
        }
        Err(e) => {
            eprintln!("sampling failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_gen(rest: &[String]) {
    if rest.len() < 2 {
        usage_and_exit();
    }
    let Some(ds) = parse_dataset(&rest[0]) else {
        eprintln!("unknown dataset '{}'", rest[0]);
        std::process::exit(1);
    };
    let g = ds.generate(scale_from_env(), 0xDA7A);
    if let Err(e) = fascia_graph::io::write_edge_list(&g, &rest[1]) {
        eprintln!("write failed: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote n={} m={} to {}",
        g.num_vertices(),
        g.num_edges(),
        rest[1]
    );
}

fn cmd_info(rest: &[String]) {
    if rest.is_empty() {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    println!("n: {}", g.num_vertices());
    println!("m: {}", g.num_edges());
    println!("avg degree: {:.2}", g.avg_degree());
    println!("max degree: {}", g.max_degree());
    println!("triangles: {}", fascia_graph::stats::triangle_count(&g));
    println!(
        "global clustering: {:.4}",
        fascia_graph::stats::global_clustering(&g)
    );
}

fn cmd_distsim(rest: &[String]) {
    use fascia_core::distsim::{count_distributed, DistConfig, PartitionScheme};
    if rest.len() < 3 {
        usage_and_exit();
    }
    let g = load_graph(&rest[0]);
    let t = parse_template(&rest[1]);
    let ranks: usize = rest[2].parse().expect("rank count");
    let (mut count, report) = parse_flags(&rest[3..]);
    count.parallel = fascia_core::parallel::ParallelMode::Serial;
    for scheme in [PartitionScheme::Block, PartitionScheme::Hash] {
        let cfg = DistConfig {
            ranks,
            scheme,
            count: count.clone(),
        };
        match count_distributed(&g, &t, &cfg) {
            Ok(r) => println!(
                "{scheme:?}: estimate {:.4e}, ghost rows {}, comm bytes {}, imbalance {:.2}",
                r.estimate,
                r.ghost_rows,
                r.comm_bytes,
                r.imbalance(ranks)
            ),
            Err(e) => {
                eprintln!("distsim failed: {e}");
                std::process::exit(1);
            }
        }
    }
    emit_metrics(report, &count);
}

fn cmd_templates() {
    for named in NamedTemplate::all() {
        let t = named.template();
        println!("== {} ({} vertices) ==", named.name(), t.size());
        print!("{}", fascia_template::named::ascii_art(&t));
    }
}
